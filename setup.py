"""Legacy setup shim.

The environment has no ``wheel`` package and no network, so PEP 517
editable installs (``pip install -e .``) cannot build a wheel.  This shim
lets ``python setup.py develop`` provide the equivalent editable install;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
