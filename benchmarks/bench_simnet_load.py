"""SIMNET-LOAD — throughput/latency vs. offered load and loss rate.

Section 8.2's efficiency argument measured on the discrete-event
network: the same IQN-routed workload is offered to the simulated
transport at increasing arrival rates and message-loss rates.  Latency
is *virtual* time (deterministic under the seed — the same seed always
regenerates the identical table), so the bench also doubles as the
reproducibility check for the simulator.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.netload import simnet_load_sweep
from repro.experiments.report import format_table
from repro.parallel import ExperimentRunner
from repro.simnet.executor import SimNetExecutor

from _util import latency_summary, measure, save_result, update_json_result

SPEC_LABEL = "mips-64"
OFFERED_QPS = (2.0, 10.0, 50.0, 200.0)
LOSS_RATES = (0.0, 0.05, 0.1)
MAX_PEERS = 5
SEED = 17


def run_sweep(testbed, fig3_params, **overrides):
    engine = testbed.engines[SPEC_LABEL]
    kwargs = dict(
        offered_qps=OFFERED_QPS,
        loss_rates=LOSS_RATES,
        seed=SEED,
        max_peers=MAX_PEERS,
        k=fig3_params["k"],
        peer_k=fig3_params["peer_k"],
    )
    kwargs.update(overrides)
    return simnet_load_sweep(engine, testbed.queries, IQNRouter, **kwargs)


@pytest.fixture(scope="module")
def figure_data(combination_testbed, fig3_params):
    points = run_sweep(combination_testbed, fig3_params)
    rows = [
        [
            point.loss_rate,
            point.offered_qps,
            point.mean_latency_ms,
            point.p95_latency_ms,
            point.max_latency_ms,
            point.mean_recall,
            point.forward_retries,
            point.timed_out_contacts,
            point.degraded_queries,
        ]
        for point in points
    ]
    save_result(
        "simnet_load",
        format_table(
            [
                "loss",
                "offered qps",
                "mean ms",
                "p95 ms",
                "max ms",
                "recall",
                "retries",
                "timeouts",
                "degraded",
            ],
            rows,
        ),
    )
    return points


def test_latency_grows_with_offered_load(figure_data):
    """The 'highly superlinear function of load': within each loss rate,
    saturating the network must not make queries faster."""
    lossless = [p for p in figure_data if p.loss_rate == 0.0]
    assert lossless[-1].mean_latency_ms > lossless[0].mean_latency_ms


def test_loss_costs_latency_and_retries(figure_data):
    """At equal offered load, loss converts into backoff waits and
    retry traffic."""
    by_loss = {
        loss: [p for p in figure_data if p.loss_rate == loss]
        for loss in LOSS_RATES
    }
    clean = by_loss[0.0][0].mean_latency_ms
    assert by_loss[0.1][0].mean_latency_ms > clean
    assert sum(p.forward_retries for p in by_loss[0.1]) > 0
    assert all(p.forward_retries == 0 for p in by_loss[0.0])


def test_no_fault_cells_reach_in_process_recall(
    figure_data, combination_testbed, fig3_params
):
    """Without faults the network changes *when*, not *what*: recall
    matches the in-process engine exactly."""
    engine = combination_testbed.engines[SPEC_LABEL]
    expected = []
    for query in combination_testbed.queries:
        outcome = engine.run_query(
            query,
            IQNRouter(),
            max_peers=MAX_PEERS,
            k=fig3_params["k"],
            peer_k=fig3_params["peer_k"],
        )
        expected.append(outcome.final_recall)
    mean_expected = sum(expected) / len(expected)
    for point in figure_data:
        if point.loss_rate == 0.0:
            assert point.mean_recall == pytest.approx(mean_expected)


def test_sweep_is_deterministic_under_the_seed(
    figure_data, combination_testbed, fig3_params
):
    """Acceptance: two runs with the same seed produce identical
    virtual-time latency numbers."""
    again = run_sweep(
        combination_testbed,
        fig3_params,
        offered_qps=(OFFERED_QPS[0], OFFERED_QPS[-1]),
        loss_rates=(0.0, LOSS_RATES[-1]),
    )
    matching = [
        p
        for p in figure_data
        if p.offered_qps in (OFFERED_QPS[0], OFFERED_QPS[-1])
        and p.loss_rate in (0.0, LOSS_RATES[-1])
    ]
    assert again == matching


def test_pooled_sweep_matches_serial_and_records_throughput(
    combination_testbed, fig3_params, figure_data
):
    """The sweep's cells are independent pool tasks: a pooled run must
    reproduce the serial sweep exactly, and its cell throughput joins
    the BENCH_parallel.json perf record."""
    reduced = dict(
        offered_qps=(OFFERED_QPS[0], OFFERED_QPS[1]),
        loss_rates=(0.0, LOSS_RATES[-1]),
    )
    serial_timing = measure(
        lambda: run_sweep(combination_testbed, fig3_params, **reduced),
        warmup=1,
        repeats=3,
    )
    serial_points = run_sweep(combination_testbed, fig3_params, **reduced)

    runner = ExperimentRunner(workers=2)
    pooled_timing = measure(
        lambda: run_sweep(combination_testbed, fig3_params, runner=runner, **reduced),
        warmup=1,
        repeats=3,
    )
    pooled_points = run_sweep(
        combination_testbed, fig3_params, runner=runner, **reduced
    )
    assert pooled_points == serial_points

    num_cells = len(reduced["offered_qps"]) * len(reduced["loss_rates"])
    update_json_result(
        "BENCH_parallel",
        "simnet",
        {
            "cells": num_cells,
            "workers": 2,
            "serial": serial_timing.as_dict(),
            "pooled": pooled_timing.as_dict(),
            "serial_cells_per_sec": num_cells / serial_timing.median_s,
            "pooled_cells_per_sec": num_cells / pooled_timing.median_s,
            "identical_to_serial": pooled_points == serial_points,
            "last_map_mode": runner.last_map_mode,
            "cell_mean_latency_summary_ms": latency_summary(
                point.mean_latency_ms for point in pooled_points
            ),
        },
    )


def test_networked_query_speed(benchmark, combination_testbed, fig3_params, figure_data):
    """Real-time cost of simulating one networked query end to end."""
    engine = combination_testbed.engines[SPEC_LABEL]
    query = combination_testbed.queries[0]

    def one_query():
        executor = SimNetExecutor(engine, seed=SEED)
        executor.submit(
            query,
            IQNRouter(),
            max_peers=MAX_PEERS,
            k=fig3_params["k"],
            peer_k=fig3_params["peer_k"],
        )
        return executor.run()[0]

    outcome = benchmark.pedantic(one_query, rounds=3, iterations=1)
    assert outcome.latency_ms > 0.0
