"""Directory/DHT micro-benchmarks: Chord lookups, posting, PeerList fetch.

Not a paper figure, but quantifies the claim underlying IQN's efficiency
argument: routing decisions cost only "very fast DHT-based directory
lookups".  Also reports the average Chord hop count, which should grow
logarithmically with network size.
"""

from __future__ import annotations

from statistics import mean

import pytest

from repro.dht.ring import ChordRing
from repro.experiments.report import format_table
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.synopses.factory import SynopsisSpec

from _util import save_result

SPEC = SynopsisSpec.parse("mips-64")


def make_post(peer_id, term):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=100,
        max_score=1.0,
        avg_score=0.5,
        term_space_size=1000,
        synopsis=SPEC.build(range(100)),
    )


@pytest.fixture(scope="module")
def hop_scaling():
    rows = []
    for size in (16, 64, 256, 1024):
        ring = ChordRing([f"peer-{i}" for i in range(size)])
        hops = [ring.lookup(f"term-{i}").hops for i in range(300)]
        rows.append([size, mean(hops), max(hops)])
    save_result(
        "directory_chord_hops",
        format_table(["nodes", "mean hops", "max hops"], rows),
    )
    return rows


def test_hops_grow_sublinearly(hop_scaling):
    """64x more nodes must cost far less than 64x more hops (~log n)."""
    small, large = hop_scaling[0], hop_scaling[-1]
    assert large[1] < 4 * small[1]


@pytest.fixture(scope="module")
def directory():
    ring = ChordRing([f"peer-{i}" for i in range(64)])
    directory = Directory(ring)
    for i in range(500):
        directory.publish(make_post(f"peer-{i % 64}", f"term-{i % 50}"))
    return directory


def test_chord_lookup(benchmark, directory, hop_scaling):
    result = benchmark(lambda: directory.ring.lookup("term-17"))
    assert result.hops >= 0


def test_publish_post(benchmark, directory):
    post = make_post("peer-1", "term-3")
    benchmark(lambda: directory.publish(post))


def test_peerlist_fetch(benchmark, directory):
    peer_list = benchmark(lambda: directory.peer_list("term-3"))
    assert len(peer_list) >= 1
