"""CHURN — the live-directory subsystem under membership turnover.

The acceptance scenario for :mod:`repro.churn`: a small (churn rate ×
repost interval) grid over a combination testbed, executed serially and
through the process pool, with three pinned properties:

- **bit-identity** — the pooled grid pickles to exactly the serial
  grid's bytes (cell seeds derive from sweep parameters, never from
  task position or worker count);
- **graceful degradation** — at least one cell rescues a query whose
  routed-to peer had crashed mid-query (``fallback_successes > 0``),
  i.e. the robustness path demonstrably fires;
- **the maintenance trade** — reposting more often costs strictly more
  maintenance messages at a fixed churn rate.

Timings and the grid summary land in
``benchmarks/results/BENCH_churn.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.churn import churn_sweep
from repro.experiments.config import SMALL_CORPUS
from repro.experiments.fig3 import build_combination_testbed
from repro.parallel import ExperimentRunner

from _util import latency_summary, measure, update_json_result

CONFIG = dataclasses.replace(SMALL_CORPUS, topic_smear=1.0)
TESTBED_PARAMS = dict(
    num_queries=4,
    query_pool_size=12,
    query_pool_offset=0,
    spec_labels=("mips-64",),
)
CHURN_RATES = (1.0, 4.0)
REPOST_INTERVALS_MS = (5_000.0, 15_000.0)
HORIZON_MS = 30_000.0
SEED = 23
K, PEER_K = 30, 10


def run_sweep(workers: int):
    """The whole grid at a given worker count (fresh testbed + runner).

    Returns ``(points, map_mode)`` — the runner's ``last_map_mode`` rides
    along so the perf record says how the grid actually executed.
    """
    testbed = build_combination_testbed(CONFIG, **TESTBED_PARAMS)
    runner = ExperimentRunner(workers=workers)
    points = churn_sweep(
        testbed.engines["mips-64"],
        testbed.queries,
        IQNRouter,
        churn_rates=CHURN_RATES,
        repost_intervals_ms=REPOST_INTERVALS_MS,
        horizon_ms=HORIZON_MS,
        interarrival_ms=HORIZON_MS / (len(testbed.queries) + 1),
        seed=SEED,
        max_peers=5,
        k=K,
        peer_k=PEER_K,
        runner=runner,
    )
    return points, runner.last_map_mode


@pytest.fixture(scope="module")
def sweep_data():
    serial, serial_mode = run_sweep(1)
    serial_timing = measure(lambda: run_sweep(1), warmup=0, repeats=1)
    pooled, pooled_mode = run_sweep(2)
    pooled_timing = measure(lambda: run_sweep(2), warmup=0, repeats=1)
    serial_digest = hashlib.sha256(pickle.dumps(serial)).hexdigest()
    pooled_digest = hashlib.sha256(pickle.dumps(pooled)).hexdigest()
    payload = {
        "grid": {
            "churn_rates_per_min": list(CHURN_RATES),
            "repost_intervals_ms": list(REPOST_INTERVALS_MS),
            "horizon_ms": HORIZON_MS,
            "seed": SEED,
        },
        "serial": serial_timing.as_dict(),
        "pooled_2_workers": pooled_timing.as_dict(),
        "serial_map_mode": serial_mode,
        "pooled_map_mode": pooled_mode,
        "serial_digest": serial_digest,
        "pooled_digest": pooled_digest,
        "identical_serial_vs_pooled": serial_digest == pooled_digest,
        "points": [dataclasses.asdict(point) for point in serial],
        "total_fallback_successes": sum(p.fallback_successes for p in serial),
        "total_stale_routes": sum(p.stale_routes for p in serial),
        "cell_p95_latency_summary_ms": latency_summary(
            point.p95_latency_ms for point in serial
        ),
    }
    update_json_result("BENCH_churn", "sweep", payload)
    return {"serial": serial, "pooled": pooled, "payload": payload}


def test_bit_identical_serial_vs_pooled(sweep_data):
    """Acceptance: the pooled grid is byte-for-byte the serial grid."""
    assert sweep_data["payload"]["identical_serial_vs_pooled"]
    assert pickle.dumps(sweep_data["pooled"]) == pickle.dumps(
        sweep_data["serial"]
    )


def test_queries_survive_crashed_routes(sweep_data):
    """Acceptance: some query succeeded despite a crash of a routed-to
    peer — the spare-substitution fallback demonstrably fired."""
    assert sweep_data["payload"]["total_fallback_successes"] > 0


def test_recall_stays_positive_under_churn(sweep_data):
    for point in sweep_data["serial"]:
        assert point.mean_recall > 0.0


def test_reposting_more_often_costs_more_maintenance(sweep_data):
    """At a fixed churn rate (same membership trace), a shorter repost
    interval must spend strictly more maintenance messages."""
    by_rate: dict[float, list] = {}
    for point in sweep_data["serial"]:
        by_rate.setdefault(point.churn_rate, []).append(point)
    for points in by_rate.values():
        ordered = sorted(points, key=lambda p: p.repost_interval_ms)
        for frequent, rare in zip(ordered, ordered[1:]):
            assert frequent.maintenance_messages > rare.maintenance_messages
            assert frequent.trace_digest == rare.trace_digest
