"""SERVING — hot routing caches and streamed top-k vs. full forwarding.

The acceptance scenario for :mod:`repro.serving`: a Zipf-repeating
query log served at several offered loads over a small combination
testbed, with four pinned properties:

- **bit-identity of the answer** — on every churn-free cell the served
  top-k and queried peers equal ``run_query_networked``'s, per query
  (caches and early termination change bytes and latency, never
  results), and a dedicated cold-cache pass re-checks this query by
  query outside the sweep;
- **the caches earn their keep** — on the skewed log (Zipf ``s >= 1``)
  at a fixed qps, the plan-cache hit rate is at least 50% and the bytes
  per query are strictly below the full-forwarding path's;
- **latency does not regress** — served p95 is no worse than the
  uncached full-forwarding p95 on the same log and arrivals;
- **worker-count determinism** — the pooled sweep pickles to exactly
  the serial sweep's bytes.

Timings, the sweep table, and the acceptance numbers land in
``benchmarks/results/BENCH_serving.json``.  CI runs this module with
``BENCH_SERVING_QUICK=1``, which drops the highest-load column.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.queries import make_query_log
from repro.experiments.config import SMALL_CORPUS
from repro.experiments.fig3 import build_combination_testbed
from repro.experiments.serve import serve_sweep
from repro.parallel import ExperimentRunner
from repro.serving import ServingFrontend
from repro.simnet.executor import SimNetExecutor

from _util import latency_summary, measure, update_json_result

QUICK = bool(os.environ.get("BENCH_SERVING_QUICK"))

CONFIG = dataclasses.replace(SMALL_CORPUS, topic_smear=1.0)
TESTBED_PARAMS = dict(
    num_queries=6,
    query_pool_size=16,
    query_pool_offset=0,
    spec_labels=("mips-64",),
)
OFFERED_QPS = (5.0, 20.0) if QUICK else (5.0, 20.0, 80.0)
ZIPF_SKEWS = (0.0, 1.1)
CHURN_RATES = (0.0, 2.0)
NUM_EVENTS = 48 if QUICK else 64
SEED = 29
MAX_PEERS, K, PEER_K, SPARES = 4, 20, 50, 2
#: The acceptance cell: skewed log (s >= 1.0) at the middle fixed qps.
ACCEPT_QPS, ACCEPT_SKEW = 20.0, 1.1


def run_sweep(workers: int):
    """The whole grid at a given worker count (fresh testbed + runner).

    Returns ``(points, map_mode)`` — the runner's ``last_map_mode`` rides
    along so the perf record says how the grid actually executed.
    """
    testbed = build_combination_testbed(CONFIG, **TESTBED_PARAMS)
    runner = ExperimentRunner(workers=workers)
    points = serve_sweep(
        testbed.engines["mips-64"],
        testbed.queries,
        IQNRouter,
        offered_qps=OFFERED_QPS,
        zipf_skews=ZIPF_SKEWS,
        churn_rates=CHURN_RATES,
        num_events=NUM_EVENTS,
        seed=SEED,
        max_peers=MAX_PEERS,
        k=K,
        peer_k=PEER_K,
        fallback_spares=SPARES,
        runner=runner,
    )
    return points, runner.last_map_mode


@pytest.fixture(scope="module")
def sweep_data():
    serial, serial_mode = run_sweep(1)
    serial_timing = measure(lambda: run_sweep(1), warmup=0, repeats=1)
    pooled, pooled_mode = run_sweep(2)
    pooled_timing = measure(lambda: run_sweep(2), warmup=0, repeats=1)
    serial_digest = hashlib.sha256(pickle.dumps(serial)).hexdigest()
    pooled_digest = hashlib.sha256(pickle.dumps(pooled)).hexdigest()
    payload = {
        "grid": {
            "offered_qps": list(OFFERED_QPS),
            "zipf_skews": list(ZIPF_SKEWS),
            "churn_rates_per_min": list(CHURN_RATES),
            "num_events": NUM_EVENTS,
            "seed": SEED,
            "max_peers": MAX_PEERS,
            "k": K,
            "peer_k": PEER_K,
        },
        "serial": serial_timing.as_dict(),
        "pooled_2_workers": pooled_timing.as_dict(),
        "serial_map_mode": serial_mode,
        "pooled_map_mode": pooled_mode,
        "serial_digest": serial_digest,
        "pooled_digest": pooled_digest,
        "identical_serial_vs_pooled": serial_digest == pooled_digest,
        "points": [
            {
                **dataclasses.asdict(point),
                "plan_hit_rate": point.plan_hit_rate,
                "served_bits_per_query": point.served_bits_per_query,
                "full_bits_per_query": point.full_bits_per_query,
                "bytes_saved_fraction": point.bytes_saved_fraction,
            }
            for point in serial
        ],
        "latency_vs_qps": {
            str(qps): {
                "served_p95_summary_ms": latency_summary(
                    p.served_p95_ms for p in serial if p.qps == qps
                ),
                "full_p95_summary_ms": latency_summary(
                    p.full_p95_ms for p in serial if p.qps == qps
                ),
            }
            for qps in OFFERED_QPS
        },
    }
    update_json_result("BENCH_serving", "sweep", payload)
    return {"serial": serial, "pooled": pooled, "payload": payload}


def _accept_cell(points):
    """The pinned acceptance cell: skewed log, fixed qps, no churn."""
    for point in points:
        if (
            point.qps == ACCEPT_QPS
            and point.zipf_s == ACCEPT_SKEW
            and point.churn_rate == 0.0
        ):
            return point
    raise AssertionError("acceptance cell missing from the sweep grid")


def test_bit_identical_serial_vs_pooled(sweep_data):
    """Acceptance: the pooled grid is byte-for-byte the serial grid."""
    assert sweep_data["payload"]["identical_serial_vs_pooled"]
    assert pickle.dumps(sweep_data["pooled"]) == pickle.dumps(
        sweep_data["serial"]
    )


def test_served_answers_match_one_shot_path(sweep_data):
    """Acceptance: every churn-free cell is per-query bit-identical to
    ``run_query_networked`` (the sweep checks topk and queried peers)."""
    checked = [p for p in sweep_data["serial"] if p.identity_checked]
    assert checked, "sweep has no churn-free cells"
    for point in checked:
        assert point.bit_identical


def test_plan_cache_hit_rate_on_skewed_log(sweep_data):
    """Acceptance: >= 50% plan-cache hits on the Zipf(s>=1) log."""
    point = _accept_cell(sweep_data["serial"])
    assert point.plan_hit_rate >= 0.5


def test_bytes_per_query_below_full_forwarding(sweep_data):
    """Acceptance: serving moves strictly fewer bits per query than the
    full-forwarding path, and streams strictly fewer result entries."""
    point = _accept_cell(sweep_data["serial"])
    assert point.served_bits_per_query < point.full_bits_per_query
    assert point.entries_streamed < point.entries_full


def test_served_p95_no_worse_than_uncached(sweep_data):
    """Acceptance: cached serving must not cost tail latency."""
    point = _accept_cell(sweep_data["serial"])
    assert point.served_p95_ms <= point.full_p95_ms


def test_cold_cache_bit_identity(sweep_data):
    """A fresh front end, one query at a time: every plan-cache miss
    must still produce exactly the one-shot path's answer (the cold
    path *is* the one-shot path plus streaming)."""
    del sweep_data  # ordering only: reuse the session after the sweep
    testbed = build_combination_testbed(CONFIG, **TESTBED_PARAMS)
    engine = testbed.engines["mips-64"]
    front = ServingFrontend(
        SimNetExecutor(engine, seed=SEED),
        IQNRouter(),
        max_peers=MAX_PEERS,
        k=K,
        peer_k=PEER_K,
        fallback_spares=SPARES,
    )
    cold = {}
    for query in testbed.queries:
        future = front.serve(query)
        front.run()
        cold[query.query_id] = future.value
    assert front.plan_stats().hits == 0  # every serve above was cold
    for query in testbed.queries:
        reference = engine.run_query_networked(
            query, IQNRouter(), max_peers=MAX_PEERS, k=K, peer_k=PEER_K
        )
        served = cold[query.query_id]
        assert served.topk == tuple(reference.merged[:K])
        assert served.queried == reference.selected
        assert not served.degraded


def test_log_is_reproducible(sweep_data):
    """The Zipf log is a pure function of (queries, events, skew, seed)."""
    del sweep_data
    testbed = build_combination_testbed(CONFIG, **TESTBED_PARAMS)
    first = make_query_log(
        testbed.queries, num_events=NUM_EVENTS, zipf_s=ACCEPT_SKEW, seed=SEED
    )
    second = make_query_log(
        testbed.queries, num_events=NUM_EVENTS, zipf_s=ACCEPT_SKEW, seed=SEED
    )
    assert first == second
