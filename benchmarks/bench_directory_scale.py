"""SCALE — 100k-peer directories on the packed column store.

Not a paper figure: this quantifies the columnar synopsis store
(:mod:`repro.synopses.columnstore`) end to end.  For each synopsis
family and directory size it ingests one Post per peer per term through
``Directory.publish_batch`` (packing is an ingest-time cost), measures
the resident bytes per peer of the packed columns, times IQN routing
over the full directory — asserting the router attached to the stored
columns (``stats.attach == "columns"``) — and verifies on a pinned
seeded grid that column-backed plans are bit-identical to the
object-backed fast path and the naive loop.

Results land in ``benchmarks/results/BENCH_columnar.json`` (bytes/peer,
build seconds, routing latency, peak RSS per cell) alongside a readable
table in ``directory_scale.txt``.

CI runs this module with ``BENCH_DIRECTORY_SCALE_QUICK=1``, which caps
the sweep at 10k peers so every PR exercises the columnar attach at
scale in seconds; the full 100k sweep is a local/nightly run and must
stay under ~2 GB peak RSS for the Bloom and MIPs families.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.aggregation import PerPeerAggregation
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.dht.ring import ChordRing
from repro.experiments.report import format_table
from repro.minerva.directory import Directory
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

from _util import measure, peak_rss_bytes, save_result, update_json_result

QUICK = bool(os.environ.get("BENCH_DIRECTORY_SCALE_QUICK"))

SPEC_LABELS = ("bf-2048", "mips-64", "hs-32", "ll-128")
#: Families required to hold at 100k peers (acceptance: < ~2 GB RSS).
FULL_SCALE_LABELS = ("bf-2048", "mips-64")
SIZES = (1_000, 10_000) if QUICK else (1_000, 10_000, 100_000)
TERMS = ("apple", "pear")
MAX_PEERS = 25
RSS_CEILING_BYTES = 2 * 1024**3


def make_posts(spec, num_peers, *, seed=7):
    """One Post per peer per term, deterministic in (spec, size, seed)."""
    rng = random.Random(seed)
    universe = 50 * num_peers
    posts = []
    for index in range(num_peers):
        peer_id = f"p{index:06d}"
        base = rng.randrange(0, universe)
        doc_ids = frozenset(
            (base + rng.randrange(0, 500)) % universe
            for _ in range(rng.randrange(10, 40))
        )
        for term in TERMS:
            term_ids = frozenset(d for d in doc_ids if rng.random() < 0.7)
            posts.append(
                Post(
                    peer_id=peer_id,
                    term=term,
                    cdf=max(1, len(term_ids)),
                    max_score=rng.random(),
                    avg_score=rng.random() / 2,
                    term_space_size=rng.randrange(50, 500),
                    synopsis=spec.build(term_ids),
                )
            )
    return posts


def build_directory(posts):
    ring = ChordRing([f"n{i}" for i in range(16)], bits=24)
    directory = Directory(ring)
    directory.publish_batch(posts)
    return directory


def stored_bytes(directory):
    """Resident bytes of the packed columns across all stored PeerLists."""
    total = 0
    for node_id in directory.ring.node_ids:
        for value in directory.ring.node(node_id).store.values():
            if not isinstance(value, PeerList):
                continue
            columns = value.columns
            for name in (
                "_peer_ids",
                "_cdf",
                "_max_score",
                "_avg_score",
                "_term_space",
                "_has_synopsis",
            ):
                total += getattr(columns, name).nbytes
            if columns.synopsis_column is not None:
                total += columns.synopsis_column._matrix.nbytes
    return total


def make_context(directory, spec, num_peers, *, seed=7):
    rng = random.Random(seed + 1)
    universe = 50 * num_peers
    peer_lists = directory.peer_lists(TERMS)
    seed_ids = frozenset(rng.randrange(0, universe) for _ in range(200))
    initiator = LocalView(
        peer_id="p000000",
        result_doc_ids=seed_ids,
        doc_ids_by_term={
            term: frozenset(x for x in seed_ids if rng.random() < 0.6)
            for term in TERMS
        },
    )
    return RoutingContext(
        query=Query(0, TERMS),
        peer_lists=peer_lists,
        num_peers=num_peers,
        spec=spec,
        initiator=initiator,
        conjunctive=False,
    )


def run_cell(spec_label, num_peers):
    """Ingest + route one (family, size) cell; returns a result-row dict."""
    spec = SynopsisSpec.parse(spec_label)
    posts = make_posts(spec, num_peers)
    build = measure(lambda: build_directory(posts), warmup=0, repeats=1)
    directory = build_directory(posts)
    bytes_per_peer = stored_bytes(directory) / num_peers
    router = IQNRouter(PerPeerAggregation())
    context = make_context(directory, spec, num_peers)

    def route():
        fresh = make_context(directory, spec, num_peers)
        return router.rank(fresh, MAX_PEERS)

    routing = measure(route, warmup=1, repeats=3 if num_peers < 100_000 else 1)
    assert router.last_stats is not None
    assert (
        router.last_stats.attach == "columns"
    ), f"{spec_label}@{num_peers}: routing fell off the columnar tier"
    plan = router.rank_detailed(context, MAX_PEERS)
    assert plan, f"{spec_label}@{num_peers}: empty plan"
    return {
        "spec": spec_label,
        "peers": num_peers,
        "posts": len(posts),
        "mode": router.last_stats.mode,
        "candidates": router.last_stats.candidates,
        "build_s": build.median_s,
        "bytes_per_peer": bytes_per_peer,
        "route_ms": routing.median_s * 1e3,
        "peak_rss_bytes": routing.peak_rss_bytes,
    }


def check_bit_identity(spec_label, *, num_peers=500, seed=13):
    """Column-backed plans == object fast path == naive loop, exactly."""
    spec = SynopsisSpec.parse(spec_label)
    posts = make_posts(spec, num_peers, seed=seed)
    directory = build_directory(posts)
    columnar_router = IQNRouter(PerPeerAggregation())
    columnar = columnar_router.rank_detailed(
        make_context(directory, spec, num_peers, seed=seed), MAX_PEERS
    )
    assert columnar_router.last_stats.attach == "columns"
    # Same content rebuilt on per-list private tables: the columnar view
    # cannot attach, so this exercises the object-era packing path.
    private = {term: PeerList(term=term) for term in TERMS}
    for post in posts:
        private[term_of(post)].add(post)
    object_router = IQNRouter(PerPeerAggregation())
    object_plan = object_router.rank_detailed(
        context_over(private, spec, num_peers, seed=seed), MAX_PEERS
    )
    assert object_router.last_stats.attach == "objects"
    naive = IQNRouter(PerPeerAggregation(), fast_path=False).rank_detailed(
        make_context(directory, spec, num_peers, seed=seed), MAX_PEERS
    )
    rows = lambda plan: [(s.peer_id, s.quality, s.novelty) for s in plan]
    assert rows(columnar) == rows(object_plan) == rows(naive), (
        f"plan divergence for {spec_label} at {num_peers} peers"
    )


def term_of(post):
    return post.term


def context_over(peer_lists, spec, num_peers, *, seed):
    rng = random.Random(seed + 1)
    universe = 50 * num_peers
    seed_ids = frozenset(rng.randrange(0, universe) for _ in range(200))
    initiator = LocalView(
        peer_id="p000000",
        result_doc_ids=seed_ids,
        doc_ids_by_term={
            term: frozenset(x for x in seed_ids if rng.random() < 0.6)
            for term in TERMS
        },
    )
    return RoutingContext(
        query=Query(0, TERMS),
        peer_lists=peer_lists,
        num_peers=num_peers,
        spec=spec,
        initiator=initiator,
        conjunctive=False,
    )


def cell_sizes(spec_label):
    if spec_label in FULL_SCALE_LABELS:
        return SIZES
    return tuple(size for size in SIZES if size <= 10_000)


@pytest.fixture(scope="module")
def sweep():
    rows = [
        run_cell(spec_label, size)
        for spec_label in SPEC_LABELS
        for size in cell_sizes(spec_label)
    ]
    table = format_table(
        [
            "synopsis",
            "peers",
            "posts",
            "mode",
            "build s",
            "B/peer",
            "route ms",
            "peak RSS MB",
        ],
        [
            [
                r["spec"],
                r["peers"],
                r["posts"],
                r["mode"],
                f"{r['build_s']:.2f}",
                f"{r['bytes_per_peer']:.0f}",
                f"{r['route_ms']:.1f}",
                f"{r['peak_rss_bytes'] / 1024**2:.0f}",
            ]
            for r in rows
        ],
    )
    suffix = "_quick" if QUICK else ""
    save_result(f"directory_scale{suffix}", table)
    update_json_result(
        "BENCH_columnar",
        "quick" if QUICK else "full",
        {
            "sizes": list(SIZES),
            "max_peers": MAX_PEERS,
            "cells": rows,
        },
    )
    return rows


def test_sweep_covers_every_family(sweep):
    assert {r["spec"] for r in sweep} == set(SPEC_LABELS)
    assert len(sweep) == sum(len(cell_sizes(label)) for label in SPEC_LABELS)


def test_routing_attaches_to_columns_everywhere(sweep):
    """run_cell already asserts attach == 'columns'; pin that it ran."""
    modes = {r["spec"]: r["mode"] for r in sweep}
    assert modes["bf-2048"] == "celf"
    for label in ("mips-64", "hs-32", "ll-128"):
        assert modes[label] == "incremental"


@pytest.mark.parametrize("spec_label", SPEC_LABELS)
def test_plans_bit_identical_on_seeded_grid(spec_label):
    check_bit_identity(spec_label)


@pytest.mark.skipif(QUICK, reason="acceptance needs the 100k sweep")
def test_100k_peers_fit_under_memory_ceiling(sweep):
    """Acceptance: 100k-peer build + route under ~2 GB for Bloom & MIPs."""
    big = [r for r in sweep if r["peers"] == 100_000]
    assert {r["spec"] for r in big} == set(FULL_SCALE_LABELS)
    for row in big:
        assert row["peak_rss_bytes"] < RSS_CEILING_BYTES, row
    assert peak_rss_bytes() < RSS_CEILING_BYTES


@pytest.mark.skipif(QUICK, reason="acceptance needs the 100k sweep")
def test_columns_stay_compact_per_peer(sweep):
    """Packed storage stays within 4x the wire size of one synopsis."""
    for row in sweep:
        spec = SynopsisSpec.parse(row["spec"])
        wire_bits = spec.build(frozenset([1, 2, 3])).size_in_bits
        # Two terms per peer plus metadata and doubling-growth slack.
        ceiling = 4 * len(TERMS) * (wire_bits / 8 + 40)
        assert row["bytes_per_peer"] < ceiling, row
