"""MICRO — synopsis operation throughput across collection sizes.

Times the three primitive operations every IQN iteration depends on —
build, union, resemblance estimation — for each synopsis family at 1k,
10k and 100k elements.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import DEFAULT_SPECS

SIZES = (1_000, 10_000, 100_000)


def ids_for(size):
    # Deterministic spread-out ids (multiplication by a large odd
    # constant modulo 2^40 is a bijection, so ids are distinct).
    return [(i * 2_654_435_761) % (1 << 40) for i in range(size)]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_build(benchmark, spec, size):
    ids = ids_for(size)
    synopsis = benchmark(lambda: spec.build(ids))
    assert not synopsis.is_empty


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_union(benchmark, spec):
    a = spec.build(ids_for(10_000))
    b = spec.build(ids_for(10_000)[5_000:] + ids_for(5_000))
    merged = benchmark(lambda: a.union(b))
    assert not merged.is_empty


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_estimate_resemblance(benchmark, spec):
    a = spec.build(ids_for(10_000))
    b = spec.build(ids_for(10_000)[::2] + ids_for(5_000))
    estimate = benchmark(lambda: a.estimate_resemblance(b))
    assert 0.0 <= estimate <= 1.0


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_estimate_cardinality(benchmark, spec):
    synopsis = spec.build(ids_for(10_000))
    estimate = benchmark(lambda: synopsis.estimate_cardinality())
    assert estimate > 0.0
