"""LOAD — per-peer load concentration under a multi-initiator workload.

Quantifies Section 8.2's throughput argument: with response times
superlinear in utilization, routing that concentrates forwards on a few
"best" peers hurts the whole network.  CORI, blind to what other
initiators already get from the same peers, piles onto the highest-
quality collections; IQN's novelty term (seeded by each initiator's own
local result) diversifies the plans.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.load import measure_load
from repro.experiments.report import format_table
from repro.routing.cori import CoriSelector
from repro.routing.random_select import RandomSelector

from _util import save_result

SPEC_LABEL = "mips-64"
MAX_PEERS = 5


@pytest.fixture(scope="module")
def figure_data(sliding_window_testbed, fig3_params):
    engine = sliding_window_testbed.engines[SPEC_LABEL]
    reports = measure_load(
        engine,
        sliding_window_testbed.queries,
        {
            "CORI": CoriSelector(),
            "IQN": IQNRouter(),
            "Random": RandomSelector(seed=5),
        },
        max_peers=MAX_PEERS,
        k=fig3_params["k"],
        peer_k=fig3_params["peer_k"],
    )
    rows = [
        [
            report.method,
            report.total_forwards,
            report.peers_touched,
            report.busiest_peer_share,
            report.imbalance(),
            report.hottest_response_time_ms(),
        ]
        for report in reports
    ]
    save_result(
        "load_balance",
        format_table(
            [
                "method",
                "forwards",
                "peers touched",
                "busiest share",
                "max/mean",
                "hottest peer M/M/1 ms",
            ],
            rows,
        ),
    )
    return {report.method: report for report in reports}


def test_total_forwards_identical(figure_data):
    """Same max_peers budget -> same message volume; only the
    distribution differs."""
    totals = {r.total_forwards for r in figure_data.values()}
    assert len(totals) == 1


def test_iqn_spreads_load_wider_than_cori(figure_data):
    assert (
        figure_data["IQN"].peers_touched >= figure_data["CORI"].peers_touched
    )
    assert (
        figure_data["IQN"].busiest_peer_share
        <= figure_data["CORI"].busiest_peer_share + 0.01
    )


def test_random_is_the_flatness_bound(figure_data):
    """Random touches at least as many peers as either informed method."""
    assert figure_data["Random"].peers_touched >= figure_data["IQN"].peers_touched - 2


def test_hottest_peer_latency_ordering(figure_data):
    """Concentration translates to M/M/1 latency on the hottest peer."""
    assert figure_data["IQN"].hottest_response_time_ms() <= (
        figure_data["CORI"].hottest_response_time_ms() + 1e-9
    )


def test_load_measurement_speed(benchmark, sliding_window_testbed, fig3_params, figure_data):
    engine = sliding_window_testbed.engines[SPEC_LABEL]
    query = sliding_window_testbed.queries[0]

    reports = benchmark.pedantic(
        lambda: measure_load(
            engine,
            [query],
            {"IQN": IQNRouter()},
            max_peers=MAX_PEERS,
            k=fig3_params["k"],
            peer_k=fig3_params["peer_k"],
            initiators_per_query=3,
        ),
        rounds=3,
        iterations=1,
    )
    assert reports[0].total_forwards == 3 * MAX_PEERS
