"""ROBUST — seed sensitivity of the Figure 3 conclusions.

A reproduction whose headline ordering only holds for one random corpus
would be worthless.  This bench rebuilds the sliding-window testbed for
three corpus seeds (smaller corpus, two synopsis configurations) and
checks that the paper's qualitative conclusions — IQN > CORI, MIPs >
Bloom at the 1024-bit budget — hold for *every* seed.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.config import FIG3_CORPUS
from repro.experiments.fig3 import (
    build_sliding_window_testbed,
    run_recall_experiment,
)
from repro.experiments.report import format_table

from _util import save_result

SEEDS = (2006, 7, 93)
SPEC_LABELS = ("mips-32", "bf-1024")
MAX_PEERS = 8


@pytest.fixture(scope="module")
def figure_data():
    corpus_template = dataclasses.replace(FIG3_CORPUS, num_docs=8_000)
    rows = []
    results = {}
    for seed in SEEDS:
        config = dataclasses.replace(corpus_template, seed=seed)
        testbed = build_sliding_window_testbed(
            config,
            spec_labels=SPEC_LABELS,
            num_queries=6,
        )
        curves = {
            c.method: c
            for c in run_recall_experiment(
                testbed, max_peers=MAX_PEERS, k=100, peer_k=30
            )
        }
        for method, curve in curves.items():
            rows.append([seed, method, curve.at(4), curve.at(MAX_PEERS)])
        results[seed] = curves
    save_result(
        "robustness_seed_sweep",
        format_table(["corpus seed", "method", "recall@4", f"recall@{MAX_PEERS}"], rows),
    )
    return results


def test_iqn_beats_cori_for_every_seed(figure_data):
    for seed, curves in figure_data.items():
        assert curves["IQN MIPs 32"].at(MAX_PEERS) > curves["CORI"].at(
            MAX_PEERS
        ), f"ordering broke for seed {seed}"


def test_bloom_competitive_below_overload_for_every_seed(figure_data):
    """Regime check, not an ordering check: this robustness sweep halves
    the corpus (8k docs), so per-peer index lists (~75–250 entries) no
    longer overload a 1024-bit Bloom filter — and BF-1024 should then be
    *competitive with* MIPs-32, unlike at the full Figure 3 scale where
    overload cripples it.  Seeing both regimes confirms the mechanism
    behind the paper's "MIPs beats BF" result is the overload itself."""
    for seed, curves in figure_data.items():
        mips = curves["IQN MIPs 32"].at(MAX_PEERS)
        bloom = curves["IQN BF 1024"].at(MAX_PEERS)
        assert abs(mips - bloom) < 0.10, (
            f"unexpected large MIPs/BF gap below overload for seed {seed}"
        )


def test_margins_are_substantial_everywhere(figure_data):
    """The IQN-over-CORI margin is not a borderline artifact."""
    for curves in figure_data.values():
        assert curves["IQN MIPs 32"].at(4) > 1.2 * curves["CORI"].at(4)


def test_one_testbed_build(benchmark, figure_data):
    """Time a (small) testbed construction — the experiment's fixed cost."""
    config = dataclasses.replace(FIG3_CORPUS, num_docs=2_000, seed=11)

    testbed = benchmark.pedantic(
        lambda: build_sliding_window_testbed(
            config, spec_labels=("mips-32",), num_queries=2
        ),
        rounds=1,
        iterations=1,
    )
    assert testbed.num_peers == 50
