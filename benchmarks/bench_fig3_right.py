"""FIG3-R — Figure 3 (right): recall vs queried peers, sliding window.

Regenerates the 50-peer sliding-window recall curves (the setting where
the paper reports IQN's largest margins: ">3x recall at ~5 peers", "50%
recall with ~5 peers where CORI needs >20") and benchmarks the routing
decision alone — the IQN Select-Best-Peer/Aggregate-Synopses loop over
50 candidates — separately from execution.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.fig3 import run_recall_experiment
from repro.experiments.report import format_recall_curves
from repro.routing.cori import CoriSelector

from _util import save_result


@pytest.fixture(scope="module")
def figure_data(sliding_window_testbed, fig3_params):
    curves = run_recall_experiment(
        sliding_window_testbed,
        max_peers=fig3_params["max_peers_right"],
        k=fig3_params["k"],
        peer_k=fig3_params["peer_k"],
    )
    save_result("fig3_right_recall_sliding_window", format_recall_curves(curves))
    return {c.method: c for c in curves}


def test_fig3_right_iqn_dominates_cori(figure_data):
    """Every IQN variant strictly beats CORI from 3 peers on."""
    cori = figure_data["CORI"]
    for method, curve in figure_data.items():
        if method == "CORI":
            continue
        for peers in (3, 5, 8, 10):
            assert curve.at(peers) > cori.at(peers)


def test_fig3_right_large_margin_at_five_peers(figure_data):
    """The paper's headline: a large recall multiple at ~5 peers."""
    assert figure_data["IQN MIPs 32"].at(5) > 1.4 * figure_data["CORI"].at(5)


def test_fig3_right_mips_beats_bloom_at_1024(figure_data):
    assert figure_data["IQN MIPs 32"].at(10) > figure_data["IQN BF 1024"].at(10)


def test_fig3_right_doubling_bits_helps_bloom_more(figure_data):
    """Doubling the budget rescues BF far more than it improves MIPs."""
    bloom_gain = figure_data["IQN BF 2048"].at(10) - figure_data["IQN BF 1024"].at(10)
    mips_gain = figure_data["IQN MIPs 64"].at(10) - figure_data["IQN MIPs 32"].at(10)
    assert bloom_gain > mips_gain


@pytest.mark.parametrize("method", ["CORI", "IQN MIPs 32", "IQN MIPs 64"])
def test_routing_decision_only(
    benchmark, sliding_window_testbed, fig3_params, method, figure_data
):
    """Time the pure routing decision over 50 candidates."""
    label = "mips-32" if "32" in method or method == "CORI" else "mips-64"
    engine = sliding_window_testbed.engines[label]
    selector = CoriSelector() if method == "CORI" else IQNRouter()
    query = sliding_window_testbed.queries[0]
    context = engine.make_context(
        query, initiator_id=sorted(engine.peers)[0], k=fig3_params["peer_k"]
    )

    ranked = benchmark.pedantic(
        lambda: selector.rank(context, fig3_params["max_peers_right"]),
        rounds=5,
        iterations=1,
    )
    assert len(ranked) <= fig3_params["max_peers_right"]
