"""FIG3-EXT — the comparison the paper discarded, completed.

Section 8.2: "We discarded hash sketches from these experiments because
of the insights from Section 3."  This bench runs the discarded
configuration anyway — IQN over Flajolet–Martin hash sketches at the
2048-bit budget — plus their cited successor (LogLog counting, [16],
which packs 409 buckets into the same budget), against the MIPs variant
the paper recommends, on the sliding-window testbed.

Expected shape: the counter families work (union-based novelty is
sound) but trail MIPs, justifying both the paper's discard decision and
its final choice of MIPs.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.partition import (
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from repro.datasets.corpus import build_gov_corpus
from repro.datasets.queries import make_workload
from repro.experiments.config import (
    FIG3_CORPUS,
    FIG3_PEER_K,
    FIG3_QUERY_POOL,
    FIG3_QUERY_POOL_OFFSET,
    FIG3_REFERENCE_K,
)
from repro.experiments.fig3 import RecallCurve
from repro.experiments.report import format_recall_curves
from repro.ir.index import InvertedIndex
from repro.ir.metrics import micro_average
from repro.minerva.engine import MinervaEngine
from repro.routing.cori import CoriSelector
from repro.synopses.factory import SynopsisSpec

from _util import save_result

#: All at the 2048-bit budget: MIPs 64, HSs 32, LL 409.
EXTENDED_LABELS = ("mips-64", "hs-32", "ll-409")
MAX_PEERS = 10


@pytest.fixture(scope="module")
def extended_testbed():
    corpus = build_gov_corpus(FIG3_CORPUS)
    fragments = fragment_corpus(corpus, 100)
    collections = corpora_from_doc_id_sets(
        corpus, sliding_window_collections(fragments, 10, 2)
    )
    queries = make_workload(
        FIG3_CORPUS,
        num_queries=8,
        pool_size=FIG3_QUERY_POOL,
        pool_offset=FIG3_QUERY_POOL_OFFSET,
        seed=7,
    )
    terms = {t for q in queries for t in q.terms}
    indexes = [InvertedIndex(c) for c in collections]
    engines = {}
    reference = None
    for label in EXTENDED_LABELS:
        engine = MinervaEngine(
            collections,
            spec=SynopsisSpec.parse(label),
            indexes=indexes,
            reference_index=reference,
        )
        engine.publish(terms)
        reference = engine.reference_index
        engines[label] = engine
    return engines, queries


@pytest.fixture(scope="module")
def figure_data(extended_testbed):
    engines, queries = extended_testbed
    methods = [("CORI", "mips-64", CoriSelector())]
    for label in EXTENDED_LABELS:
        methods.append(
            (f"IQN {SynopsisSpec.parse(label).label}", label, IQNRouter())
        )
    curves = []
    for name, label, selector in methods:
        per_query = [
            engines[label]
            .run_query(
                q,
                selector,
                max_peers=MAX_PEERS,
                k=FIG3_REFERENCE_K,
                peer_k=FIG3_PEER_K,
            )
            .recall_at
            for q in queries
        ]
        depth = min(len(r) for r in per_query)
        curves.append(
            RecallCurve(
                method=name,
                recall_at=tuple(
                    micro_average([r[j] for r in per_query]) for j in range(depth)
                ),
            )
        )
    save_result("fig3_extended_counter_families", format_recall_curves(curves))
    return {c.method: c for c in curves}


def test_counter_families_beat_cori(figure_data):
    """Even the discarded families carry useful novelty signal."""
    cori = figure_data["CORI"]
    for method in ("IQN HSs 32", "IQN LL 409"):
        assert figure_data[method].at(MAX_PEERS) > cori.at(MAX_PEERS)


def test_mips_justifies_the_papers_choice(figure_data):
    """MIPs at the same budget >= both counter families."""
    mips = figure_data["IQN MIPs 64"].at(MAX_PEERS)
    assert mips >= figure_data["IQN HSs 32"].at(MAX_PEERS) - 0.03
    assert mips >= figure_data["IQN LL 409"].at(MAX_PEERS) - 0.03


def test_loglog_at_least_matches_hash_sketches(figure_data):
    """The successor should not be worse than FM sketches mid-curve."""
    ll = figure_data["IQN LL 409"]
    hs = figure_data["IQN HSs 32"]
    midrange = sum(ll.at(j) for j in (4, 6, 8))
    assert midrange >= sum(hs.at(j) for j in (4, 6, 8)) - 0.1


def test_one_routed_query_per_family(benchmark, extended_testbed, figure_data):
    engines, queries = extended_testbed
    engine = engines["ll-409"]
    outcome = benchmark.pedantic(
        lambda: engine.run_query(
            queries[0],
            IQNRouter(),
            max_peers=MAX_PEERS,
            k=FIG3_REFERENCE_K,
            peer_k=FIG3_PEER_K,
        ),
        rounds=3,
        iterations=1,
    )
    assert outcome.selected
