"""FIG3-L — Figure 3 (left): recall vs queried peers, C(6,3) placement.

Regenerates the recall curves for CORI and the four IQN variants over
the 20-peer combination testbed, and benchmarks one complete routed
query (PeerList fetch + IQN loop + execution + merge) per method.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.fig3 import default_selectors, run_recall_experiment
from repro.experiments.report import format_recall_curves
from repro.routing.cori import CoriSelector

from _util import save_result


@pytest.fixture(scope="module")
def figure_data(combination_testbed, fig3_params):
    curves = run_recall_experiment(
        combination_testbed,
        max_peers=fig3_params["max_peers_left"],
        k=fig3_params["k"],
        peer_k=fig3_params["peer_k"],
    )
    save_result("fig3_left_recall_combination", format_recall_curves(curves))
    return {c.method: c for c in curves}


def test_fig3_left_iqn_beats_cori_midrange(figure_data):
    """All IQN variants >= CORI in the 2-4 peer range (paper's margin)."""
    for peers in (2, 3, 4):
        cori = figure_data["CORI"].at(peers)
        assert figure_data["IQN MIPs 64"].at(peers) >= cori
        assert figure_data["IQN MIPs 32"].at(peers) >= cori - 0.02


def test_fig3_left_mips_at_least_bloom_at_1024_bits(figure_data):
    """At the 1024-bit budget MIPs-based IQN >= Bloom-based IQN."""
    mips = figure_data["IQN MIPs 32"]
    bloom = figure_data["IQN BF 1024"]
    midrange = range(2, 5)
    assert sum(mips.at(j) for j in midrange) >= sum(
        bloom.at(j) for j in midrange
    ) - 0.02


@pytest.mark.parametrize("method", ["CORI", "IQN MIPs 64"])
def test_routed_query(
    benchmark, combination_testbed, fig3_params, method, figure_data
):
    engine = combination_testbed.engines["mips-64"]
    selector = CoriSelector() if method == "CORI" else IQNRouter()
    query = combination_testbed.queries[0]

    def routed_query():
        return engine.run_query(
            query,
            selector,
            max_peers=fig3_params["max_peers_left"],
            k=fig3_params["k"],
            peer_k=fig3_params["peer_k"],
        )

    outcome = benchmark.pedantic(routed_query, rounds=5, iterations=1)
    assert outcome.selected
