"""ABL-AGG — Section 6 ablation: per-peer vs per-term aggregation.

Compares the two multi-keyword aggregation strategies under disjunctive
and conjunctive query semantics on the combination testbed, and times
one IQN routing decision per strategy.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import PerPeerAggregation, PerTermAggregation
from repro.core.iqn import IQNRouter
from repro.experiments.ablations import aggregation_ablation
from repro.experiments.report import format_recall_curves

from _util import save_result

SPEC_LABEL = "mips-64"


@pytest.fixture(scope="module")
def figure_data(combination_testbed, fig3_params):
    sections = []
    results = {}
    for conjunctive in (False, True):
        curves = aggregation_ablation(
            combination_testbed,
            spec_label=SPEC_LABEL,
            max_peers=fig3_params["max_peers_left"],
            k=fig3_params["k"],
            conjunctive=conjunctive,
        )
        mode = "conjunctive" if conjunctive else "disjunctive"
        sections.append(f"[{mode}]\n" + format_recall_curves(curves))
        results[mode] = {c.method: c for c in curves}
    save_result("ablation_aggregation", "\n\n".join(sections))
    return results


def test_both_strategies_effective(figure_data):
    """Both strategies produce sane, rising curves in both query modes."""
    for mode, curves in figure_data.items():
        for curve in curves.values():
            assert curve.recall_at[-1] >= curve.recall_at[0]
            assert curve.recall_at[-1] > 0.0


def test_strategies_comparable_disjunctive(figure_data):
    """Section 6.3: per-term preserves relative ranking well enough to
    stay in the same league as per-peer."""
    per_peer = figure_data["disjunctive"]["IQN per-peer"]
    per_term = figure_data["disjunctive"]["IQN per-term"]
    assert per_term.recall_at[-1] > 0.6 * per_peer.recall_at[-1]


@pytest.mark.parametrize("strategy_name", ["per-peer", "per-term"])
def test_routing_decision(
    benchmark, combination_testbed, fig3_params, strategy_name, figure_data
):
    engine = combination_testbed.engines[SPEC_LABEL]
    strategy = (
        PerPeerAggregation() if strategy_name == "per-peer" else PerTermAggregation()
    )
    selector = IQNRouter(strategy)
    query = combination_testbed.queries[0]
    context = engine.make_context(
        query, initiator_id=sorted(engine.peers)[0], k=fig3_params["peer_k"]
    )
    ranked = benchmark.pedantic(
        lambda: selector.rank(context, fig3_params["max_peers_left"]),
        rounds=5,
        iterations=1,
    )
    assert ranked
