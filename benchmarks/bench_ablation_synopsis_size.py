"""ABL-SIZE — estimation accuracy as a function of the bit budget.

Figure 3 probes two budgets (1024 and 2048 bits); this ablation sweeps
the whole range 256..8192 bits for every synopsis family on the Figure 2
workload (10k-element sets, 33% overlap), charting each family's
accuracy-per-bit profile:

- MIPs error falls like ``1/sqrt(bits)`` (more permutations);
- Bloom filters are step-like: garbage until the filter exits overload,
  then rapidly excellent;
- the counter families improve slowly (error driven by bucket count).
"""

from __future__ import annotations

import random
from statistics import mean

import pytest

from repro.datasets.synthetic import pair_with_overlap_fraction
from repro.experiments.report import format_table
from repro.synopses.factory import KINDS, SynopsisSpec
from repro.synopses.measures import resemblance

from _util import save_result

BUDGETS = (256, 512, 1024, 2048, 4096, 8192)
SET_SIZE = 10_000
RUNS = 12


@pytest.fixture(scope="module")
def figure_data():
    errors: dict[tuple[str, int], float] = {}
    for kind in KINDS:
        for budget in BUDGETS:
            spec = SynopsisSpec.for_budget(kind, budget)
            run_errors = []
            for run in range(RUNS):
                rng = random.Random(f"size-sweep:{kind}:{budget}:{run}")
                set_a, set_b = pair_with_overlap_fraction(
                    SET_SIZE, 1 / 3, rng=rng
                )
                truth = resemblance(set_a, set_b)
                est = spec.build(set_a).estimate_resemblance(spec.build(set_b))
                run_errors.append(abs(est - truth) / truth)
            errors[(kind, budget)] = mean(run_errors)
    rows = [
        [budget, *[errors[(kind, budget)] for kind in KINDS]]
        for budget in BUDGETS
    ]
    save_result(
        "ablation_synopsis_size",
        format_table(["bits", *KINDS], rows),
    )
    return errors


def test_mips_error_shrinks_with_budget(figure_data):
    assert figure_data[("mips", 8192)] < 0.5 * figure_data[("mips", 256)]


def test_bloom_exits_overload_at_high_budgets(figure_data):
    """At 10k elements a Bloom filter needs a lot of bits; the sweep
    should show the overload cliff between 2048 and 8192 bits is still
    present (10k elements >> 8192/8), i.e. BF stays bad throughout."""
    assert figure_data[("bloom", 2048)] > 1.0
    assert figure_data[("bloom", 256)] > 1.0


def test_mips_dominates_the_papers_families_at_every_budget(figure_data):
    """Among the three families the paper evaluates, MIPs wins at every
    budget — Figure 2's conclusion, generalized over the sweep."""
    for budget in BUDGETS:
        for kind in ("bloom", "hash-sketch"):
            assert figure_data[("mips", budget)] <= figure_data[(kind, budget)]


def test_loglog_is_competitive_with_mips(figure_data):
    """A finding beyond the paper: LogLog (cited [16] but never
    evaluated) matches or beats MIPs on *pure resemblance accuracy* at
    equal bits — 5-bit registers buy ~6x more buckets than 32-bit
    minima.  MIPs keeps its structural advantages (unbiasedness,
    intersection heuristic, heterogeneous lengths), but for union-only
    cardinality workloads LogLog is the better spend."""
    for budget in BUDGETS:
        assert figure_data[("loglog", budget)] <= 1.2 * figure_data[
            ("mips", budget)
        ]


@pytest.mark.parametrize("kind", KINDS)
def test_build_cost_at_2048_bits(benchmark, kind, figure_data):
    spec = SynopsisSpec.for_budget(kind, 2048)
    rng = random.Random(3)
    ids, _ = pair_with_overlap_fraction(SET_SIZE, 1 / 3, rng=rng)
    synopsis = benchmark(lambda: spec.build(ids))
    assert not synopsis.is_empty
