"""HIERARCHY — flat vs. super-peer routing on 1k–100k-peer directories.

Not a paper figure: this is the acceptance gate for the hierarchical
routing tier (:mod:`repro.topology`).  For each network size it builds
one :class:`~repro.datasets.scale.ScaledTestbed` and routes the same
topical workload through ``FlatTopology`` and ``SuperPeerTopology``
over the same directory, recording coverage recall, directory messages,
bits, and DHT hops per query (see
:mod:`repro.experiments.hierarchy` for the accounting rules).

The claim under test: **at 10k peers and above, two-phase super-peer
routing spends strictly fewer messages per query at essentially the
same recall** (within ``RECALL_EPS``), and eliminates per-term DHT hop
chains entirely.

Results land in ``benchmarks/results/BENCH_hierarchy.json`` alongside a
readable table in ``hierarchy.txt``.

CI runs this module with ``BENCH_HIERARCHY_QUICK=1``, which caps the
sweep at 10k peers so every PR exercises the super-peer tier at scale
in seconds; the full 100k sweep is a local/nightly run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.hierarchy import hierarchy_sweep
from repro.experiments.report import format_table

from _util import save_result, update_json_result

QUICK = bool(os.environ.get("BENCH_HIERARCHY_QUICK"))

SIZES = (1_000, 10_000) if QUICK else (1_000, 10_000, 100_000)
NUM_QUERIES = 12 if QUICK else 20
SEED = 11
#: Recall a super-peer cell may give up and still count as "fixed".
RECALL_EPS = 0.02


@pytest.fixture(scope="module")
def sweep():
    points = hierarchy_sweep(SIZES, num_queries=NUM_QUERIES, seed=SEED)
    rows = [
        {
            "peers": p.num_peers,
            "topology": p.topology,
            "recall": round(p.mean_recall, 4),
            "messages": round(p.mean_messages, 2),
            "kbits": round(p.mean_kbits, 2),
            "dht_hops": round(p.mean_dht_hops, 2),
            "super_fetches": round(p.mean_super_fetches, 2),
            "scope": round(p.mean_scope, 1),
        }
        for p in points
    ]
    table = format_table(
        [
            "peers",
            "topology",
            "recall",
            "msgs/q",
            "kbits/q",
            "hops/q",
            "fetches/q",
            "scope",
        ],
        [
            [
                r["peers"],
                r["topology"],
                r["recall"],
                r["messages"],
                r["kbits"],
                r["dht_hops"],
                r["super_fetches"],
                r["scope"],
            ]
            for r in rows
        ],
    )
    suffix = "_quick" if QUICK else ""
    save_result(f"hierarchy{suffix}", table)
    update_json_result(
        "BENCH_hierarchy",
        "quick" if QUICK else "full",
        {
            "sizes": list(SIZES),
            "num_queries": NUM_QUERIES,
            "seed": SEED,
            "recall_eps": RECALL_EPS,
            "cells": rows,
        },
    )
    return points


def _paired(points):
    """(flat, super-peer) per size, in sweep order."""
    by_size = {}
    for point in points:
        by_size.setdefault(point.num_peers, {})[point.topology] = point
    return [
        (cell["flat"], cell["super-peer"]) for cell in by_size.values()
    ]


def test_sweep_covers_both_topologies_at_every_size(sweep):
    assert len(sweep) == 2 * len(SIZES)
    assert {p.num_peers for p in sweep} == set(SIZES)
    pairs = _paired(sweep)
    assert len(pairs) == len(SIZES)


def test_superpeer_fewer_messages_at_fixed_recall(sweep):
    """Acceptance: >= 1 cell at >= 10k peers with strictly fewer
    messages and recall within RECALL_EPS of flat."""
    wins = [
        (flat, sp)
        for flat, sp in _paired(sweep)
        if flat.num_peers >= 10_000
        and sp.mean_messages < flat.mean_messages
        and sp.mean_recall >= flat.mean_recall - RECALL_EPS
    ]
    assert wins, [
        (p.topology, p.num_peers, p.mean_messages, p.mean_recall)
        for p in sweep
    ]


def test_superpeer_beats_flat_everywhere_on_messages(sweep):
    for flat, sp in _paired(sweep):
        assert sp.mean_messages < flat.mean_messages, (flat, sp)


def test_superpeer_skips_dht_hop_chains(sweep):
    """Two-phase routing asks its super-peer directly: zero DHT hops,
    while flat pays a hop chain per term lookup."""
    for flat, sp in _paired(sweep):
        assert sp.mean_dht_hops == 0.0, sp
        assert flat.mean_dht_hops > 0.0, flat
        assert sp.mean_super_fetches > 0.0, sp


def test_sweep_is_deterministic_per_cell(sweep):
    """Re-running the smallest cell reproduces its two rows exactly."""
    smallest = min(SIZES)
    again = hierarchy_sweep((smallest,), num_queries=NUM_QUERIES, seed=SEED)
    original = [p for p in sweep if p.num_peers == smallest]
    assert again == original
