"""FIG2-R — Figure 2 (right): resemblance error vs mutual overlap.

Regenerates the chart's series (relative error at overlaps 50% ... 11%,
fixed 10k-document collections) and benchmarks the per-overlap estimation
cycle at the two extreme overlap settings.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import pair_with_overlap_fraction
from repro.experiments.fig2 import (
    DEFAULT_SPECS,
    FIG2_RIGHT_OVERLAPS,
    error_vs_overlap,
)
from repro.experiments.report import format_error_points

from _util import save_result

RUNS = 30
COLLECTION_SIZE = 10_000


@pytest.fixture(scope="module")
def figure_data():
    points = error_vs_overlap(
        overlaps=FIG2_RIGHT_OVERLAPS,
        collection_size=COLLECTION_SIZE,
        runs=RUNS,
        seed=2006,
    )
    save_result(
        "fig2_right_error_vs_overlap",
        format_error_points(points, x_name="mutual overlap"),
    )
    return points


def test_fig2_right_shape(figure_data):
    """BF overloaded at every overlap; MIPs and HSs low across the range."""
    mips = [p for p in figure_data if p.spec_label == "MIPs 64"]
    bloom = [p for p in figure_data if p.spec_label == "BF 2048"]
    assert all(p.mean_relative_error < 1.0 for p in mips)
    assert min(p.mean_relative_error for p in bloom) > max(
        p.mean_relative_error for p in mips
    )


@pytest.mark.parametrize("overlap", [0.5, 1.0 / 9.0], ids=["50pct", "11pct"])
@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_estimation_cycle(benchmark, spec, overlap, figure_data):
    rng = random.Random(7)
    set_a, set_b = pair_with_overlap_fraction(COLLECTION_SIZE, overlap, rng=rng)

    def cycle():
        return spec.build(set_a).estimate_resemblance(spec.build(set_b))

    estimate = benchmark(cycle)
    assert 0.0 <= estimate <= 1.0
