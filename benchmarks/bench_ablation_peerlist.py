"""ABL-PEERLIST — Section 4's PeerList retrieval trade-off.

"For efficiency reasons, the query initiator can decide to not retrieve
the complete PeerLists, but only a subset ... calculated by a
distributed top-k algorithm like [25]."

Two measurements:

1. **Payload scaling** on a synthetic 400-peer directory (the regime the
   optimization targets — popular terms with very long PeerLists): bits
   shipped by a full fetch vs the NRA top-k threshold fetch.
2. **Recall trade** on the real sliding-window testbed, whose PeerLists
   are short (~25 peers/term): here top-k shortlisting mainly caps the
   candidate set, costing some recall for little payload — the honest
   flip side the harness should show too.
"""

from __future__ import annotations

import pytest

from repro.dht.ring import ChordRing
from repro.experiments.ablations import peerlist_fetch_ablation
from repro.experiments.report import format_table
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.minerva.topk_peers import fetch_top_k_peers
from repro.net.cost import CostModel, MessageKinds
from repro.synopses.factory import SynopsisSpec

from _util import save_result

SPEC_LABEL = "mips-64"
SPEC = SynopsisSpec.parse(SPEC_LABEL)
LARGE_NETWORK_PEERS = 400


@pytest.fixture(scope="module")
def large_directory():
    """A directory where two popular terms have 400-entry PeerLists."""
    ring = ChordRing([f"n{i}" for i in range(32)], bits=16)
    directory = Directory(ring, cost=CostModel())
    for i in range(LARGE_NETWORK_PEERS):
        for term in ("apple", "pear"):
            score = 1000.0 / (i + 1) if term == "apple" else 1000.0 / ((i * 7) % 400 + 1)
            directory.publish(
                Post(
                    peer_id=f"p{i:03d}",
                    term=term,
                    cdf=50 + i % 100,
                    max_score=score,
                    avg_score=score / 2,
                    term_space_size=1000,
                    synopsis=SPEC.build(range(50)),
                )
            )
    return directory


@pytest.fixture(scope="module")
def payload_scaling(large_directory):
    rows = []
    results = {}
    for mode in ("full", "top-20", "top-5"):
        large_directory.cost.reset()
        if mode == "full":
            for term in ("apple", "pear"):
                large_directory.peer_list(term)
        else:
            k = int(mode.split("-")[1])
            fetch_top_k_peers(
                large_directory, ("apple", "pear"), k, batch_size=16
            )
        snap = large_directory.cost.snapshot()
        rows.append(
            [mode, snap.bits(MessageKinds.PEERLIST_FETCH), snap.messages(MessageKinds.DHT_HOP)]
        )
        results[mode] = snap.bits(MessageKinds.PEERLIST_FETCH)
    save_result(
        "ablation_peerlist_payload",
        format_table(
            [f"fetch mode ({LARGE_NETWORK_PEERS}-peer lists)", "peerlist bits", "dht hops"],
            rows,
        ),
    )
    return results


def test_topk_fetch_saves_payload_on_long_lists(payload_scaling):
    """On 400-entry PeerLists the threshold fetch ships a fraction."""
    assert payload_scaling["top-5"] < 0.35 * payload_scaling["full"]
    assert payload_scaling["top-20"] < 0.7 * payload_scaling["full"]


@pytest.fixture(scope="module")
def recall_trade(sliding_window_testbed, fig3_params):
    trials = peerlist_fetch_ablation(
        sliding_window_testbed,
        spec_label=SPEC_LABEL,
        max_peers=fig3_params["max_peers_right"],
        k=fig3_params["k"],
        peer_k=fig3_params["peer_k"],
        peer_list_limits=(None, 20, 10),
    )
    rows = [
        [
            trial.mode,
            trial.mean_final_recall,
            int(trial.mean_peerlist_bits),
            trial.mean_dht_hops,
        ]
        for trial in trials
    ]
    save_result(
        "ablation_peerlist_fetch",
        format_table(
            ["fetch mode", "final recall", "peerlist bits/query", "dht hops"],
            rows,
        ),
    )
    return {trial.mode: trial for trial in trials}


def test_topk_recall_stays_close(recall_trade):
    """Routing over the top-20 shortlist keeps most of the recall."""
    full = recall_trade["full"].mean_final_recall
    limited = recall_trade["top-20"].mean_final_recall
    assert limited > 0.8 * full


def test_tighter_limits_trade_monotonically(recall_trade):
    assert (
        recall_trade["top-10"].mean_peerlist_bits
        <= recall_trade["top-20"].mean_peerlist_bits
    )
    assert (
        recall_trade["top-10"].mean_final_recall
        <= recall_trade["top-20"].mean_final_recall + 0.02
    )


def test_nra_fetch_speed(benchmark, large_directory, payload_scaling):
    result = benchmark.pedantic(
        lambda: fetch_top_k_peers(
            large_directory, ("apple", "pear"), 10, batch_size=16
        ),
        rounds=5,
        iterations=1,
    )
    assert len(result.top_peers) == 10
