"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import pathlib
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n[saved to {path}]")


def update_json_result(name: str, key: str, payload: Any) -> pathlib.Path:
    """Merge ``payload`` under ``key`` into benchmarks/results/<name>.json.

    Benchmark modules run independently (and in any order), so each one
    contributes its section read-modify-write instead of owning the file.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    document: dict[str, Any] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    document[key] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@dataclass(frozen=True)
class Timing:
    """Median-of-N wall-clock measurement for one unit of work.

    A single sample is hostage to whatever else the machine was doing
    that instant; warmup runs absorb one-time costs (imports, cache
    population, branch-predictor warm-up) and the median of the
    remaining repeats is robust to stragglers — so speedup ratios built
    from these numbers are stable run to run.
    """

    median_s: float
    min_s: float
    max_s: float
    repeats: int
    warmup: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "median_s": self.median_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }


def measure(
    fn: Callable[[], Any], *, warmup: int = 1, repeats: int = 5
) -> Timing:
    """Time ``fn`` with warmup iterations and median-of-``repeats``."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(
        median_s=statistics.median(samples),
        min_s=min(samples),
        max_s=max(samples),
        repeats=repeats,
        warmup=warmup,
    )
