"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import math
import pathlib
import resource
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile: smallest value with >= ``q`` of the mass.

    The convention the experiment modules use (``ceil(q * n) - 1`` into
    the ascending sort), kept here so every benchmark's p50/p95/p99
    means the same thing.  ``q`` is a fraction in (0, 1].
    """
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


def latency_summary(values: Iterable[float]) -> dict[str, float]:
    """p50/p95/p99 (plus mean and count) of a latency sample, for JSON.

    One shared shape for every benchmark's latency metadata, so the
    regression harness can diff percentiles across benches uniformly.
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("latency_summary of an empty sequence")
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
    }


def current_rss_bytes() -> int:
    """This process's resident set size right now, in bytes.

    Reads ``/proc/self/status`` (Linux); returns 0 where unavailable so
    benchmarks stay runnable on other platforms.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def save_result(
    name: str, text: str, *, metrics: dict[str, Any] | None = None
) -> None:
    """Persist a regenerated table under benchmarks/results/ and print it.

    ``metrics`` (when given) is additionally merged into the module's
    JSON result file under the key ``name`` via
    :func:`update_json_result`, so machine-readable numbers ride along
    with the human-readable table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if metrics is not None:
        update_json_result(name, "metrics", metrics)
    print(f"\n=== {name} ===\n{text}\n[saved to {path}]")


def update_json_result(name: str, key: str, payload: Any) -> pathlib.Path:
    """Merge ``payload`` under ``key`` into benchmarks/results/<name>.json.

    Benchmark modules run independently (and in any order), so each one
    contributes its section read-modify-write instead of owning the file.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    document: dict[str, Any] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    document[key] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@dataclass(frozen=True)
class Timing:
    """Median-of-N wall-clock measurement for one unit of work.

    A single sample is hostage to whatever else the machine was doing
    that instant; warmup runs absorb one-time costs (imports, cache
    population, branch-predictor warm-up) and the median of the
    remaining repeats is robust to stragglers — so speedup ratios built
    from these numbers are stable run to run.
    """

    median_s: float
    min_s: float
    max_s: float
    repeats: int
    warmup: int
    #: Process-lifetime peak RSS observed right after the timed runs, in
    #: bytes (0 where the platform offers no reading).  A high-water
    #: mark, not an attribution: memory held before ``fn`` ran counts.
    peak_rss_bytes: int = 0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "median_s": self.median_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


def measure(
    fn: Callable[[], Any], *, warmup: int = 1, repeats: int = 5
) -> Timing:
    """Time ``fn`` with warmup iterations and median-of-``repeats``.

    Alongside the wall-clock medians the returned :class:`Timing`
    carries the process's peak RSS sampled after the last repeat, so
    memory-bound benchmarks report their footprint with no extra
    plumbing at the call sites.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(
        median_s=statistics.median(samples),
        min_s=min(samples),
        max_s=max(samples),
        repeats=repeats,
        warmup=warmup,
        peak_rss_bytes=peak_rss_bytes(),
    )
