"""ABL-HIST — Section 7.1 ablation: flat vs score-conscious novelty.

Builds a sliding-window network twice over the same collections — once
with flat per-term synopses, once with per-score-cell histogram synopses
— and compares IQN recall, plus times the weighted novelty computation.
"""

from __future__ import annotations

import pytest

from repro.core.histogram_routing import (
    HistogramAggregation,
    weighted_histogram_novelty,
)
from repro.datasets.corpus import build_gov_corpus
from repro.datasets.partition import (
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from repro.datasets.queries import make_workload
from repro.experiments.ablations import histogram_ablation
from repro.experiments.config import (
    FIG3_CORPUS,
    FIG3_PEER_K,
    FIG3_QUERY_POOL,
    FIG3_QUERY_POOL_OFFSET,
    FIG3_REFERENCE_K,
)
from repro.experiments.report import format_recall_curves
from repro.ir.index import InvertedIndex
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec
from repro.synopses.histogram import ScoreHistogramSynopsis

from _util import save_result

SPEC = SynopsisSpec.parse("mips-32")
CELLS = 4


@pytest.fixture(scope="module")
def engines_and_queries():
    corpus = build_gov_corpus(FIG3_CORPUS)
    fragments = fragment_corpus(corpus, 100)
    collections = corpora_from_doc_id_sets(
        corpus, sliding_window_collections(fragments, 10, 2)
    )
    queries = make_workload(
        FIG3_CORPUS,
        num_queries=6,
        pool_size=FIG3_QUERY_POOL,
        pool_offset=FIG3_QUERY_POOL_OFFSET,
        seed=7,
    )
    terms = {t for q in queries for t in q.terms}
    indexes = [InvertedIndex(c) for c in collections]
    flat = MinervaEngine(collections, spec=SPEC, indexes=indexes)
    flat.publish(terms)
    hist = MinervaEngine(
        collections,
        spec=SPEC,
        indexes=indexes,
        histogram_cells=CELLS,
        reference_index=flat.reference_index,
    )
    hist.publish(terms, with_histogram=True)
    return flat, hist, queries


@pytest.fixture(scope="module")
def figure_data(engines_and_queries):
    flat, hist, queries = engines_and_queries
    curves = histogram_ablation(
        flat, hist, queries, max_peers=8, k=FIG3_REFERENCE_K
    )
    save_result("ablation_histogram", format_recall_curves(curves))
    return {c.method: c for c in curves}


def test_histogram_routing_competitive(figure_data):
    """Score-conscious novelty must be at least competitive with flat
    novelty on top-k recall (the quantity it optimizes for)."""
    flat = figure_data["IQN flat"]
    hist = figure_data["IQN histogram"]
    assert hist.recall_at[-1] >= 0.85 * flat.recall_at[-1]


def test_histogram_curves_monotone(figure_data):
    for curve in figure_data.values():
        for earlier, later in zip(curve.recall_at, curve.recall_at[1:]):
            assert later >= earlier - 1e-9


def test_weighted_novelty_cost(benchmark, engines_and_queries, figure_data):
    """Cost of one Section 7.1 weighted novelty: cells^2 estimations."""
    _, hist_engine, queries = engines_and_queries
    peers = sorted(hist_engine.peers)
    term = queries[0].terms[0]
    reference = hist_engine.peers[peers[0]].histogram_synopsis(term)
    candidate = hist_engine.peers[peers[1]].histogram_synopsis(term)
    value = benchmark(lambda: weighted_histogram_novelty(candidate, reference))
    assert value >= 0.0


def test_histogram_aggregation_strategy_runs(engines_and_queries):
    _, hist_engine, queries = engines_and_queries
    context = hist_engine.make_context(
        queries[0], initiator_id=sorted(hist_engine.peers)[0], k=FIG3_PEER_K
    )
    strategy = HistogramAggregation()
    state = strategy.start(context)
    assert isinstance(state.reference, ScoreHistogramSynopsis)
