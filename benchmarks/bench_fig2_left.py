"""FIG2-L — Figure 2 (left): resemblance error vs collection size.

Regenerates the chart's series (relative error of MIPs 64 / HSs 32 /
BF 2048 at 33% mutual overlap, collection sizes 1k-60k) and benchmarks
one full estimation cycle (build two synopses + estimate) per technique
at the 10k-document point.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import pair_with_overlap_fraction
from repro.experiments.fig2 import DEFAULT_SPECS, error_vs_collection_size
from repro.experiments.report import format_error_points

from _util import save_result

SIZES = (1_000, 5_000, 10_000, 20_000, 30_000, 45_000, 60_000)
RUNS = 30


@pytest.fixture(scope="module")
def figure_data():
    points = error_vs_collection_size(sizes=SIZES, runs=RUNS, seed=2006)
    save_result(
        "fig2_left_error_vs_size",
        format_error_points(points, x_name="docs/collection"),
    )
    return points


def test_fig2_left_shape(figure_data):
    """The paper's finding: MIPs lowest and size-independent; BF blows up
    once overloaded."""
    by_key = {(p.spec_label, p.x_value): p.mean_relative_error for p in figure_data}
    assert by_key[("BF 2048", 60_000)] > 3 * by_key[("MIPs 64", 60_000)]
    assert by_key[("MIPs 64", 60_000)] < by_key[("MIPs 64", 1_000)] + 0.3


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_estimation_cycle(benchmark, spec, figure_data):
    rng = random.Random(42)
    set_a, set_b = pair_with_overlap_fraction(10_000, 1 / 3, rng=rng)

    def cycle():
        return spec.build(set_a).estimate_resemblance(spec.build(set_b))

    estimate = benchmark(cycle)
    assert 0.0 <= estimate <= 1.0
