"""ABL-REPOST — re-posting economics under an evolving crawl.

Section 7.2 flags posting bandwidth as "a critical issue" when "peers
post frequent updates"; Section 9 asks for "dynamic and automatic
adaptation to evolving data".  This ablation grows every peer's crawl
over four rounds and compares re-posting policies (always / drift
thresholds / never) on cumulative posting bits vs IQN recall.

Expected shape: posting bits separate hugely (eager re-posting costs
2-4x); recall barely moves — synopses describe *relative* overlap
structure, which uniform-ish crawl growth preserves, so the threshold
policy (the paper's adaptation knob) gets fresh-directory quality at
near-zero update bandwidth.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.config import FIG3_CORPUS
from repro.experiments.reposting import reposting_experiment
from repro.experiments.report import format_table

from _util import save_result

ROUNDS = 4


@pytest.fixture(scope="module")
def figure_data():
    config = dataclasses.replace(FIG3_CORPUS, num_docs=6_000)
    rows = reposting_experiment(
        config,
        rounds=ROUNDS,
        num_peers=12,
        num_queries=6,
        seed=31,
    )
    table = [
        [
            row.policy,
            row.round_index,
            row.cumulative_post_bits,
            row.posts_this_round,
            row.mean_recall,
        ]
        for row in rows
    ]
    save_result(
        "ablation_reposting",
        format_table(
            ["policy", "round", "cumulative post bits", "posts", "mean recall"],
            table,
        ),
    )
    final = {}
    for row in rows:
        if row.round_index == ROUNDS - 1:
            final[row.policy] = row
    return final


def test_bandwidth_ordering(figure_data):
    assert (
        figure_data["always"].cumulative_post_bits
        > figure_data["threshold-1.5"].cumulative_post_bits
        >= figure_data["threshold-2.5"].cumulative_post_bits
        >= figure_data["never"].cumulative_post_bits
    )


def test_eager_reposting_costs_at_least_double(figure_data):
    assert figure_data["always"].cumulative_post_bits > 2 * figure_data[
        "threshold-1.5"
    ].cumulative_post_bits


def test_recall_insensitive_to_policy(figure_data):
    """The (measured) punchline: relative overlap structure survives
    growth, so lazy re-posting costs almost no recall."""
    recalls = [row.mean_recall for row in figure_data.values()]
    assert max(recalls) - min(recalls) < 0.10


def test_never_posts_nothing_after_round_zero(figure_data):
    assert figure_data["never"].posts_this_round == 0


def test_experiment_speed(benchmark, figure_data):
    config = dataclasses.replace(FIG3_CORPUS, num_docs=1_500)
    rows = benchmark.pedantic(
        lambda: reposting_experiment(
            config,
            policies={"threshold-1.5": 1.5},
            rounds=2,
            num_peers=6,
            num_queries=2,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2
