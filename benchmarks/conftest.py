"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index):

- the *figure data* is computed once per session in a fixture and saved
  under ``benchmarks/results/<name>.txt`` (and printed, visible with
  ``pytest -s``);
- ``benchmark``-fixture functions then time the representative unit of
  work (one estimation, one routing decision, ...), so
  ``pytest benchmarks/ --benchmark-only`` yields both the reproduction
  artifacts and performance numbers.

The corpus-scale experiments (Figure 3) take ~1 minute per testbed to
build; testbeds are session-scoped and shared across bench modules.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    FIG3_CORPUS,
    FIG3_NUM_QUERIES,
    FIG3_PEER_K,
    FIG3_QUERY_POOL,
    FIG3_QUERY_POOL_OFFSET,
    FIG3_REFERENCE_K,
)
from repro.experiments.fig3 import (
    build_combination_testbed,
    build_sliding_window_testbed,
)

@pytest.fixture(scope="session")
def fig3_params():
    return {
        "max_peers_left": 7,
        "max_peers_right": 10,
        "k": FIG3_REFERENCE_K,
        "peer_k": FIG3_PEER_K,
    }


@pytest.fixture(scope="session")
def combination_testbed():
    """Figure 3 left: C(6,3) = 20 peers over the GOV-like corpus."""
    return build_combination_testbed(
        FIG3_CORPUS,
        num_queries=FIG3_NUM_QUERIES,
        query_pool_size=FIG3_QUERY_POOL,
        query_pool_offset=FIG3_QUERY_POOL_OFFSET,
    )


@pytest.fixture(scope="session")
def sliding_window_testbed():
    """Figure 3 right: 50 peers, window 10, offset 2, 100 fragments."""
    return build_sliding_window_testbed(
        FIG3_CORPUS,
        num_queries=FIG3_NUM_QUERIES,
        query_pool_size=FIG3_QUERY_POOL,
        query_pool_offset=FIG3_QUERY_POOL_OFFSET,
    )
