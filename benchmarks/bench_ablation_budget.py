"""ABL-BUDGET — Section 7.2 ablation: adaptive synopsis lengths.

At a fixed total bit budget per peer, compares uniform per-term lengths
against benefit-proportional allocation by the accuracy of the novelty
estimates the resulting synopses produce, and times the allocator.
"""

from __future__ import annotations

import pytest

from repro.core.budget import allocate_budget, benefit_list_length
from repro.experiments.ablations import budget_ablation
from repro.experiments.report import format_table
from repro.synopses.mips import BITS_PER_POSITION

from _util import save_result

#: Budgets in MIPs positions per query term on average: scarce to ample.
POSITIONS_PER_TERM = (8, 24, 64)


@pytest.fixture(scope="module")
def figure_data(combination_testbed):
    engine = combination_testbed.engines["mips-64"]
    queries = combination_testbed.queries
    num_terms = len({t for q in queries for t in q.terms})
    rows = []
    results = {}
    for positions in POSITIONS_PER_TERM:
        total_bits = positions * num_terms * BITS_PER_POSITION
        trials = budget_ablation(engine, queries, total_bits=total_bits)
        for trial in trials:
            rows.append(
                [
                    f"{positions} pos/term",
                    trial.policy,
                    trial.total_bits,
                    trial.mean_absolute_error,
                ]
            )
            results[(positions, trial.policy)] = trial.mean_absolute_error
    save_result(
        "ablation_budget",
        format_table(["budget", "policy", "total bits", "mean abs error"], rows),
    )
    return results


def test_adaptive_allocation_helps_under_scarcity(figure_data):
    """With scarce budgets, spending bits on long lists must not hurt —
    benefit-proportional stays within a whisker of uniform and typically
    wins."""
    scarce = POSITIONS_PER_TERM[0]
    adaptive = figure_data[(scarce, "benefit-proportional")]
    uniform = figure_data[(scarce, "uniform")]
    assert adaptive <= 1.25 * uniform


def test_more_budget_reduces_error(figure_data):
    for policy in ("uniform", "benefit-proportional"):
        assert figure_data[(POSITIONS_PER_TERM[-1], policy)] <= figure_data[
            (POSITIONS_PER_TERM[0], policy)
        ]


def test_allocator_speed(benchmark, combination_testbed, figure_data):
    engine = combination_testbed.engines["mips-64"]
    peer = engine.peers[sorted(engine.peers)[0]]
    terms = sorted(peer.index.vocabulary)[:200]

    allocation = benchmark(
        lambda: allocate_budget(
            peer.index,
            terms,
            200 * 32 * BITS_PER_POSITION,
            benefit=benefit_list_length,
        )
    )
    assert sum(allocation.values()) == 200 * 32 * BITS_PER_POSITION
