"""TBL-S3 — Section 3.4's qualitative synopsis comparison, made measurable.

Produces the capability matrix (which operations each family supports)
plus a measured table of the four criteria the paper discusses:
estimation error, space, aggregability, heterogeneity tolerance.
"""

from __future__ import annotations

import random
from statistics import mean

import pytest

from repro.datasets.synthetic import pair_with_overlap_fraction
from repro.experiments.fig2 import DEFAULT_SPECS
from repro.experiments.report import format_capability_matrix, format_table
from repro.synopses.base import UnsupportedOperationError
from repro.synopses.measures import resemblance

from _util import save_result


@pytest.fixture(scope="module")
def matrix_and_measurements():
    matrix = format_capability_matrix()

    rows = []
    for spec in DEFAULT_SPECS:
        errors = []
        for run in range(15):
            rng = random.Random(f"matrix:{spec.label}:{run}")
            set_a, set_b = pair_with_overlap_fraction(5_000, 1 / 3, rng=rng)
            truth = resemblance(set_a, set_b)
            est = spec.build(set_a).estimate_resemblance(spec.build(set_b))
            errors.append(abs(est - truth) / truth)
        try:
            spec.build(range(10)).intersect(spec.build(range(5, 15)))
            intersect_ok = "yes"
        except UnsupportedOperationError:
            intersect_ok = "no"
        rows.append(
            [
                spec.label,
                spec.size_in_bits,
                mean(errors),
                intersect_ok,
                "yes" if spec.supports_heterogeneous_sizes else "no",
            ]
        )
    measured = format_table(
        ["synopsis", "bits", "rel. error @5k/33%", "intersect", "hetero sizes"],
        rows,
    )
    save_result("table_s3_synopsis_matrix", matrix + "\n\n" + measured)
    return rows


def test_matrix_orders_mips_best(matrix_and_measurements):
    errors = {row[0]: row[2] for row in matrix_and_measurements}
    assert errors["MIPs 64"] <= errors["HSs 32"]
    assert errors["MIPs 64"] < errors["BF 2048"]


def test_capability_flags(matrix_and_measurements):
    flags = {row[0]: (row[3], row[4]) for row in matrix_and_measurements}
    assert flags["MIPs 64"] == ("yes", "yes")
    assert flags["HSs 32"] == ("no", "no")
    assert flags["BF 2048"] == ("yes", "no")


@pytest.mark.parametrize("spec", DEFAULT_SPECS, ids=lambda s: s.label)
def test_union_aggregation(benchmark, spec, matrix_and_measurements):
    """Aggregate-Synopses step cost: one pairwise union."""
    a = spec.build(range(5_000))
    b = spec.build(range(2_500, 7_500))
    merged = benchmark(lambda: a.union(b))
    assert not merged.is_empty
