"""PARALLEL — the process-pool + setup-cache experiment engine.

The acceptance scenario for :mod:`repro.parallel`: a fig3-style grid
(recall curves at several routing budgets over one testbed) executed

- the **pre-PR way**: every cell rebuilds its testbed (exactly what
  each ``python -m repro.experiments`` invocation did) and runs its
  (method, query) tasks serially in process;
- the **pooled way**: the testbed is built once into a content-addressed
  :class:`~repro.parallel.cache.SetupCache` and every cell fans its
  tasks out over a :class:`~repro.parallel.pool.TaskPool` at 1/2/4/8
  workers against the warm cache.

Timings use warmup + median-of-N (:func:`_util.measure`), results are
asserted bit-identical across all execution modes, and the numbers land
in ``benchmarks/results/BENCH_parallel.json`` — the machine-readable
perf trajectory for this engine (the simnet section is contributed by
``bench_simnet_load.py``).
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.experiments.config import SMALL_CORPUS
from repro.experiments.fig3 import (
    build_combination_testbed,
    cached_testbed,
    run_recall_experiment,
)
from repro.parallel import ExperimentRunner, TaskPool

from _util import measure, update_json_result

#: One grid cell per routing budget; all cells share the same testbed,
#: which is what makes the setup cache the dominant lever.
GRID_MAX_PEERS = (2, 3, 4, 5, 6, 7)
WORKER_COUNTS = (1, 2, 4, 8)

CONFIG = dataclasses.replace(SMALL_CORPUS, topic_smear=1.0)
TESTBED_PARAMS = dict(num_queries=4, query_pool_size=12, query_pool_offset=0)
K, PEER_K = 30, 10


def run_grid_serial_pre_pr():
    """The pre-PR path: rebuild the testbed for every cell, run serially."""
    grid = []
    for max_peers in GRID_MAX_PEERS:
        testbed = build_combination_testbed(CONFIG, **TESTBED_PARAMS)
        grid.append(
            run_recall_experiment(testbed, max_peers=max_peers, k=K, peer_k=PEER_K)
        )
    return grid


def run_grid_pooled(workers: int, cache_dir) -> tuple[list, ExperimentRunner]:
    """The pooled path: cached setup + task fan-out, fresh runner per grid."""
    runner = ExperimentRunner(workers=workers, cache_dir=cache_dir)
    grid = []
    for max_peers in GRID_MAX_PEERS:
        handle = cached_testbed(runner, "combination", CONFIG, **TESTBED_PARAMS)
        grid.append(
            run_recall_experiment(
                handle.value,
                max_peers=max_peers,
                k=K,
                peer_k=PEER_K,
                runner=runner,
                testbed_handle=handle,
            )
        )
    return grid, runner


@pytest.fixture(scope="module")
def grid_data(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("parallel-grid-cache")

    # Cold run: populates the cache (1 miss) and gives the baseline grid.
    cold_grid, cold_runner = run_grid_pooled(1, cache_dir)
    cold_stats = cold_runner.cache.stats.as_dict()

    serial_grid = run_grid_serial_pre_pr()  # also the serial warmup
    serial_timing = measure(run_grid_serial_pre_pr, warmup=0, repeats=3)

    pooled = {}
    warm_grids = {}
    warm_stats = {}
    for workers in WORKER_COUNTS:
        grid, runner = run_grid_pooled(workers, cache_dir)  # warmup
        warm_grids[workers] = grid
        warm_stats[workers] = runner.cache.stats.as_dict()
        pooled[workers] = measure(
            lambda workers=workers: run_grid_pooled(workers, cache_dir),
            warmup=0,
            repeats=3,
        )

    tasks_per_grid = (
        len(GRID_MAX_PEERS) * 5 * TESTBED_PARAMS["num_queries"]
    )  # 5 methods: CORI + four IQN variants
    speedup_at_8 = serial_timing.median_s / pooled[8].median_s
    payload = {
        "cells": len(GRID_MAX_PEERS),
        "tasks_per_grid": tasks_per_grid,
        "serial_pre_pr": serial_timing.as_dict(),
        "serial_tasks_per_sec": tasks_per_grid / serial_timing.median_s,
        "pooled_warm": {
            str(workers): timing.as_dict() for workers, timing in pooled.items()
        },
        "pooled_tasks_per_sec": {
            str(workers): tasks_per_grid / timing.median_s
            for workers, timing in pooled.items()
        },
        "speedup_at_8_workers_warm_cache": speedup_at_8,
        "cache_cold": cold_stats,
        "cache_warm": warm_stats[8],
        "identical_across_worker_counts": all(
            pickle.dumps(warm_grids[workers]) == pickle.dumps(serial_grid)
            for workers in WORKER_COUNTS
        ),
    }
    update_json_result("BENCH_parallel", "grid", payload)
    update_json_result(
        "BENCH_parallel", "machine", {"cpus": os.cpu_count() or 1}
    )
    return {
        "serial_grid": serial_grid,
        "cold_grid": cold_grid,
        "warm_grids": warm_grids,
        "payload": payload,
    }


def test_grid_results_identical_across_execution_modes(grid_data):
    """Acceptance: byte-identical output serial vs pooled, cold vs warm."""
    reference = pickle.dumps(grid_data["serial_grid"])
    assert pickle.dumps(grid_data["cold_grid"]) == reference
    for workers, grid in grid_data["warm_grids"].items():
        assert pickle.dumps(grid) == reference, f"workers={workers} diverged"


def test_warm_cache_speedup(grid_data):
    """Acceptance: >= 3x wall-clock at 8 workers against a warm cache."""
    assert grid_data["payload"]["speedup_at_8_workers_warm_cache"] >= 3.0


def test_cache_hits(grid_data):
    """The grid builds its testbed exactly once, then always hits."""
    assert grid_data["payload"]["cache_cold"]["misses"] == 1
    warm = grid_data["payload"]["cache_warm"]
    assert warm["misses"] == 0
    assert warm["hits"] == len(GRID_MAX_PEERS)


def _echo_task(task, seed):
    """Trivial entrypoint for measuring raw pool dispatch overhead."""
    return (task, seed)


def test_pool_dispatch_overhead(benchmark):
    """Real-time cost of fanning 64 trivial tasks over 2 workers."""
    pool = TaskPool(2)
    result = benchmark.pedantic(
        lambda: pool.map(_echo_task, list(range(64))), rounds=3, iterations=1
    )
    assert len(result) == 64
