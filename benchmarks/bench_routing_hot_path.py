"""HOT-PATH — vectorized + lazy-greedy routing vs the naive IQN loop.

Not a paper figure: this quantifies the routing fast path
(:mod:`repro.core.fastpath`).  For each synopsis family and candidate
count it runs the same Select-Best-Peer problem through the naive loop
and the fast path, records wall time and novelty-evaluation counts,
verifies the plans are bit-identical, and saves the comparison table
under ``benchmarks/results/routing_hot_path.txt``.

CI runs this module with ``BENCH_HOT_PATH_QUICK=1``, which shrinks the
candidate sweep so the fast path (both tiers, all families) is exercised
on every PR in seconds.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core.aggregation import PerPeerAggregation
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.experiments.report import format_table
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

from _util import save_result

QUICK = bool(os.environ.get("BENCH_HOT_PATH_QUICK"))

SPEC_LABELS = ("bf-2048", "mips-64", "hs-32", "ll-128")
CANDIDATE_COUNTS = (50, 100) if QUICK else (50, 200, 800)
MAX_PEERS = 25
TERMS = ("apple", "pear")


def make_context(seed, *, num_peers, spec_label):
    """Clustered-overlap directory snapshot, ~100 docs universe per peer."""
    rng = random.Random(seed)
    spec = SynopsisSpec.parse(spec_label)
    universe = 100 * num_peers
    peer_lists = {term: PeerList(term=term) for term in TERMS}
    for i in range(num_peers):
        peer_id = f"p{i:04d}"
        base = rng.randrange(0, universe)
        size = rng.randrange(20, 400)
        doc_ids = set()
        for _ in range(size):
            if rng.random() < 0.6:
                doc_ids.add((base + rng.randrange(0, 300)) % universe)
            else:
                doc_ids.add(rng.randrange(0, universe))
        for term in TERMS:
            if rng.random() < 0.85:
                term_ids = {d for d in doc_ids if rng.random() < 0.7}
                if not term_ids:
                    continue
                peer_lists[term].add(
                    Post(
                        peer_id=peer_id,
                        term=term,
                        cdf=len(term_ids),
                        max_score=rng.random(),
                        avg_score=rng.random() / 2,
                        term_space_size=rng.randrange(50, 500),
                        synopsis=spec.build(term_ids),
                    )
                )
    seed_ids = frozenset(rng.randrange(0, universe) for _ in range(150))
    initiator = LocalView(
        peer_id="me",
        result_doc_ids=seed_ids,
        doc_ids_by_term={
            term: frozenset(x for x in seed_ids if rng.random() < 0.6)
            for term in TERMS
        },
    )
    return RoutingContext(
        query=Query(0, TERMS),
        peer_lists=peer_lists,
        num_peers=num_peers + 1,
        spec=spec,
        initiator=initiator,
        conjunctive=False,
    )


def run_once(spec_label, num_peers):
    """One naive-vs-fast comparison; returns a result-row dict."""
    naive = IQNRouter(PerPeerAggregation(), fast_path=False)
    fast = IQNRouter(PerPeerAggregation())
    context_naive = make_context(1, num_peers=num_peers, spec_label=spec_label)
    context_fast = make_context(1, num_peers=num_peers, spec_label=spec_label)
    t0 = time.perf_counter()
    plan_naive = naive.rank_detailed(context_naive, MAX_PEERS)
    naive_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    plan_fast = fast.rank_detailed(context_fast, MAX_PEERS)
    fast_seconds = time.perf_counter() - t0
    assert [(s.peer_id, s.quality, s.novelty) for s in plan_fast] == [
        (s.peer_id, s.quality, s.novelty) for s in plan_naive
    ], f"fast path diverged for {spec_label} at {num_peers} candidates"
    return {
        "spec": spec_label,
        "candidates": fast.last_stats.candidates,
        "mode": fast.last_stats.mode,
        "naive_evals": naive.last_stats.novelty_evaluations,
        "fast_evals": fast.last_stats.novelty_evaluations,
        "eval_ratio": (
            naive.last_stats.novelty_evaluations
            / fast.last_stats.novelty_evaluations
        ),
        "naive_ms": naive_seconds * 1e3,
        "fast_ms": fast_seconds * 1e3,
        "speedup": naive_seconds / fast_seconds,
    }


@pytest.fixture(scope="module")
def comparison():
    rows = [
        run_once(spec_label, count)
        for spec_label in SPEC_LABELS
        for count in CANDIDATE_COUNTS
    ]
    table = format_table(
        [
            "synopsis",
            "candidates",
            "mode",
            "naive evals",
            "fast evals",
            "eval ratio",
            "naive ms",
            "fast ms",
            "speedup",
        ],
        [
            [
                r["spec"],
                r["candidates"],
                r["mode"],
                r["naive_evals"],
                r["fast_evals"],
                f"{r['eval_ratio']:.1f}x",
                f"{r['naive_ms']:.1f}",
                f"{r['fast_ms']:.1f}",
                f"{r['speedup']:.1f}x",
            ]
            for r in rows
        ],
    )
    suffix = "_quick" if QUICK else ""
    save_result(f"routing_hot_path{suffix}", table)
    return rows


def test_plans_identical_everywhere(comparison):
    """run_once already asserts equality; this pins that it actually ran
    across the whole sweep."""
    assert len(comparison) == len(SPEC_LABELS) * len(CANDIDATE_COUNTS)


def test_every_family_uses_its_fast_tier(comparison):
    modes = {r["spec"]: r["mode"] for r in comparison}
    assert modes["bf-2048"] == "celf"
    for label in ("mips-64", "hs-32", "ll-128"):
        assert modes[label] == "incremental"


@pytest.mark.skipif(QUICK, reason="acceptance thresholds need the full sweep")
def test_lazy_greedy_saves_3x_evaluations_at_scale(comparison):
    """Acceptance: >= 3x fewer novelty evaluations (lazy vs naive) at
    >= 200 candidates for the CELF tier."""
    big = [
        r
        for r in comparison
        if r["mode"] == "celf" and r["candidates"] >= 200
    ]
    assert big, "no CELF measurements at >= 200 candidates"
    assert all(r["eval_ratio"] >= 3.0 for r in big), big


@pytest.mark.skipif(QUICK, reason="acceptance thresholds need the full sweep")
def test_wall_time_speedup_at_scale(comparison):
    """Acceptance: measurable wall-time speedup at >= 200 candidates for
    every synopsis family."""
    for row in comparison:
        if row["candidates"] >= 200:
            assert row["speedup"] > 1.0, row


@pytest.mark.parametrize("spec_label", SPEC_LABELS)
def test_rank_fast(benchmark, spec_label, comparison):
    count = CANDIDATE_COUNTS[-1]
    context = make_context(1, num_peers=count, spec_label=spec_label)
    router = IQNRouter(PerPeerAggregation())
    plan = benchmark(lambda: router.rank(context, MAX_PEERS))
    assert plan


@pytest.mark.parametrize("spec_label", SPEC_LABELS)
def test_rank_naive(benchmark, spec_label, comparison):
    count = CANDIDATE_COUNTS[-1]
    context = make_context(1, num_peers=count, spec_label=spec_label)
    router = IQNRouter(PerPeerAggregation(), fast_path=False)
    plan = benchmark(lambda: router.rank(context, MAX_PEERS))
    assert plan
