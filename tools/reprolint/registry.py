"""Rule base class and global rule registry.

Every rule is a subclass of :class:`Rule` decorated with
:func:`register_rule`.  Rules are stateless: :meth:`Rule.check` receives
a parsed module and the (posix-normalized) path being checked and yields
findings.  Path scoping lives in :meth:`Rule.applies_to` so the engine
can skip whole files cheaply and so tests can probe scoping in
isolation.
"""

from __future__ import annotations

import abc
from pathlib import PurePath
from typing import TYPE_CHECKING, Iterable, Iterator, Type

if TYPE_CHECKING:
    import ast

    from .engine import Finding

__all__ = [
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "rule_ids",
]


def normalize_path(path: str) -> str:
    """Return ``path`` with forward slashes, for fragment matching."""
    return PurePath(path).as_posix()


class Rule(abc.ABC):
    """One named invariant check over a parsed module.

    Class attributes
    ----------------
    rule_id:
        Stable identifier (``RPRL00x``) used in output and suppressions.
    name:
        Short kebab-case summary of the invariant.
    rationale:
        One-sentence statement of why the invariant exists; surfaced by
        ``--list-rules``.
    scope_fragments:
        Posix path fragments; the rule runs only on files whose path
        contains at least one of them.  Empty means "every file".
    """

    rule_id: str = ""
    name: str = ""
    rationale: str = ""
    scope_fragments: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope_fragments:
            return True
        posix = normalize_path(path)
        return any(fragment in posix for fragment in self.scope_fragments)

    @abc.abstractmethod
    def check(self, tree: "ast.Module", path: str) -> Iterator["Finding"]:
        """Yield a :class:`Finding` for every violation in ``tree``."""


_REGISTRY: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id}: {existing.__name__} vs {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select`` ids."""
    if select is None:
        ids = sorted(_REGISTRY)
    else:
        ids = sorted(set(select))
        unknown = [i for i in ids if i not in _REGISTRY]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return [_REGISTRY[i]() for i in ids]


def get_rule(rule_id: str) -> Rule:
    """Instantiate the registered rule with id ``rule_id``."""
    return _REGISTRY[rule_id]()


def rule_ids() -> list[str]:
    """All registered rule ids, sorted."""
    return sorted(_REGISTRY)
