"""Call graph over a :class:`~reprolint.project.resolver.ProjectIndex`.

For every function in the index, resolve the calls its body makes to
qualified names — project functions and methods where possible, external
canonical dotted names (``time.time``, ``numpy.asarray``) otherwise —
and record them as :class:`CallSite` edges.

Method calls need receiver types, so the graph carries a small
best-effort type environment per function:

- parameter annotations (``runner: ExperimentRunner | None``),
- locals assigned from constructor calls (``pool = TaskPool(...)``),
- locals assigned from calls whose return annotation names a project
  class (``handle = runner.setup(...)``),
- ``self`` inside methods, and ``self.<attr>`` types harvested from
  ``__init__`` assignments.

Chained receivers (``self._pool(1, setup).map(...)``) resolve through
return annotations.  Anything the inferencer cannot see simply produces
no edge — rules treat missing edges as "unknown", never as "clean taint
source" or "violation".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .resolver import FunctionInfo, ProjectIndex, _dotted_parts

__all__ = ["CallSite", "CallGraph", "walk_pruned"]


@dataclass(frozen=True)
class CallSite:
    """One call edge: ``caller`` invokes ``callee`` at ``path:line``."""

    caller: str
    callee: str
    external: bool
    path: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for test failure output
        arrow = "~>" if self.external else "->"
        return f"<{self.caller} {arrow} {self.callee} @{self.line}>"


class CallGraph:
    """Resolved call edges plus the per-function type environments."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.sites: list[CallSite] = []
        self.by_caller: dict[str, list[CallSite]] = {}
        self.callers_of: dict[str, list[CallSite]] = {}
        self._envs: dict[str, dict[str, str]] = {}
        self._call_nodes: dict[tuple[str, int, int], ast.Call] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index)
        for info in index.functions.values():
            graph._analyze_function(info)
        return graph

    # -- public lookups ----------------------------------------------------

    def env_for(self, qualname: str) -> dict[str, str]:
        """Name -> project-class type environment of a function body."""
        return self._envs.get(qualname, {})

    def call_node(self, site: CallSite) -> ast.Call | None:
        return self._call_nodes.get((site.caller, site.line, site.col))

    def resolve_callee(self, info: FunctionInfo, call: ast.Call) -> str | None:
        """Qualified name of a call target (see :meth:`infer_type`)."""
        env = self.env_for(info.qualname)
        return self._resolve_callee(info, call, env)

    def infer_type(
        self, info: FunctionInfo, expr: ast.expr
    ) -> str | None:
        """Project class an expression evaluates to, best effort."""
        return self._infer_type(info, expr, self.env_for(info.qualname))

    # -- construction ------------------------------------------------------

    def _analyze_function(self, info: FunctionInfo) -> None:
        env = self._build_env(info)
        self._envs[info.qualname] = env
        for call in _own_calls(info.node):
            callee = self._resolve_callee(info, call, env)
            if callee is None:
                continue
            external = not (
                callee in self.index.functions or callee in self.index.classes
            )
            site = CallSite(
                caller=info.qualname,
                callee=callee,
                external=external,
                path=info.path,
                line=call.lineno,
                col=call.col_offset,
            )
            self.sites.append(site)
            self.by_caller.setdefault(info.qualname, []).append(site)
            self.callers_of.setdefault(callee, []).append(site)
            self._call_nodes[(info.qualname, call.lineno, call.col_offset)] = call

    def _build_env(self, info: FunctionInfo) -> dict[str, str]:
        env: dict[str, str] = {}
        args = info.node.args
        for param in args.posonlyargs + args.args + args.kwonlyargs:
            if param.annotation is not None:
                typed = self.index.annotation_to_class(
                    info.module, param.annotation
                )
                if typed:
                    env[param.arg] = typed
        if info.cls is not None:
            env.setdefault("self", info.cls)
        # Two passes so a local assigned before its producer is defined
        # textually (rare, but loops reorder things) still resolves.
        for _ in range(2):
            for node in _own_statements(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                    if isinstance(target, ast.Name):
                        typed = self.index.annotation_to_class(
                            info.module, node.annotation
                        )
                        if typed:
                            env[target.id] = typed
                            continue
                else:
                    continue
                if not isinstance(target, ast.Name):
                    continue
                typed = self._infer_type(info, value, env)
                if typed:
                    env[target.id] = typed
        return env

    # -- inference ---------------------------------------------------------

    def _resolve_callee(
        self, info: FunctionInfo, call: ast.Call, env: dict[str, str]
    ) -> str | None:
        func = call.func
        parts = _dotted_parts(func)
        if parts is not None:
            head = parts[0]
            if head not in env or len(parts) == 1:
                direct = self.index.resolve(info.module, parts)
                if direct is not None:
                    if direct in self.index.classes:
                        init = self.index.method_on(direct, "__init__")
                        return init.qualname if init else direct
                    return direct
        if isinstance(func, ast.Attribute):
            receiver = self._infer_type(info, func.value, env)
            if receiver is not None:
                method = self.index.method_on(receiver, func.attr)
                if method is not None:
                    return method.qualname
        return None

    def _infer_type(
        self, info: FunctionInfo, expr: ast.expr, env: dict[str, str]
    ) -> str | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._infer_type(info, expr.value, env)
            if base is not None:
                return self.index.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            callee = self._resolve_callee(info, expr, env)
            if callee is None:
                return None
            if callee in self.index.classes:
                return callee
            target = self.index.functions.get(callee)
            if target is not None:
                if target.node.name == "__init__" and target.cls is not None:
                    return target.cls
                if target.node.returns is not None:
                    return self.index.annotation_to_class(
                        target.module, target.node.returns
                    )
            return None
        if isinstance(expr, ast.Await):
            return self._infer_type(info, expr.value, env)
        return None


def _own_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Statements of a function body, not descending into nested defs."""
    for stmt in func.body:
        for node in walk_pruned(stmt):
            if isinstance(node, ast.stmt):
                yield node


def walk_pruned(root: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but never descends into nested defs/classes.

    Calls inside a nested function belong to that function's own call
    graph entry; descending here would double-attribute them.  Lambda
    bodies stay in scope — they have no entry of their own.
    """
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _own_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Call expressions belonging to this function (not nested defs)."""
    for stmt in func.body:
        for node in walk_pruned(stmt):
            if isinstance(node, ast.Call):
                yield node
