"""RPRL102 — columnar dtype/shape contracts at the packed-array boundary.

The columnar tier (``repro.synopses.columnstore`` storage,
``repro.routing.columns`` views, ``repro.core.fastpath`` kernels) owes
its bit-identity guarantee to every array having a *declared* dtype: a
silent float64→float32 narrowing changes scores in the last bits, and
an object-dtype array silently falls back to per-element Python
dispatch — both would surface as a benchmark regression long after the
offending commit.  This rule makes them fail lint instead:

- array constructors (``np.array``, ``np.asarray``, ``np.zeros``,
  ``np.ones``, ``np.empty``, ``np.full``, ``np.frombuffer``,
  ``np.arange``, ``np.fromiter``) inside a boundary module must pass an
  explicit ``dtype`` (keyword or the documented positional slot);
- ``dtype=object`` / ``astype(object)`` is banned outright in boundary
  modules, as are the narrowed floats ``float32``/``float16`` (all
  scoring runs float64, all ids int64, all bitmaps uint64);
- **inter-procedural**: every function in a boundary module that is
  called *from a different boundary module* must carry full parameter
  and return annotations — the annotation is the dtype contract the
  caller compiles against, and the strict mypy gate holds it to truth.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..engine import Finding
from .base import ProjectRule, register_project_rule
from .callgraph import walk_pruned

if TYPE_CHECKING:
    from .analyzer import ProjectContext

__all__ = ["ColumnarDtypeContract"]

#: numpy constructor -> positional index where dtype may legally sit
#: (None: keyword-only for our purposes).
_CONSTRUCTORS: dict[str, int | None] = {
    "numpy.array": 1,
    "numpy.asarray": 1,
    "numpy.ascontiguousarray": 1,
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.frombuffer": 1,
    "numpy.fromiter": 1,
    "numpy.arange": None,
}

_BANNED_OBJECT = ("object", "object_", "O")
_BANNED_NARROW = ("float32", "float16", "half", "single")


@register_project_rule
class ColumnarDtypeContract(ProjectRule):
    rule_id = "RPRL102"
    name = "columnar-dtype-contract"
    rationale = (
        "Arrays crossing the columnstore/routing-columns/fastpath boundary "
        "must carry declared dtypes: explicit dtype at every constructor, no "
        "object or narrowed-float arrays, fully annotated signatures on "
        "cross-module entry points."
    )

    def check(self, project: "ProjectContext") -> Iterator[Finding]:
        contracts = project.contracts
        boundary = [
            module
            for name, module in sorted(project.index.modules.items())
            if contracts.is_columnar_module(name)
        ]
        for module in boundary:
            yield from self._check_constructors(project, module)
        yield from self._check_cross_module_signatures(project)

    # -- intra-module constructor discipline -------------------------------

    def _check_constructors(self, project, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                for arg in node.args[:1] + [
                    k.value for k in node.keywords if k.arg == "dtype"
                ]:
                    label = self._banned_dtype(project, module, arg)
                    if label:
                        yield self._finding(
                            module,
                            node,
                            f"astype() to {label} inside the columnar "
                            "boundary; keep arrays at their declared wide "
                            "dtypes (float64/int64/uint64)",
                        )
                continue
            canonical = project.index.resolve_expr(module.name, node.func)
            if canonical is None:
                continue
            slot = _CONSTRUCTORS.get(canonical)
            if canonical not in _CONSTRUCTORS:
                continue
            dtype_expr = self._dtype_argument(node, slot)
            if dtype_expr is None:
                yield self._finding(
                    module,
                    node,
                    f"'{canonical}()' without an explicit dtype at the "
                    "columnar boundary; a silent dtype inference here can "
                    "regress the packed tiers (declare dtype=...)",
                )
                continue
            label = self._banned_dtype(project, module, dtype_expr)
            if label:
                yield self._finding(
                    module,
                    node,
                    f"'{canonical}()' constructs a {label} array inside the "
                    "columnar boundary; object and narrowed-float dtypes "
                    "break the packed-tier contract",
                )

    def _dtype_argument(
        self, node: ast.Call, slot: int | None
    ) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                if (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    return None
                return keyword.value
        if slot is not None and len(node.args) > slot:
            return node.args[slot]
        return None

    def _banned_dtype(self, project, module, expr: ast.expr) -> str | None:
        """Label ('object dtype' / 'float32 dtype') when banned."""
        name: str | None = None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            name = expr.value
        elif isinstance(expr, ast.Name):
            name = expr.id
        else:
            canonical = project.index.resolve_expr(module.name, expr)
            if canonical and canonical.startswith("numpy."):
                name = canonical.split(".")[-1]
        if name in _BANNED_OBJECT:
            return "object-dtype"
        if name in _BANNED_NARROW:
            return f"narrowed-float ({name})"
        return None

    # -- inter-procedural annotation contract ------------------------------

    def _check_cross_module_signatures(self, project) -> Iterator[Finding]:
        contracts = project.contracts
        flagged: set[str] = set()
        for site in project.graph.sites:
            if site.external:
                continue
            callee_info = project.index.functions.get(site.callee)
            if callee_info is None or callee_info.qualname in flagged:
                continue
            caller_info = project.index.functions.get(site.caller)
            if caller_info is None:
                continue
            if not (
                contracts.is_columnar_module(callee_info.module)
                and contracts.is_columnar_module(caller_info.module)
                and callee_info.module != caller_info.module
            ):
                continue
            if callee_info.is_fully_annotated():
                continue
            flagged.add(callee_info.qualname)
            module = project.index.modules[callee_info.module]
            yield Finding(
                rule_id=self.rule_id,
                path=callee_info.path,
                line=callee_info.line,
                col=callee_info.node.col_offset,
                message=(
                    f"'{callee_info.qualname}' is called across the columnar "
                    f"boundary (from {caller_info.module} at line {site.line}) "
                    "but lacks full parameter/return annotations; the "
                    "signature is the dtype contract callers rely on"
                ),
            )

    def _finding(self, module, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )
