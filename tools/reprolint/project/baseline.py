"""Baseline files: burn down pre-existing findings incrementally.

A baseline is a JSON file recording findings that are *known and
accepted for now*.  Linting with ``--baseline FILE`` marks any finding
matching a baseline entry as ``status: "baselined"`` — still reported,
never failing the build — while every finding **not** in the file stays
``active`` and fails.  ``--write-baseline`` snapshots the current
active findings so a newly enabled rule can land gated without first
fixing the world.

Entries match on ``(rule, path, message)`` and deliberately **not** on
line numbers: unrelated edits shift lines constantly, and a baseline
that churns on every commit gets deleted, not maintained.  The path is
normalized to posix-relative form so baselines travel between checkouts
and operating systems.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path, PurePath
from typing import Iterable

from ..engine import Finding

__all__ = ["Baseline"]

BASELINE_VERSION = 1


def _normalize(path: str) -> str:
    return PurePath(path).as_posix()


@dataclass
class Baseline:
    """A set of accepted findings keyed by (rule, path, message)."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @staticmethod
    def key_for(finding: Finding) -> tuple[str, str, str]:
        return (finding.rule_id, _normalize(finding.path), finding.message)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or "entries" not in raw:
            raise ValueError(f"malformed baseline file: {path}")
        entries = {
            (entry["rule"], _normalize(entry["path"]), entry["message"])
            for entry in raw["entries"]
        }
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={cls.key_for(f) for f in findings})

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": rule, "path": file_path, "message": message}
                for rule, file_path, message in sorted(self.entries)
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        """Mark matching findings ``baselined``; order is preserved."""
        return [
            replace(f, status="baselined")
            if self.key_for(f) in self.entries
            else f
            for f in findings
        ]
