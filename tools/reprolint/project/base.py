"""Project-rule base class, registry, and the shared contract config.

A :class:`ProjectRule` sees the whole program — the symbol table and
call graph — rather than one AST, so it gets its own small registry
parallel to the per-file one in :mod:`reprolint.registry`.  Rule ids
live in the ``RPRL1xx`` block to keep the two families visually
distinct in reports and suppressions (inline ``# reprolint:
disable=RPRL101`` comments work identically).

:class:`ProjectContracts` is the declarative configuration the three
rule families share: which qualified names count as nondeterminism
sinks, which modules form the columnar boundary, which calls dispatch
pickled task payloads.  Defaults describe the ``repro`` package;
fixtures and tests construct their own.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterable, Iterator, Type

if TYPE_CHECKING:
    from ..engine import Finding
    from .analyzer import ProjectContext

__all__ = [
    "ProjectContracts",
    "ProjectRule",
    "register_project_rule",
    "all_project_rules",
    "project_rule_ids",
]


def _match_any(qualname: str, patterns: Iterable[str]) -> bool:
    return any(fnmatchcase(qualname, pattern) for pattern in patterns)


@dataclass(frozen=True)
class ProjectContracts:
    """Declarative surface definitions the project rules check against."""

    #: Functions whose *return value* is a reproducibility surface:
    #: experiment results, anything compared across serial/pooled runs.
    result_sinks: tuple[str, ...] = (
        "repro.experiments.*",
        "repro.serving.*",
        "repro.topology.*",
    )
    #: Callables whose *arguments* become fingerprints or wire bytes; a
    #: tainted argument here corrupts a content-addressed cache key or a
    #: cross-peer encoding.
    ingest_sinks: tuple[str, ...] = (
        "repro.parallel.cache.fingerprint_parts",
        "repro.parallel.cache.SetupCache.get_or_build",
        "repro.parallel.cache.SetupCache.spill",
        "repro.parallel.runner.ExperimentRunner.setup",
        "repro.synopses.wire.dumps",
    )
    #: Modules forming the packed-array boundary; arrays crossing
    #: between any two of them must carry declared dtypes.
    columnar_modules: tuple[str, ...] = (
        "repro.synopses.columnstore",
        "repro.routing.columns",
        "repro.core.fastpath",
    )
    #: Methods that pickle their payload into worker processes.
    dispatch_methods: tuple[str, ...] = (
        "*.TaskPool.map",
        "*.ExperimentRunner.map",
    )
    #: Classes that must never ride inside a task payload (unpicklable
    #: or meaningless across a process boundary).
    unpicklable_classes: tuple[str, ...] = (
        "*.simnet.clock.SimClock",
        "*.simnet.transport.Transport",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    )

    def is_result_sink(self, qualname: str) -> bool:
        return _match_any(qualname, self.result_sinks)

    def is_ingest_sink(self, qualname: str) -> bool:
        return _match_any(qualname, self.ingest_sinks)

    def is_columnar_module(self, module: str) -> bool:
        return _match_any(module, self.columnar_modules)

    def is_dispatch(self, qualname: str) -> bool:
        return _match_any(qualname, self.dispatch_methods)

    def is_unpicklable_class(self, qualname: str) -> bool:
        return _match_any(qualname, self.unpicklable_classes)


class ProjectRule(abc.ABC):
    """One whole-program invariant over an analyzed project."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    @abc.abstractmethod
    def check(self, project: "ProjectContext") -> Iterator["Finding"]:
        """Yield findings over the resolved project."""


_PROJECT_REGISTRY: dict[str, Type[ProjectRule]] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    if not cls.rule_id:
        raise ValueError(f"project rule {cls.__name__} has no rule_id")
    existing = _PROJECT_REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate project rule id {cls.rule_id}: "
            f"{existing.__name__} vs {cls.__name__}"
        )
    _PROJECT_REGISTRY[cls.rule_id] = cls
    return cls


def all_project_rules(select: Iterable[str] | None = None) -> list[ProjectRule]:
    if select is None:
        ids = sorted(_PROJECT_REGISTRY)
    else:
        ids = sorted(set(select))
        unknown = [i for i in ids if i not in _PROJECT_REGISTRY]
        if unknown:
            raise KeyError(f"unknown project rule id(s): {', '.join(unknown)}")
    return [_PROJECT_REGISTRY[i]() for i in ids]


def project_rule_ids() -> list[str]:
    return sorted(_PROJECT_REGISTRY)
