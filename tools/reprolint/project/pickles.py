"""RPRL103 — task payloads dispatched to worker pools must pickle.

``TaskPool.map`` / ``ExperimentRunner.map`` pickle three things into
worker processes: the entrypoint (by reference), every task, and the
shared setup artifact.  A lambda, a nested function, an open file
handle, a ``threading.Lock``, or a simnet clock in any of them either
raises ``PicklingError`` at dispatch time or — worse — pickles
*by value* into a worker-local copy whose mutations silently diverge
from the parent.  The per-file rules cannot see this: the lambda is
defined in one module, the dispatch happens in another.

Checks, at every resolved dispatch call site:

- the entrypoint argument must be a module-level function — not a
  lambda, not a nested def, not a bound method (the pool pickles
  entrypoints by reference; this is the documented ``TaskPool``
  contract).  ``functools.partial`` is unwrapped and its target held to
  the same bar.
- the task-list expression (followed one assignment back when it is a
  local name) must not contain lambdas, ``open()`` calls, constructors
  of known-unpicklable classes, or names whose inferred type is one
  (``SimClock``, transports, locks).
- the same payload scan applies to the ``setup=`` argument and to
  values handed to ``ExperimentRunner.attach`` / ``SetupCache.spill``,
  which pickle their payload verbatim.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..engine import Finding
from .base import ProjectRule, register_project_rule
from .callgraph import walk_pruned
from .resolver import FunctionInfo

if TYPE_CHECKING:
    from .analyzer import ProjectContext

__all__ = ["PickleSafeTaskPayloads"]

#: Calls that pickle their (first) payload argument verbatim.
_SPILL_METHODS = ("*.ExperimentRunner.attach", "*.SetupCache.spill")


@register_project_rule
class PickleSafeTaskPayloads(ProjectRule):
    rule_id = "RPRL103"
    name = "pickle-safe-task-payloads"
    rationale = (
        "Everything handed to TaskPool.map / ExperimentRunner.map crosses a "
        "process boundary: entrypoints must be module-level functions and "
        "payloads must be transitively picklable (no lambdas, locks, open "
        "handles, or simnet clock references)."
    )

    def check(self, project: "ProjectContext") -> Iterator[Finding]:
        from fnmatch import fnmatchcase

        for info in sorted(
            project.index.functions.values(), key=lambda f: (f.path, f.line)
        ):
            for stmt in info.node.body:
                for node in walk_pruned(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = project.graph.resolve_callee(info, node)
                    if callee is None:
                        continue
                    if project.contracts.is_dispatch(callee):
                        yield from self._check_dispatch(project, info, node)
                    elif any(
                        fnmatchcase(callee, pattern)
                        for pattern in _SPILL_METHODS
                    ):
                        payload = self._argument(node, 1, "value")
                        if payload is not None:
                            yield from self._check_payload(
                                project, info, node, payload, "spilled setup"
                            )

    @staticmethod
    def _argument(
        call: ast.Call, index: int, keyword_name: str
    ) -> ast.expr | None:
        if len(call.args) > index:
            return call.args[index]
        for keyword in call.keywords:
            if keyword.arg == keyword_name:
                return keyword.value
        return None

    # -- dispatch sites ----------------------------------------------------

    def _check_dispatch(
        self, project, info: FunctionInfo, call: ast.Call
    ) -> Iterator[Finding]:
        entrypoint = self._argument(call, 0, "fn")
        if entrypoint is not None:
            yield from self._check_entrypoint(project, info, call, entrypoint)
        tasks = self._argument(call, 1, "tasks")
        if tasks is not None:
            yield from self._check_payload(
                project, info, call, tasks, "task payload"
            )
        for keyword in call.keywords:
            if keyword.arg == "setup":
                yield from self._check_payload(
                    project, info, call, keyword.value, "setup payload"
                )

    def _check_entrypoint(
        self, project, info: FunctionInfo, call: ast.Call, expr: ast.expr
    ) -> Iterator[Finding]:
        expr = self._unwrap_partial(project, info, expr)
        if isinstance(expr, ast.Lambda):
            yield self._finding(
                info,
                expr,
                "worker entrypoint is a lambda; pools pickle entrypoints by "
                "reference, so it must be a module-level function",
            )
            return
        resolved = project.index.resolve_expr(info.module, expr)
        target = (
            project.index.functions.get(resolved) if resolved else None
        )
        if target is not None and target.is_nested:
            yield self._finding(
                info,
                expr,
                f"worker entrypoint '{target.qualname}' is a nested "
                "function and cannot be pickled by reference; hoist it to "
                "module level",
            )
            return
        if target is None and isinstance(expr, ast.Attribute):
            receiver = project.graph.infer_type(info, expr.value)
            if receiver is not None:
                method = project.index.method_on(receiver, expr.attr)
                if method is not None:
                    yield self._finding(
                        info,
                        expr,
                        f"worker entrypoint '{method.qualname}' is a bound "
                        "method; dispatch pickles the whole instance per "
                        "task — pass a module-level function instead",
                    )

    def _unwrap_partial(
        self, project, info: FunctionInfo, expr: ast.expr
    ) -> ast.expr:
        if isinstance(expr, ast.Call):
            canonical = project.index.resolve_expr(info.module, expr.func)
            if canonical == "functools.partial" and expr.args:
                return self._unwrap_partial(project, info, expr.args[0])
        return expr

    # -- payload scan ------------------------------------------------------

    def _check_payload(
        self,
        project,
        info: FunctionInfo,
        call: ast.Call,
        expr: ast.expr,
        label: str,
    ) -> Iterator[Finding]:
        expr = self._follow_local(info, expr)
        for node in walk_pruned(expr):
            if isinstance(node, ast.Lambda):
                yield self._finding(
                    info,
                    node,
                    f"{label} contains a lambda; lambdas cannot cross the "
                    "process boundary",
                )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                ):
                    yield self._finding(
                        info,
                        node,
                        f"{label} contains an open() file handle; handles "
                        "cannot be pickled into workers",
                    )
                    continue
                canonical = project.index.resolve_expr(
                    info.module, node.func
                )
                if canonical and project.contracts.is_unpicklable_class(
                    canonical
                ):
                    yield self._finding(
                        info,
                        node,
                        f"{label} constructs '{canonical}', which cannot "
                        "cross the process boundary",
                    )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                typed = project.graph.infer_type(info, node)
                if typed and project.contracts.is_unpicklable_class(typed):
                    yield self._finding(
                        info,
                        node,
                        f"{label} references a '{typed}' instance; simnet "
                        "clocks, transports, and locks must stay in the "
                        "parent process",
                    )

    def _follow_local(self, info: FunctionInfo, expr: ast.expr) -> ast.expr:
        """Follow ``tasks = [...]`` one assignment back for a bare name."""
        if not isinstance(expr, ast.Name):
            return expr
        latest: ast.expr | None = None
        for stmt in info.node.body:
            for node in walk_pruned(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id == expr.id
                        ):
                            latest = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id == expr.id
                    ):
                        latest = node.value
        return latest if latest is not None else expr

    def _finding(
        self, info: FunctionInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=info.path,
            line=getattr(node, "lineno", info.line),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
