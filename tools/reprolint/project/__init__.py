"""Whole-program ("project mode") analysis for reprolint.

The per-file rules in :mod:`reprolint.rules` check invariants a single
AST can witness.  This package adds the layer those rules cannot see: a
project-wide symbol table and call graph over ``src/repro`` (module
resolution, import following, method binding), with inter-procedural
rule families on top:

==========  ====================================  =========================
id          name                                  guards
==========  ====================================  =========================
RPRL101     determinism-taint                     nondeterminism sources
                                                  (unseeded RNG, salted
                                                  ``hash()``, wall clock,
                                                  set iteration, directory
                                                  listings) must not flow
                                                  through returns and call
                                                  edges into experiment
                                                  results, cache
                                                  fingerprints, or wire
                                                  encodings
RPRL102     columnar-dtype-contract               arrays crossing the
                                                  columnstore / routing
                                                  columns / fastpath
                                                  boundary carry explicit
                                                  dtypes; no object or
                                                  narrowed-float arrays
RPRL103     pickle-safe-task-payloads             everything handed to
                                                  ``TaskPool.map`` /
                                                  ``ExperimentRunner.map``
                                                  is transitively
                                                  picklable (no lambdas,
                                                  nested defs, locks, open
                                                  handles, simnet clocks)
==========  ====================================  =========================

Entry point: :func:`reprolint.project.analyzer.check_project`.
"""

from __future__ import annotations

from .analyzer import ProjectReport, check_project
from .baseline import Baseline
from .callgraph import CallGraph
from .resolver import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "Baseline",
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectReport",
    "check_project",
]
