"""Project-mode orchestration: index, call graph, rules, report.

:func:`check_project` is the programmatic entry point behind
``reprolint --project``: build the :class:`ProjectIndex` over the given
package directories, derive the :class:`CallGraph`, run every
registered project rule against the resulting :class:`ProjectContext`,
honor inline suppressions, and return a :class:`ProjectReport` whose
JSON form extends the per-file report schema with resolver statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..engine import Finding, LintReport
from .base import ProjectContracts, all_project_rules
from .callgraph import CallGraph
from .resolver import ProjectIndex

# Importing the rule modules registers them.
from . import taint as _taint  # noqa: F401
from . import dtypes as _dtypes  # noqa: F401
from . import pickles as _pickles  # noqa: F401

__all__ = ["ProjectContext", "ProjectReport", "check_project"]


@dataclass
class ProjectContext:
    """Everything a project rule may consult."""

    index: ProjectIndex
    graph: CallGraph
    contracts: ProjectContracts


@dataclass
class ProjectReport(LintReport):
    """A lint report plus whole-program resolution statistics."""

    modules: int = 0
    functions: int = 0
    call_edges: int = 0
    resolved_edges: int = 0

    def as_dict(self) -> dict[str, object]:
        payload = super().as_dict()
        payload["project"] = {
            "modules": self.modules,
            "functions": self.functions,
            "call_edges": self.call_edges,
            "resolved_edges": self.resolved_edges,
        }
        return payload


def check_project(
    package_dirs: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    contracts: ProjectContracts | None = None,
) -> ProjectReport:
    """Analyze package directories with every registered project rule.

    ``select``/``ignore`` filter by rule id (ignore wins).  Inline
    ``# reprolint: disable=...`` comments suppress project findings the
    same way they suppress per-file ones.
    """
    index = ProjectIndex.build(package_dirs)
    graph = CallGraph.build(index)
    context = ProjectContext(
        index=index,
        graph=graph,
        contracts=contracts if contracts is not None else ProjectContracts(),
    )
    ignored = {i.upper() for i in ignore} if ignore else set()
    rules = [
        rule
        for rule in all_project_rules(select)
        if rule.rule_id not in ignored
    ]
    suppressions_by_path = {
        module.path: module.suppressions for module in index.modules.values()
    }
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(context):
            suppressions = suppressions_by_path.get(finding.path)
            if suppressions is not None and suppressions.is_suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    internal_edges = sum(1 for site in graph.sites if not site.external)
    return ProjectReport(
        findings=findings,
        files_checked=len(index.modules),
        modules=len(index.modules),
        functions=len(index.functions),
        call_edges=len(graph.sites),
        resolved_edges=internal_edges,
    )
