"""RPRL101 — whole-program determinism taint.

Every guarantee the reproduction makes (bit-identical plans across the
columnar/fastpath/naive tiers, serial-vs-pooled equality, seed-stable
churn traces) assumes no nondeterminism reaches a result, fingerprint,
or wire surface.  The per-file rules catch a ``time.time()`` *in situ*;
this rule follows the value across module boundaries.

**Sources** (detected per function, import-alias aware):

- wall clock: ``time.time/.time_ns/.monotonic/.perf_counter``,
  ``datetime.datetime.now/utcnow``, ``datetime.date.today``
- process entropy: global-RNG calls (``random.random``,
  ``numpy.random.rand``), unseeded seedable constructors
  (``random.Random()``, ``numpy.random.default_rng()``),
  ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``
- salted hashing: builtin ``hash()`` applied to str/bytes (per-process
  ``PYTHONHASHSEED`` salt)
- unordered iteration: consuming the iteration order of a ``set`` /
  ``frozenset`` value, or an unsorted ``os.listdir`` / ``glob.glob`` /
  ``Path.iterdir/rglob`` listing

**Propagation**: a tainted expression taints the names it is assigned
to; a function whose ``return``/``yield`` carries taint becomes a
*tainted producer*, and calls to it are tainted at every call site —
iterated to a fixed point over the call graph.  ``sorted(...)`` is the
sanitizer for ordering taint (and, deliberately coarsely, for the
rest: a sorted value has a deterministic order even if its elements
were hash-salted — elements themselves remain the caller's problem).

**Findings**:

- a *result sink* (``repro.experiments.*``) whose return value is
  tainted, anchored at the tainted return;
- an *ingest sink* (``fingerprint_parts``, ``SetupCache.get_or_build``,
  ``wire.dumps``) receiving a tainted argument, anchored at the call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..engine import Finding
from ..rules.randomness import _SEEDABLE, _is_seeded_call
from .base import ProjectRule, register_project_rule
from .callgraph import walk_pruned
from .resolver import FunctionInfo

if TYPE_CHECKING:
    from .analyzer import ProjectContext

__all__ = ["DeterminismTaint", "TaintWitness"]

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getpid",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
    }
)

_FS_LISTING = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})

#: Receiver-attribute heuristics for pathlib listings (``p.iterdir()``).
_FS_LISTING_ATTRS = frozenset({"iterdir", "rglob"})

#: Calls whose result is deterministic regardless of argument taint.
_SANITIZERS = frozenset({"sorted", "len", "bool", "isinstance"})


@dataclass(frozen=True)
class TaintWitness:
    """Where taint entered, and the call chain it travelled."""

    reason: str
    path: str
    line: int
    col: int
    via: tuple[str, ...] = ()

    def describe(self) -> str:
        origin = f"{self.reason} at {self.path}:{self.line}"
        if self.via:
            return f"{origin} (via {' -> '.join(self.via)})"
        return origin


@dataclass
class _LocalResult:
    returns_witness: TaintWitness | None = None
    returns_line: int | None = None
    sink_calls: list[tuple[ast.Call, str, TaintWitness]] = field(
        default_factory=list
    )


class _FunctionAnalysis:
    """One pass of intra-procedural taint over a function body."""

    def __init__(
        self,
        rule: "DeterminismTaint",
        project: "ProjectContext",
        info: FunctionInfo,
        producers: dict[str, TaintWitness],
    ) -> None:
        self.rule = rule
        self.project = project
        self.info = info
        self.producers = producers
        self.tainted: dict[str, TaintWitness] = {}
        self.unordered: set[str] = set()
        self.result = _LocalResult()
        self._str_params = _str_typed_params(info)

    def run(self) -> _LocalResult:
        self._visit_body(self.info.node.body)
        self._check_sink_calls()
        return self.result

    # -- statement walk ----------------------------------------------------

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            witness = self._expr_taint(stmt.value)
            if witness is not None and isinstance(stmt.target, ast.Name):
                self.tainted[stmt.target.id] = witness
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            witness = self._expr_taint(stmt.value)
            if witness is not None and self.result.returns_witness is None:
                self.result.returns_witness = witness
                self.result.returns_line = stmt.lineno
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            inner = stmt.value.value
            witness = None if inner is None else self._expr_taint(inner)
            if witness is not None and self.result.returns_witness is None:
                self.result.returns_witness = witness
                self.result.returns_line = stmt.lineno
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._handle_for(stmt)
        # Recurse into compound-statement bodies.
        for attr in ("body", "orelse", "finalbody"):
            children = getattr(stmt, attr, None)
            if isinstance(children, list) and not isinstance(
                stmt, (ast.For, ast.AsyncFor)
            ):
                self._visit_body(
                    [c for c in children if isinstance(c, ast.stmt)]
                )
        for handler in getattr(stmt, "handlers", []):
            self._visit_body(handler.body)

    def _handle_assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        witness = self._expr_taint(value)
        names = _target_names(targets)
        if witness is not None:
            for name in names:
                self.tainted[name] = witness
        if self._is_unordered(value):
            self.unordered.update(names)

    def _handle_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        iter_witness = self._expr_taint(stmt.iter)
        target_names = _target_names([stmt.target])
        if iter_witness is not None:
            for name in target_names:
                self.tainted[name] = iter_witness
        if self._is_unordered(stmt.iter):
            witness = TaintWitness(
                reason="iteration order of an unordered set",
                path=self.info.path,
                line=stmt.iter.lineno,
                col=stmt.iter.col_offset,
            )
            # The loop's visit order is nondeterministic, so anything
            # accumulated inside the body inherits ordering taint.
            for name in _names_written_in(stmt.body):
                self.tainted[name] = witness
        self._visit_body(stmt.body)
        self._visit_body(stmt.orelse)

    # -- expression taint --------------------------------------------------

    def _expr_taint(self, expr: ast.expr) -> TaintWitness | None:
        if isinstance(expr, ast.Call):
            callee_name = _plain_name(expr.func)
            if callee_name in _SANITIZERS:
                return None
            source = self._source_witness(expr)
            if source is not None:
                return source
            resolved = self.project.index.resolve_expr(
                self.info.module, expr.func
            ) or self.project.graph.resolve_callee(self.info, expr)
            if resolved is not None and resolved in self.producers:
                inner = self.producers[resolved]
                return TaintWitness(
                    reason=inner.reason,
                    path=inner.path,
                    line=inner.line,
                    col=inner.col,
                    via=(resolved,) + inner.via,
                )
            if callee_name in ("list", "tuple", "iter") and expr.args:
                if self._is_unordered(expr.args[0]):
                    return TaintWitness(
                        reason="iteration order of an unordered set",
                        path=self.info.path,
                        line=expr.lineno,
                        col=expr.col_offset,
                    )
        if isinstance(expr, ast.Name):
            return self.tainted.get(expr.id)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
            for generator in expr.generators:
                if self._is_unordered(generator.iter) and not isinstance(
                    expr, (ast.SetComp,)
                ):
                    return TaintWitness(
                        reason="iteration order of an unordered set",
                        path=self.info.path,
                        line=generator.iter.lineno,
                        col=generator.iter.col_offset,
                    )
                witness = self._expr_taint(generator.iter)
                if witness is not None:
                    return witness
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.keyword)):
                inner = (
                    child.value if isinstance(child, ast.keyword) else child
                )
                witness = self._expr_taint(inner)
                if witness is not None:
                    return witness
        return None

    def _source_witness(self, call: ast.Call) -> TaintWitness | None:
        reason = self._source_reason(call)
        if reason is None:
            return None
        return TaintWitness(
            reason=reason,
            path=self.info.path,
            line=call.lineno,
            col=call.col_offset,
        )

    def _source_reason(self, call: ast.Call) -> str | None:
        canonical = self.project.index.resolve_expr(
            self.info.module, call.func
        )
        if canonical is not None:
            if canonical in _WALL_CLOCK:
                return f"wall-clock '{canonical}()'"
            if canonical in _ENTROPY:
                return f"process entropy '{canonical}()'"
            if canonical in _FS_LISTING:
                return f"unsorted filesystem listing '{canonical}()'"
            if canonical in _SEEDABLE:
                if not _is_seeded_call(call):
                    return f"unseeded '{canonical}()'"
                return None
            if canonical.startswith("random.") or canonical.startswith(
                "numpy.random."
            ):
                return f"global-RNG call '{canonical}()'"
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "hash"
            and call.args
            and self._is_str_like(call.args[0])
        ):
            return "salted builtin 'hash()' of str/bytes"
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _FS_LISTING_ATTRS
        ):
            return f"unsorted filesystem listing '.{call.func.attr}()'"
        return None

    def _is_str_like(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (str, bytes))
        if isinstance(expr, ast.JoinedStr):
            return True
        if isinstance(expr, ast.Call):
            name = _plain_name(expr.func)
            return name in ("str", "repr", "format")
        if isinstance(expr, ast.Name):
            return self._str_params.get(expr.id, False)
        return False

    def _is_unordered(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.unordered
        if isinstance(expr, ast.Call):
            name = _plain_name(expr.func)
            if name in ("set", "frozenset"):
                return True
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_unordered(expr.func.value)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            return self._is_unordered(expr.left) or self._is_unordered(expr.right)
        return False

    # -- ingest sinks ------------------------------------------------------

    def _check_sink_calls(self) -> None:
        for stmt in self.info.node.body:
            for node in walk_pruned(stmt):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.project.index.resolve_expr(
                    self.info.module, node.func
                ) or self.project.graph.resolve_callee(self.info, node)
                if resolved is None or not self.project.contracts.is_ingest_sink(
                    resolved
                ):
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    witness = self._expr_taint(arg)
                    if witness is not None:
                        self.result.sink_calls.append((node, resolved, witness))
                        break


def _plain_name(expr: ast.expr) -> str | None:
    return expr.id if isinstance(expr, ast.Name) else None


def _target_names(targets: list[ast.expr]) -> list[str]:
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(_target_names(list(target.elts)))
        elif isinstance(target, ast.Starred):
            names.extend(_target_names([target.value]))
    return names


def _names_written_in(body: list[ast.stmt]) -> set[str]:
    """Names whose value becomes *order-dependent* inside a loop body.

    Sequence-forming accumulation (``append``/``extend``/``insert``,
    ``+=``, plain reassignment) inherits the loop's visit order.
    Commutative lattice operations do not — ``|=``/``&=``/``^=`` and
    ``set.add`` produce the same value whatever the order — so a Bloom
    bit-OR fold over a set stays clean.
    """
    written: set[str] = set()
    for stmt in body:
        for node in walk_pruned(stmt):
            if isinstance(node, ast.Assign):
                written.update(_target_names(node.targets))
            elif isinstance(node, ast.AnnAssign):
                written.update(_target_names([node.target]))
            elif isinstance(node, ast.AugAssign) and not isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)
            ):
                written.update(_target_names([node.target]))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert", "update")
                and isinstance(node.func.value, ast.Name)
            ):
                written.add(node.func.value.id)
    return written


def _str_typed_params(info: FunctionInfo) -> dict[str, bool]:
    typed: dict[str, bool] = {}
    args = info.node.args
    for param in args.posonlyargs + args.args + args.kwonlyargs:
        annotation = param.annotation
        typed[param.arg] = (
            isinstance(annotation, ast.Name) and annotation.id in ("str", "bytes")
        )
    return typed


@register_project_rule
class DeterminismTaint(ProjectRule):
    rule_id = "RPRL101"
    name = "determinism-taint"
    rationale = (
        "Nondeterminism sources (wall clock, unseeded RNG, salted hash(), "
        "set iteration order) must not flow through returns and call edges "
        "into experiment results, cache fingerprints, or wire encodings."
    )

    def check(self, project: "ProjectContext") -> Iterator[Finding]:
        producers = self._fixed_point(project)
        seen: set[tuple[str, int, str]] = set()
        for info in sorted(
            project.index.functions.values(), key=lambda f: (f.path, f.line)
        ):
            analysis = _FunctionAnalysis(self, project, info, producers).run()
            if (
                project.contracts.is_result_sink(info.qualname)
                and analysis.returns_witness is not None
            ):
                witness = analysis.returns_witness
                message = (
                    f"experiment-result function '{info.qualname}' returns a "
                    f"value derived from {witness.describe()}; thread a "
                    "seeded/deterministic value instead"
                )
                key = (info.path, analysis.returns_line or info.line, message)
                if key not in seen:
                    seen.add(key)
                    yield Finding(
                        rule_id=self.rule_id,
                        path=info.path,
                        line=analysis.returns_line or info.line,
                        col=0,
                        message=message,
                    )
            for call, sink, witness in analysis.sink_calls:
                message = (
                    f"'{sink}' receives an argument derived from "
                    f"{witness.describe()}; fingerprints and wire bytes must "
                    "be deterministic"
                )
                key = (info.path, call.lineno, message)
                if key not in seen:
                    seen.add(key)
                    yield Finding(
                        rule_id=self.rule_id,
                        path=info.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=message,
                    )

    def _fixed_point(
        self, project: "ProjectContext"
    ) -> dict[str, TaintWitness]:
        producers: dict[str, TaintWitness] = {}
        changed = True
        while changed:
            changed = False
            for info in project.index.functions.values():
                if info.qualname in producers:
                    continue
                analysis = _FunctionAnalysis(
                    self, project, info, producers
                ).run()
                if analysis.returns_witness is not None:
                    producers[info.qualname] = analysis.returns_witness
                    changed = True
        return producers
