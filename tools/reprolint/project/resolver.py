"""Project-wide symbol table: modules, functions, classes, imports.

:class:`ProjectIndex` walks one or more *package directories* (a
directory containing ``__init__.py``, e.g. ``src/repro``), parses every
module, and records

- every module by dotted name (``repro.routing.columns``),
- every function and method by **qualified name**
  (``repro.parallel.pool.TaskPool.map``), including nested defs
  (``repro.x.outer.inner``, flagged ``is_nested``),
- every class with its methods, resolved base classes, and the types of
  ``self.<attr>`` instance attributes assigned in ``__init__``,
- per-module import bindings, including relative imports and the
  re-export chains package ``__init__`` files create.

:meth:`ProjectIndex.resolve` maps a dotted name *as written in a
module* to its canonical qualified name — a project symbol when the
target lives in the project, an external dotted name (``time.time``,
``numpy.asarray``) otherwise.  Resolution follows alias chains (``from
.bloom import BloomFilter`` re-exported through
``repro.synopses.__init__``) to a fixed point.

Everything here is best-effort static resolution: dynamic dispatch,
``getattr``, and monkey-patching are invisible, which is the standard
soundness trade every Python call-graph tool makes.  The rules built on
top are written so that unresolvable names simply produce no finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..engine import Suppressions

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex"]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    cls: str | None = None  # qualified class name when a method
    is_nested: bool = False  # defined inside another function

    @property
    def line(self) -> int:
        return self.node.lineno

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def is_fully_annotated(self) -> bool:
        """Return + every parameter (self/cls excepted) annotated."""
        if self.node.returns is None and self.node.name != "__init__":
            return False
        args = self.node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        for index, param in enumerate(params):
            if index == 0 and self.cls is not None and param.arg in ("self", "cls"):
                continue
            if param.annotation is None:
                return False
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                return False
        return True


@dataclass
class ClassInfo:
    """One class definition with resolved structure."""

    qualname: str
    module: str
    node: ast.ClassDef
    path: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)  # resolved or raw names
    #: ``self.<name>`` attribute types assigned in ``__init__`` (class
    #: qualnames), plus annotated class attributes.
    attr_types: dict[str, str] = field(default_factory=dict)

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed module and its name bindings."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: local name -> qualified target.  Covers both ``import x.y as z``
    #: (module binding) and ``from m import f`` (symbol binding).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level defs/classes by local name -> qualified name.
    toplevel: dict[str, str] = field(default_factory=dict)
    suppressions: Suppressions = field(default_factory=Suppressions)


def _module_name_for(package_root: Path, file_path: Path) -> str:
    relative = file_path.relative_to(package_root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProjectIndex:
    """Symbol table over one or more package directories."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, package_dirs: Iterable[str | Path]) -> "ProjectIndex":
        index = cls()
        for raw in package_dirs:
            package_root = Path(raw)
            if not (package_root / "__init__.py").exists():
                raise FileNotFoundError(
                    f"not a package directory (no __init__.py): {package_root}"
                )
            for file_path in sorted(package_root.rglob("*.py")):
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in file_path.parts
                ):
                    continue
                index._add_module(package_root, file_path)
        for module in index.modules.values():
            index._collect_definitions(module)
        index._resolve_class_structure()
        return index

    def _add_module(self, package_root: Path, file_path: Path) -> None:
        source = file_path.read_text(encoding="utf-8")
        name = _module_name_for(package_root, file_path)
        try:
            tree = ast.parse(source)
        except SyntaxError:
            # Project mode indexes what parses; the per-file engine
            # reports RPRL000 for broken files.
            return
        module = ModuleInfo(
            name=name,
            path=str(file_path),
            source=source,
            tree=tree,
            suppressions=Suppressions.from_source(source),
        )
        self._collect_imports(module)
        self.modules[name] = module

    def _collect_imports(self, module: ModuleInfo) -> None:
        package = module.name if self._is_package_name(module) else (
            module.name.rpartition(".")[0]
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        module.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(package, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    module.imports[local] = target

    def _is_package_name(self, module: ModuleInfo) -> bool:
        return module.path.endswith("__init__.py")

    @staticmethod
    def _import_base(package: str, node: ast.ImportFrom) -> str | None:
        """The absolute module a ``from X import ...`` pulls from."""
        if node.level == 0:
            return node.module
        parts = package.split(".") if package else []
        ascend = node.level - 1
        if ascend > len(parts):
            return None
        base_parts = parts[: len(parts) - ascend] if ascend else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _collect_definitions(self, module: ModuleInfo) -> None:
        def visit(
            node: ast.AST, prefix: str, cls: str | None, nested: bool
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    info = FunctionInfo(
                        qualname=qualname,
                        module=module.name,
                        node=child,
                        path=module.path,
                        cls=cls,
                        is_nested=nested,
                    )
                    self.functions[qualname] = info
                    if prefix == module.name:
                        module.toplevel[child.name] = qualname
                    if cls is not None and not nested:
                        self.classes[cls].methods[child.name] = info
                    visit(child, qualname, None, True)
                elif isinstance(child, ast.ClassDef):
                    qualname = f"{prefix}.{child.name}"
                    self.classes[qualname] = ClassInfo(
                        qualname=qualname,
                        module=module.name,
                        node=child,
                        path=module.path,
                    )
                    if prefix == module.name:
                        module.toplevel[child.name] = qualname
                    visit(child, qualname, qualname if not nested else None, nested)

        visit(module.tree, module.name, None, False)

    def _resolve_class_structure(self) -> None:
        for cls_info in self.classes.values():
            module = self.modules[cls_info.module]
            for base in cls_info.node.bases:
                resolved = self.resolve_expr(module.name, base)
                if resolved:
                    cls_info.bases.append(resolved)
            init = cls_info.methods.get("__init__")
            if init is not None:
                self._collect_attr_types(cls_info, init)
            for child in cls_info.node.body:
                if (
                    isinstance(child, ast.AnnAssign)
                    and isinstance(child.target, ast.Name)
                ):
                    typed = self.annotation_to_class(
                        module.name, child.annotation
                    )
                    if typed:
                        cls_info.attr_types[child.target.id] = typed

    def _collect_attr_types(
        self, cls_info: ClassInfo, init: FunctionInfo
    ) -> None:
        for node in ast.walk(init.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            typed: str | None = None
            if annotation is not None:
                typed = self.annotation_to_class(cls_info.module, annotation)
            if typed is None and isinstance(value, ast.Call):
                callee = self.resolve_expr(cls_info.module, value.func)
                if callee in self.classes:
                    typed = callee
            if typed:
                cls_info.attr_types[target.attr] = typed

    # -- name resolution ---------------------------------------------------

    def resolve(self, module_name: str, parts: tuple[str, ...]) -> str | None:
        """Canonical qualified name for dotted ``parts`` used in a module."""
        module = self.modules.get(module_name)
        if module is None or not parts:
            return None
        head, rest = parts[0], parts[1:]
        if head in module.imports:
            full = ".".join((module.imports[head],) + rest)
        elif head in module.toplevel:
            full = ".".join((module.toplevel[head],) + rest)
        else:
            return None
        return self.canonicalize(full)

    def resolve_expr(self, module_name: str, node: ast.expr) -> str | None:
        parts = _dotted_parts(node)
        if parts is None:
            return None
        return self.resolve(module_name, parts)

    def canonicalize(self, qualified: str) -> str:
        """Follow import/re-export chains to the defining module."""
        seen: set[str] = set()
        current = qualified
        while current not in seen:
            seen.add(current)
            if (
                current in self.functions
                or current in self.classes
                or current in self.modules
            ):
                return current
            # Split current into the longest known-module prefix plus an
            # attribute path, then chase the module's own bindings.
            prefix, attrs = self._split_on_module(current)
            if prefix is None or not attrs:
                return current
            module = self.modules[prefix]
            head, rest = attrs[0], attrs[1:]
            if head in module.toplevel:
                rewritten = ".".join((module.toplevel[head],) + rest)
            elif head in module.imports:
                rewritten = ".".join((module.imports[head],) + rest)
            else:
                return current
            current = rewritten
        return current

    def _split_on_module(
        self, qualified: str
    ) -> tuple[str | None, tuple[str, ...]]:
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, tuple(parts[cut:])
        return None, ()

    # -- type helpers ------------------------------------------------------

    def annotation_to_class(
        self, module_name: str, annotation: ast.expr
    ) -> str | None:
        """The project class an annotation names, unwrapping unions.

        Handles ``C``, ``"C"`` (forward reference), ``C | None``,
        ``Optional[C]``.  Container annotations (``list[C]``) do not
        type the annotated name itself, so they resolve to None.
        """
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return self.annotation_to_class(
                module_name, annotation.left
            ) or self.annotation_to_class(module_name, annotation.right)
        if isinstance(annotation, ast.Subscript):
            base = self.resolve_expr(module_name, annotation.value)
            if base in ("typing.Optional", "typing.Annotated"):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self.annotation_to_class(module_name, inner)
            return None
        if isinstance(annotation, ast.Constant) and annotation.value is None:
            return None
        resolved = self.resolve_expr(module_name, annotation)
        if resolved in self.classes:
            return resolved
        return None

    def method_on(self, class_qualname: str, method: str) -> FunctionInfo | None:
        """Look up a method on a class, walking project base classes."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method]
            stack.extend(cls_info.bases)
        return None

    def attr_type(self, class_qualname: str, attr: str) -> str | None:
        """Type of ``self.<attr>`` on a class, walking base classes."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if attr in cls_info.attr_types:
                return cls_info.attr_types[attr]
            stack.extend(cls_info.bases)
        return None


def _dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))
