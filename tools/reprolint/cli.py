"""Command-line interface: ``python -m reprolint [options] paths...``.

Exit codes follow the usual linter convention:

- 0 — no findings
- 1 — at least one finding
- 2 — usage error (unknown rule id, missing path, no input files)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .engine import LintReport, check_paths
from .registry import all_rules

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the IQN reproduction "
            "(cache invalidation, seeded randomness, virtual time, float "
            "equality, __all__ hygiene)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked recursively)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        scope = ", ".join(rule.scope_fragments) if rule.scope_fragments else "all files"
        print(f"{rule.rule_id}  {rule.name}  [{scope}]")
        print(f"    {rule.rationale}")


def _emit(report: LintReport, output_format: str) -> None:
    if output_format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return
    for finding in report.findings:
        print(finding.format_text())
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        print(f"reprolint: {report.files_checked} {noun} checked, no findings")
    else:
        count = len(report.findings)
        noun_f = "finding" if count == 1 else "findings"
        print(f"reprolint: {report.files_checked} {noun} checked, {count} {noun_f}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _print_rules()
        return EXIT_OK

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("reprolint: error: no input paths given", file=sys.stderr)
        return EXIT_USAGE

    rules = None
    if options.select:
        try:
            rules = all_rules(
                rule_id.strip().upper()
                for rule_id in options.select.split(",")
                if rule_id.strip()
            )
        except KeyError as exc:
            print(f"reprolint: error: {exc.args[0]}", file=sys.stderr)
            return EXIT_USAGE

    try:
        report = check_paths(options.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    _emit(report, options.format)
    return EXIT_OK if report.ok else EXIT_FINDINGS
