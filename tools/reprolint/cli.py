"""Command-line interface: ``python -m reprolint [options] paths...``.

Two modes share one report pipeline:

- **file mode** (default): run the per-file AST rules over every
  ``.py`` file reachable from ``paths``.
- **project mode** (``--project``): treat each path as a *package
  directory* (default ``src/repro``), build the whole-program symbol
  table and call graph, and run the inter-procedural rule families
  (determinism taint, columnar dtype contracts, pickle-safe task
  payloads).

Shared options: ``--select``/``--ignore`` filter rules, ``--baseline``
marks known findings as non-fatal (``--write-baseline`` snapshots the
current findings into the file), ``--output`` writes the JSON report to
a file regardless of the console ``--format``.

Exit codes follow the usual linter convention:

- 0 — no *active* findings (baselined findings do not fail)
- 1 — at least one active finding
- 2 — usage error (unknown rule id, missing path, no input files)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .engine import LintReport, check_paths
from .registry import all_rules
from .project import check_project
from .project.base import all_project_rules
from .project.baseline import Baseline

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

DEFAULT_PROJECT_PACKAGE = "src/repro"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Invariant checker for the IQN reproduction: per-file AST rules "
            "(cache invalidation, seeded randomness, virtual time, float "
            "equality, __all__ hygiene) plus whole-program project mode "
            "(determinism taint, columnar dtype contracts, pickle-safe "
            "task payloads)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (directories are walked "
            "recursively); with --project, package directories "
            f"(default: {DEFAULT_PROJECT_PACKAGE})"
        ),
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "whole-program mode: build a symbol table and call graph over "
            "the given package directories and run the inter-procedural "
            "rule families (RPRL1xx)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (independent of --format)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "JSON baseline of accepted findings; matches are reported as "
            "'baselined' and never fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot the current findings into --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules (file and project) and exit",
    )
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        scope = ", ".join(rule.scope_fragments) if rule.scope_fragments else "all files"
        print(f"{rule.rule_id}  {rule.name}  [{scope}]")
        print(f"    {rule.rationale}")
    for project_rule in all_project_rules():
        print(f"{project_rule.rule_id}  {project_rule.name}  [project mode]")
        print(f"    {project_rule.rationale}")


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    ids = [part.strip().upper() for part in raw.split(",") if part.strip()]
    return ids or None


def _emit(report: LintReport, output_format: str) -> None:
    if output_format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return
    for finding in report.findings:
        print(finding.format_text())
    noun = "file" if report.files_checked == 1 else "files"
    if not report.findings:
        print(f"reprolint: {report.files_checked} {noun} checked, no findings")
    else:
        active = report.active_count
        baselined = report.baselined_count
        parts = [f"{active} active finding{'s' if active != 1 else ''}"]
        if baselined:
            parts.append(f"{baselined} baselined")
        print(
            f"reprolint: {report.files_checked} {noun} checked, "
            + ", ".join(parts)
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        _print_rules()
        return EXIT_OK

    select = _split_ids(options.select)
    ignore = _split_ids(options.ignore)

    if options.write_baseline and not options.baseline:
        print(
            "reprolint: error: --write-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if options.project:
        paths = options.paths or [DEFAULT_PROJECT_PACKAGE]
        try:
            report: LintReport = check_project(
                paths, select=select, ignore=ignore
            )
        except FileNotFoundError as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except KeyError as exc:
            print(f"reprolint: error: {exc.args[0]}", file=sys.stderr)
            return EXIT_USAGE
    else:
        if not options.paths:
            parser.print_usage(sys.stderr)
            print("reprolint: error: no input paths given", file=sys.stderr)
            return EXIT_USAGE
        rules = None
        if select is not None or ignore is not None:
            try:
                rules = all_rules(select)
            except KeyError as exc:
                print(f"reprolint: error: {exc.args[0]}", file=sys.stderr)
                return EXIT_USAGE
            if ignore:
                rules = [r for r in rules if r.rule_id not in set(ignore)]
        try:
            report = check_paths(options.paths, rules=rules)
        except FileNotFoundError as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if options.write_baseline:
        assert options.baseline is not None
        Baseline.from_findings(report.findings).save(options.baseline)
        print(
            f"reprolint: wrote {len(report.findings)} baseline "
            f"entr{'y' if len(report.findings) == 1 else 'ies'} to "
            f"{options.baseline}"
        )
        return EXIT_OK

    if options.baseline:
        baseline_path = Path(options.baseline)
        if not baseline_path.exists():
            print(
                f"reprolint: error: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(
                f"reprolint: error: unreadable baseline {baseline_path}: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        report.findings = baseline.apply(report.findings)

    if options.output:
        Path(options.output).write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    _emit(report, options.format)
    return EXIT_OK if report.ok else EXIT_FINDINGS
