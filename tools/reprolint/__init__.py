"""reprolint — AST-based invariant checker for the IQN reproduction.

The repository's correctness rests on conventions that ordinary linters
cannot see: synopsis memo caches must be invalidated on mutation (the
fast-path/naive plan equivalence depends on it), the network simulator
must never read wall-clock time or unseeded randomness (experiment
reruns must be bit-reproducible), estimators must never compare floats
with ``==``, and every ``src/repro`` module must declare its public
surface.  reprolint machine-enforces those invariants.

Usage::

    PYTHONPATH=tools python -m reprolint src/ tests/
    PYTHONPATH=tools python -m reprolint --format json src/
    PYTHONPATH=tools python -m reprolint --list-rules

Findings can be silenced in place with an inline comment on the
offending line (``# reprolint: disable=RPRL004``) or for a whole file
(``# reprolint: disable-file=RPRL005`` anywhere in the file).
"""

from __future__ import annotations

from .engine import Finding, LintReport, check_paths, check_source
from .registry import Rule, all_rules, get_rule, register_rule

# Importing the rules package registers every built-in rule.
from . import rules as _rules  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "get_rule",
    "register_rule",
    "__version__",
]
