"""reprolint — AST-based invariant checker for the IQN reproduction.

The repository's correctness rests on conventions that ordinary linters
cannot see: synopsis memo caches must be invalidated on mutation (the
fast-path/naive plan equivalence depends on it), the network simulator
must never read wall-clock time or unseeded randomness (experiment
reruns must be bit-reproducible), estimators must never compare floats
with ``==``, and every ``src/repro`` module must declare its public
surface.  reprolint machine-enforces those invariants.

Two analysis modes share one report pipeline: the per-file AST rules
(RPRL001-008) and **project mode** (``--project``), which builds a
whole-program symbol table and call graph over ``src/repro`` and runs
the inter-procedural rule families — determinism taint (RPRL101),
columnar dtype contracts (RPRL102), pickle-safe task payloads
(RPRL103) — see :mod:`reprolint.project`.

Usage::

    PYTHONPATH=tools python -m reprolint src/ tests/
    PYTHONPATH=tools python -m reprolint --format json src/
    PYTHONPATH=tools python -m reprolint --project
    PYTHONPATH=tools python -m reprolint --project --baseline known.json
    PYTHONPATH=tools python -m reprolint --list-rules

Findings can be silenced in place with an inline comment on the
offending line (``# reprolint: disable=RPRL004``) or for a whole file
(``# reprolint: disable-file=RPRL005`` anywhere in the file).
"""

from __future__ import annotations

from .engine import Finding, LintReport, check_paths, check_source
from .registry import Rule, all_rules, get_rule, register_rule
from .project import check_project

# Importing the rules package registers every built-in rule.
from . import rules as _rules  # noqa: F401

__version__ = "1.1.0"

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "check_paths",
    "check_project",
    "check_source",
    "get_rule",
    "register_rule",
    "__version__",
]
