"""Linting engine: parse files, run rules, honor inline suppressions.

The engine is importable independently of the CLI so tests can lint
in-memory sources (:func:`check_source`) without touching the
filesystem.  Suppressions are extracted from the token stream rather
than the AST because comments never reach the AST:

- ``# reprolint: disable=RPRL001,RPRL004`` on a line suppresses those
  rules for findings anchored to that line (``disable=all`` suppresses
  every rule).
- ``# reprolint: disable-file=RPRL005`` anywhere in a file suppresses
  the rule for the whole file.

A file that fails to parse produces a single ``RPRL000`` finding so a
syntax error cannot silently pass the lint gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from .registry import Rule

__all__ = [
    "PARSE_ERROR_ID",
    "REPORT_SCHEMA_VERSION",
    "Finding",
    "LintReport",
    "Suppressions",
    "check_paths",
    "check_source",
    "iter_python_files",
]

PARSE_ERROR_ID = "RPRL000"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``status`` is ``"active"`` for a finding that should fail the build
    and ``"baselined"`` for one matched by a ``--baseline`` file (still
    reported for visibility, never fatal).
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    status: str = "active"

    @property
    def is_active(self) -> bool:
        return self.status == "active"

    def format_text(self) -> str:
        suffix = "" if self.is_active else f"  [{self.status}]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}{suffix}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "status": self.status,
        }


#: JSON report schema version.  v2 added ``schema_version``, the
#: ``summary`` block, and per-finding ``status``; downstream tooling
#: (CI artifact consumers) pins this in ``tests/reprolint/test_cli.py``.
REPORT_SCHEMA_VERSION = 2


@dataclass
class LintReport:
    """Aggregate result of linting a set of files."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no *active* finding remains (baselined ones pass)."""
        return not any(f.is_active for f in self.findings)

    @property
    def active_count(self) -> int:
        return sum(1 for f in self.findings if f.is_active)

    @property
    def baselined_count(self) -> int:
        return sum(1 for f in self.findings if not f.is_active)

    def as_dict(self) -> dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "summary": {
                "active": self.active_count,
                "baselined": self.baselined_count,
            },
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass
class Suppressions:
    """Inline-comment suppression state for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    ALL = "all"

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        supp = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if match is None:
                    continue
                ids = {
                    part.strip().upper() if part.strip().lower() != cls.ALL else cls.ALL
                    for part in match.group("ids").split(",")
                    if part.strip()
                }
                if match.group("kind") == "disable-file":
                    supp.whole_file |= ids
                else:
                    supp.by_line.setdefault(token.start[0], set()).update(ids)
        except tokenize.TokenError:
            # Unterminated strings etc. — the parser will report them.
            pass
        return supp

    def is_suppressed(self, finding: Finding) -> bool:
        if self.ALL in self.whole_file or finding.rule_id in self.whole_file:
            return True
        line_ids = self.by_line.get(finding.line)
        if line_ids is None:
            return False
        return self.ALL in line_ids or finding.rule_id in line_ids


def check_source(
    source: str,
    path: str,
    rules: Iterable["Rule"] | None = None,
) -> list[Finding]:
    """Lint a source string as though it lived at ``path``.

    Returns findings sorted by location; suppressed findings are
    dropped.  A syntax error yields a single :data:`PARSE_ERROR_ID`
    finding (never suppressible — a broken file must not pass).
    """
    from .registry import all_rules

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_ID,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]

    suppressions = Suppressions.from_source(source)
    active = [r for r in (all_rules() if rules is None else rules) if r.applies_to(path)]
    findings: list[Finding] = []
    for rule in active:
        for finding in rule.check(tree, path):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint.

    Directories are walked recursively; ``__pycache__`` and hidden
    directories are skipped.  A missing path raises ``FileNotFoundError``
    (the CLI maps it to a usage error).
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def check_paths(
    paths: Iterable[str | Path],
    rules: Iterable["Rule"] | None = None,
) -> LintReport:
    """Lint every python file reachable from ``paths``."""
    rule_list = None if rules is None else list(rules)
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.files_checked += 1
        report.findings.extend(
            check_source(source, str(file_path), rules=rule_list)
        )
    return report
