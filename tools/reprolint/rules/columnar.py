"""RPRL008 — columnar hot paths stay packed and vectorized.

The column store (:mod:`repro.synopses.columnstore`) and the routing
kernels that attach to it (:mod:`repro.core.fastpath`) exist to remove
per-peer Python work from the query hot path.  Two regressions quietly
destroy that guarantee while keeping every test green:

- **object-dtype arrays** — ``np.empty(n, dtype=object)`` stores boxed
  Python objects behind a numpy facade; every access re-enters the
  interpreter and the "packed" matrix is packed in name only;
- **per-element loops over peer axes** — a ``for`` loop iterating a
  packed column attribute (``self._rows``, ``self._cards``, ...)
  reintroduces an O(peers) interpreter loop exactly where the columnar
  design promises array ops.

Loops over per-peer *objects* at ingest time (packing) are fine — the
whole point is to pay that cost once — so the rule bans only iteration
over the packed column attributes themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule

__all__ = ["ColumnarStaysPacked"]

#: Attribute names holding packed per-peer arrays; iterating one of
#: these element-by-element is an O(peers) interpreter loop on the hot
#: path.
_COLUMN_ATTRS = frozenset(
    {
        "_rows",
        "_matrix",
        "_merged",
        "_bits",
        "_cards",
        "_matches",
        "_first_zero",
        "_rho_sums",
        "_zero_counts",
        "_register_sums",
        "_peer_ids",
        "_cdf",
        "_max_score",
        "_avg_score",
        "_term_space",
        "_has_synopsis",
    }
)


def _is_object_dtype(value: ast.expr) -> bool:
    """``dtype=object`` / ``dtype=np.object_`` / ``dtype="object"``."""
    if isinstance(value, ast.Name) and value.id == "object":
        return True
    if isinstance(value, ast.Attribute) and value.attr in ("object_", "object"):
        return True
    if isinstance(value, ast.Constant) and value.value in ("object", "O"):
        return True
    return False


def _column_attr_in(node: ast.expr) -> str | None:
    """The first packed-column attribute referenced inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in _COLUMN_ATTRS:
            return child.attr
    return None


@register_rule
class ColumnarStaysPacked(Rule):
    rule_id = "RPRL008"
    name = "columnar-stays-packed"
    rationale = (
        "column-store matrices must hold unboxed numeric dtypes and be "
        "consumed by array ops; dtype=object arrays and per-element Python "
        "loops over peer axes silently reintroduce the O(peers) interpreter "
        "cost the columnar design removes."
    )
    scope_fragments = ("repro/synopses/columnstore", "repro/core/fastpath")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "dtype" and _is_object_dtype(
                        keyword.value
                    ):
                        yield self._finding(
                            keyword.value,
                            path,
                            "dtype=object array in columnar code; packed "
                            "columns must use unboxed numeric dtypes",
                        )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                attr = _column_attr_in(node.iter)
                if attr is not None:
                    yield self._finding(
                        node,
                        path,
                        f"for loop iterates packed column '{attr}' "
                        "element-by-element; peer-axis work must be a "
                        "vectorized array op",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    attr = _column_attr_in(generator.iter)
                    if attr is not None:
                        yield self._finding(
                            node,
                            path,
                            f"comprehension iterates packed column '{attr}' "
                            "element-by-element; peer-axis work must be a "
                            "vectorized array op",
                        )

    def _finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
