"""RPRL007 — churn code lives on the virtual clock and explicit seeds.

``repro.churn`` turns the directory into a live service: membership
events and maintenance timers (reposts, TTL sweeps, stabilization) all
fire on the simnet ``SimClock``.  Two invariants keep those simulations
reproducible:

- **no wall clock** — a churn/maintenance module that reads ``time.*``
  (or blocks on ``time.sleep``) smuggles host-machine state into the
  event order, exactly the failure mode RPRL003 guards against inside
  ``repro/simnet``; the same ban applies here, where the timers are
  *scheduled*;
- **seeded event streams** — any public callable that generates a
  membership event stream (``generate*``, ``*_events``, ``*_schedule``)
  must take an explicit ``seed`` parameter, so the trace is a pure
  function of its inputs and bit-identical at any worker count.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule
from ._imports import ImportMap
from .wallclock import _DATETIME_FUNCTIONS, _TIME_FUNCTIONS

__all__ = ["ChurnOnVirtualClock"]

#: Name shapes of public callables that produce membership event streams.
_EVENT_STREAM_SUFFIXES = ("_events", "_schedule")
_EVENT_STREAM_PREFIXES = ("generate",)


def _is_event_stream_name(name: str) -> bool:
    if name.startswith("_"):
        return False
    return name.startswith(_EVENT_STREAM_PREFIXES) or name.endswith(
        _EVENT_STREAM_SUFFIXES
    )


def _has_seed_parameter(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return any(arg.arg == "seed" for arg in named)


@register_rule
class ChurnOnVirtualClock(Rule):
    rule_id = "RPRL007"
    name = "churn-on-virtual-clock"
    rationale = (
        "churn/maintenance timers must be scheduled on the simnet SimClock "
        "(no wall-clock reads) and membership event streams must take an "
        "explicit seed, or churn traces stop being reproducible."
    )
    scope_fragments = ("repro/churn",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        yield from self._check_wall_clock(tree, path)
        yield from self._check_event_streams(tree, path)

    # -- wall clock (same semantics as RPRL003, scoped to repro/churn) -----

    def _check_wall_clock(
        self, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        imports = ImportMap.from_tree(tree)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and not node.level
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in _TIME_FUNCTIONS:
                        yield self._finding(
                            node,
                            path,
                            f"'from time import {alias.name}' imports a "
                            "wall-clock function; churn timers must be "
                            "scheduled on the simnet SimClock",
                        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            canonical = imports.resolve(node)
            if canonical is None:
                continue
            if canonical in _DATETIME_FUNCTIONS:
                yield self._finding(
                    node,
                    path,
                    f"'{canonical}' reads the host clock; churn timers must "
                    "be scheduled on the simnet SimClock",
                )
                continue
            parts = canonical.split(".")
            if (
                parts[0] == "time"
                and len(parts) == 2
                and parts[1] in _TIME_FUNCTIONS
            ):
                yield self._finding(
                    node,
                    path,
                    f"'{canonical}' reads (or blocks on) the host clock; "
                    "churn timers must be scheduled on the simnet SimClock",
                )

    # -- seeded event streams ----------------------------------------------

    def _check_event_streams(
        self, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_event_stream_name(node.name):
                continue
            if _has_seed_parameter(node):
                continue
            yield self._finding(
                node,
                path,
                f"event-stream callable '{node.name}' takes no explicit "
                "'seed' parameter; membership traces must be a pure "
                "function of (inputs, seed) to stay bit-identical",
            )

    def _finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
