"""RPRL003 — no wall-clock time inside ``repro/simnet``.

The simulator is discrete-event: every timestamp must flow through
``SimClock`` so that a run's event order is a pure function of its
inputs.  One ``time.time()`` (or a blocking ``time.sleep``) smuggles
host-machine state into virtual time and destroys both reproducibility
and the ability to run simulated hours in milliseconds.

The rule flags *references* (not just calls) to wall-clock functions —
passing ``time.monotonic`` as a callback is as much a violation as
calling it — and flags ``from time import time``-style imports at the
import site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule
from ._imports import ImportMap

__all__ = ["NoWallClockInSimnet"]

#: time-module members that read the host clock or block on it.
_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

#: Canonical dotted names that read the host clock via datetime.
_DATETIME_FUNCTIONS = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class NoWallClockInSimnet(Rule):
    rule_id = "RPRL003"
    name = "no-wall-clock-in-simnet"
    rationale = (
        "simnet is discrete-event: virtual time must flow through SimClock; "
        "host-clock reads make simulated runs irreproducible."
    )
    scope_fragments = ("repro/simnet",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = ImportMap.from_tree(tree)

        # Flag banned from-imports at the import statement itself:
        # ``from time import monotonic`` severs the attribute chain, so
        # the use sites below could not see it.
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and not node.level
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in _TIME_FUNCTIONS:
                        yield self._finding(
                            node,
                            path,
                            f"'from time import {alias.name}' imports a "
                            "wall-clock function; use SimClock virtual time",
                        )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            canonical = imports.resolve(node)
            if canonical is None:
                continue
            if canonical in _DATETIME_FUNCTIONS:
                yield self._finding(
                    node,
                    path,
                    f"'{canonical}' reads the host clock; simnet time must "
                    "come from SimClock",
                )
                continue
            parts = canonical.split(".")
            if parts[0] == "time" and len(parts) == 2 and parts[1] in _TIME_FUNCTIONS:
                yield self._finding(
                    node,
                    path,
                    f"'{canonical}' reads (or blocks on) the host clock; "
                    "simnet time must come from SimClock",
                )

    def _finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
