"""RPRL004 — no float-literal equality in estimator modules.

Cardinality and novelty estimates are chains of transcendental
arithmetic; whether ``estimate == 12.0`` holds can depend on libm,
compiler flags, and vectorization order.  An accidental ``==`` against
a float literal therefore makes routing decisions platform-dependent —
the exact failure mode the plan-equivalence suite exists to prevent.
Estimator code must use inequalities or ``math.isclose``.

Scope is the estimator layers (``repro/synopses``, ``repro/core``).
Exact-zero guards are still flagged: write ``<= 0.0`` (the codebase
convention) or suppress the line with an explanatory comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule

__all__ = ["NoFloatEquality"]


def _float_literal_value(node: ast.expr) -> float | None:
    """The value of a float literal (allowing a leading ``+``/``-``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _float_literal_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    return None


@register_rule
class NoFloatEquality(Rule):
    rule_id = "RPRL004"
    name = "no-float-equality"
    rationale = (
        "Float == against a literal makes estimator results depend on libm/"
        "vectorization; use inequalities or math.isclose."
    )
    scope_fragments = ("repro/synopses", "repro/core")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                literal = _float_literal_value(left)
                if literal is None:
                    literal = _float_literal_value(right)
                if literal is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"float equality '{symbol} {literal!r}' is platform-"
                        "dependent in estimator code; use an inequality or "
                        "math.isclose"
                    ),
                )
