"""RPRL005 — public-API hygiene for ``src/repro`` modules.

Every library module must declare ``__all__`` (the public-API test
suite and the generated docs both key off it) and every ``__all__``
entry must actually be defined in the module — a stale entry breaks
``from repro.x import *`` at customer sites and silently lies to the
doc generator.

Entry-existence checking is conservative: if the module uses
``import *`` or builds ``__all__`` from non-literal expressions the
check is skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule

__all__ = ["PublicApiHygiene"]


def _all_entries(node: ast.expr) -> list[str] | None:
    """String entries of an ``__all__`` value; None when non-literal."""
    if isinstance(node, (ast.List, ast.Tuple)):
        entries: list[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append(element.value)
            else:
                return None
        return entries
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _all_entries(node.left)
        right = _all_entries(node.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _collect_defined(statements: list[ast.stmt], defined: set[str]) -> bool:
    """Gather top-level bound names; True when ``import *`` is present."""
    has_star = False
    for stmt in statements:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        defined.add(name_node.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                defined.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                defined.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    has_star = True
                else:
                    defined.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            has_star |= _collect_defined(stmt.body, defined)
            has_star |= _collect_defined(stmt.orelse, defined)
        elif isinstance(stmt, ast.Try):
            has_star |= _collect_defined(stmt.body, defined)
            for handler in stmt.handlers:
                has_star |= _collect_defined(handler.body, defined)
            has_star |= _collect_defined(stmt.orelse, defined)
            has_star |= _collect_defined(stmt.finalbody, defined)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            has_star |= _collect_defined(stmt.body, defined)
    return has_star


@register_rule
class PublicApiHygiene(Rule):
    rule_id = "RPRL005"
    name = "public-api-hygiene"
    rationale = (
        "src/repro modules must declare __all__, and its entries must exist; "
        "the public-API tests and doc generator key off it."
    )
    scope_fragments = ("src/repro",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        all_node: ast.Assign | ast.AnnAssign | None = None
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
            ):
                all_node = stmt
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            ):
                all_node = stmt

        if all_node is None:
            yield Finding(
                rule_id=self.rule_id,
                path=path,
                line=1,
                col=0,
                message=(
                    "module does not declare __all__; every src/repro module "
                    "must pin its public surface"
                ),
            )
            return

        if all_node.value is None:
            return
        entries = _all_entries(all_node.value)
        if entries is None:
            return  # dynamically built — don't guess

        defined: set[str] = set()
        has_star = _collect_defined(tree.body, defined)
        if has_star:
            return
        for entry in entries:
            if entry not in defined:
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=all_node.lineno,
                    col=all_node.col_offset,
                    message=(
                        f"__all__ entry '{entry}' is not defined at module "
                        "top level"
                    ),
                )
