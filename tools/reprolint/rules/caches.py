"""RPRL001 — mutating methods must invalidate memo caches.

The synopsis classes memoize derived quantities (``_cardinality``,
``_bit_count``) in dedicated slots, populated lazily by
``estimate_cardinality`` / ``bit_count``.  The fast-path/naive plan
equivalence that PR 2 established holds only while those memos can
never go stale: any method that assigns to *other* instance state after
construction must reset every memo slot to ``None`` in the same method.

The rule triggers on any class that carries a recognized memo slot —
declared either in ``__slots__`` or by assignment in ``__init__`` — so
future synopsis families inherit the contract automatically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..engine import Finding
from ..registry import Rule, register_rule

__all__ = ["MutatingMethodMustInvalidateCache", "MEMO_SLOT_NAMES"]

#: Instance attributes treated as memo caches of derived state.
MEMO_SLOT_NAMES = frozenset({"_cardinality", "_bit_count", "_stats_memo"})

#: Methods allowed to assign state without invalidation: constructors
#: and copy/pickle plumbing that rebuilds instances from scratch.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__setstate__", "__init_subclass__"}
)


def _literal_strings(node: ast.expr) -> list[str]:
    """Best-effort extraction of string literals from a ``__slots__`` value."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[str] = []
        for element in node.elts:
            out.extend(_literal_strings(element))
        return out
    return []


def _self_name(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """Name of the instance parameter, or None for static/class methods."""
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "staticmethod",
            "classmethod",
        ):
            return None
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    return args[0].arg


def _stored_attrs(func: ast.FunctionDef | ast.AsyncFunctionDef, self_name: str) -> set[str]:
    """Instance attributes written by ``func`` (``self.x = ...`` and friends)."""
    stored: set[str] = set()
    for node in ast.walk(func):
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = (node.target,)
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            # self.attr = ... / del self.attr
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                stored.add(target.attr)
            # self.attr[i] = ... mutates the object held in the slot
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == self_name
            ):
                stored.add(target.value.attr)
    return stored


def _memo_resets(func: ast.FunctionDef | ast.AsyncFunctionDef, self_name: str) -> set[str]:
    """Memo slots explicitly reset to ``None`` inside ``func``."""
    resets: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant) and node.value.value is None):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == self_name
            ):
                resets.add(target.attr)
    return resets


def _memo_slots_of_class(cls: ast.ClassDef) -> set[str]:
    """Memo slot names the class carries (``__slots__`` or ``__init__``)."""
    memo: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    memo.update(
                        name
                        for name in _literal_strings(stmt.value)
                        if name in MEMO_SLOT_NAMES
                    )
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
                and stmt.value is not None
            ):
                memo.update(
                    name
                    for name in _literal_strings(stmt.value)
                    if name in MEMO_SLOT_NAMES
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name != "__init__":
                continue
            self_name = _self_name(stmt)
            if self_name is None:
                continue
            memo.update(_stored_attrs(stmt, self_name) & MEMO_SLOT_NAMES)
    return memo


@register_rule
class MutatingMethodMustInvalidateCache(Rule):
    rule_id = "RPRL001"
    name = "mutating-method-must-invalidate-cache"
    rationale = (
        "A method that mutates synopsis state on a memo-carrying class must "
        "reset the memo slot(s) to None, or cached cardinalities go stale and "
        "fast-path/naive plan equivalence silently breaks."
    )
    scope_fragments = ()  # the memo-slot convention is repo-wide

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
            memo_slots = _memo_slots_of_class(cls)
            if not memo_slots:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name in _CONSTRUCTION_METHODS:
                    continue
                self_name = _self_name(stmt)
                if self_name is None:
                    continue
                mutated = _stored_attrs(stmt, self_name) - memo_slots
                if not mutated:
                    continue
                missing = memo_slots - _memo_resets(stmt, self_name)
                if missing:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"method '{cls.name}.{stmt.name}' mutates state "
                            f"({', '.join(sorted(mutated))}) without resetting "
                            f"memo slot(s) {', '.join(sorted(missing))} to None"
                        ),
                    )
