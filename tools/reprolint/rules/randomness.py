"""RPRL002 — no unseeded or global randomness under ``src/repro``.

The EDBT 2006 reruns are only meaningful if every experiment is exactly
reproducible from its declared seed.  Global-RNG calls
(``random.random()``, ``np.random.rand()``) and unseeded constructions
(``random.Random()``, ``np.random.default_rng()``) make results depend
on interpreter start-up state and call ordering, so library code must
thread explicitly seeded ``random.Random`` / ``numpy`` Generator
instances instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule
from ._imports import ImportMap

__all__ = ["NoUnseededRandomness"]

#: Constructors that are fine *when given an explicit seed argument*.
_SEEDABLE = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)


def _is_seeded_call(node: ast.Call) -> bool:
    """True when the call passes at least one non-None seed argument."""
    for arg in node.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for keyword in node.keywords:
        if keyword.arg is None:  # **kwargs — assume the caller knows
            return True
        if not (isinstance(keyword.value, ast.Constant) and keyword.value.value is None):
            return True
    return False


@register_rule
class NoUnseededRandomness(Rule):
    rule_id = "RPRL002"
    name = "no-unseeded-randomness"
    rationale = (
        "Library code must draw randomness from explicitly seeded generators; "
        "global-RNG calls and unseeded constructions make experiment reruns "
        "irreproducible."
    )
    scope_fragments = ("src/repro",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = ImportMap.from_tree(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.resolve(node.func)
            if canonical is None:
                continue
            if canonical in _SEEDABLE:
                if not _is_seeded_call(node):
                    yield Finding(
                        rule_id=self.rule_id,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"'{canonical}()' without an explicit seed draws "
                            "entropy from the OS; pass a seed so reruns are "
                            "reproducible"
                        ),
                    )
            elif canonical.startswith("random.") or canonical.startswith(
                "numpy.random."
            ):
                yield Finding(
                    rule_id=self.rule_id,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"'{canonical}()' uses the process-global RNG; thread a "
                        "seeded random.Random / numpy Generator instance instead"
                    ),
                )
