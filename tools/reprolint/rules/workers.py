"""RPRL006 — worker entrypoints must accept an explicit seed.

The parallel engine's determinism contract (results bit-identical at any
worker count) holds only because every task's randomness flows through
the ``seed`` argument that :class:`repro.parallel.TaskPool` derives per
task.  An entrypoint that omits the parameter has nowhere to put that
seed and will reach for ambient state instead — worker-local RNGs,
module globals — which varies with scheduling.

By repository convention worker entrypoints are module-level functions
named ``*_task`` (see ``repro.parallel.pool``).  In any ``src/repro``
module that imports multiprocessing machinery (``multiprocessing``,
``concurrent.futures``, or ``repro.parallel``), the rule flags public
``*_task`` functions whose signature has no ``seed`` parameter.
Leading-underscore helpers are exempt — they are not dispatched by name
over the pool protocol.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding
from ..registry import Rule, register_rule

__all__ = ["WorkerEntrypointsTakeSeed"]

#: Importing any of these marks a module as pool-adjacent.
_POOL_MODULES = ("multiprocessing", "concurrent.futures", "repro.parallel")


def _imports_pool_machinery(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if any(
                    alias.name == mod or alias.name.startswith(mod + ".")
                    for mod in _POOL_MODULES
                ):
                    return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:  # relative: ``from ..parallel import TaskPool``
                module = "repro." + module if module else "repro"
            if any(
                module == mod or module.startswith(mod + ".")
                for mod in _POOL_MODULES
            ):
                return True
            if module == "repro" and any(
                alias.name == "parallel" for alias in node.names
            ):
                return True
    return False


def _has_seed_parameter(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = fn.args
    named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    return any(arg.arg == "seed" for arg in named)


@register_rule
class WorkerEntrypointsTakeSeed(Rule):
    rule_id = "RPRL006"
    name = "worker-entrypoints-take-seed"
    rationale = (
        "Pool worker entrypoints (module-level *_task functions) must accept "
        "an explicit seed parameter; randomness drawn from worker-local state "
        "varies with scheduling and breaks bit-identical reruns."
    )
    scope_fragments = ("src/repro",)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        if not _imports_pool_machinery(tree):
            return
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.endswith("_task") or node.name.startswith("_"):
                continue
            if _has_seed_parameter(node):
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"worker entrypoint '{node.name}' takes no explicit "
                    "'seed' parameter; TaskPool passes a per-task derived "
                    "seed — accept it (and 'del seed' if unused) so the "
                    "task cannot depend on worker-local state"
                ),
            )
