"""Built-in reprolint rules.

Importing this package registers every rule with the global registry:

==========  =============================================  ==========================
id          name                                           scope
==========  =============================================  ==========================
RPRL001     mutating-method-must-invalidate-cache          everywhere
RPRL002     no-unseeded-randomness                         ``src/repro``
RPRL003     no-wall-clock-in-simnet                        ``repro/simnet``
RPRL004     no-float-equality                              ``repro/synopses``, ``repro/core``
RPRL005     public-api-hygiene (``__all__``)               ``src/repro``
RPRL006     worker-entrypoints-take-seed                   ``src/repro``
RPRL007     churn-on-virtual-clock                         ``repro/churn``
RPRL008     columnar-stays-packed                          ``repro/synopses/columnstore``, ``repro/core/fastpath``
==========  =============================================  ==========================
"""

from __future__ import annotations

from .caches import MutatingMethodMustInvalidateCache
from .randomness import NoUnseededRandomness
from .wallclock import NoWallClockInSimnet
from .floats import NoFloatEquality
from .api import PublicApiHygiene
from .workers import WorkerEntrypointsTakeSeed
from .churn import ChurnOnVirtualClock
from .columnar import ColumnarStaysPacked

__all__ = [
    "MutatingMethodMustInvalidateCache",
    "NoUnseededRandomness",
    "NoWallClockInSimnet",
    "NoFloatEquality",
    "PublicApiHygiene",
    "WorkerEntrypointsTakeSeed",
    "ChurnOnVirtualClock",
    "ColumnarStaysPacked",
]
