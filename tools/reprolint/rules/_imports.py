"""Shared import-alias resolution for call-site rules.

RPRL002/RPRL003 need to know, for an expression like ``np.random.rand``
or ``dt.now``, which *module-level* object it names.  This module builds
the alias maps from the import statements of a file (wherever they
appear — function-local imports included, a deliberate over-
approximation: an alias bound anywhere in the file taints the whole
file) and resolves attribute chains back to canonical dotted names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["ImportMap", "dotted_parts"]


def dotted_parts(node: ast.expr) -> tuple[str, ...] | None:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; None for non-names."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))


@dataclass
class ImportMap:
    """Local-name → canonical dotted-name bindings from import statements."""

    # "np" -> "numpy", "nr" -> "numpy.random", "r" -> "random", ...
    modules: dict[str, str] = field(default_factory=dict)
    # "Random" -> "random.Random", "rng" -> "numpy.random.default_rng", ...
    members: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b.
                    canonical = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.modules[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports never name stdlib/numpy
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.members[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of ``node``, if it is an imported name.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``;
        returns None for names with no import binding (locals, builtins).
        """
        parts = dotted_parts(node)
        if parts is None:
            return None
        head, rest = parts[0], parts[1:]
        if head in self.modules:
            return ".".join((self.modules[head],) + rest)
        if head in self.members:
            return ".".join((self.members[head],) + rest)
        return None
