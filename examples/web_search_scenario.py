"""P2P Web search: the paper's headline scenario (Section 8, Figure 3).

Fifty peers crawl overlapping slices of the Web (sliding-window
placement).  A query initiator consults only the distributed directory,
routes with CORI vs IQN, and we measure what fraction of a centralized
engine's top-100 each approach recovers per contacted peer — plus the
wasted duplicate results that motivated the paper in the first place.

Run:  python examples/web_search_scenario.py   (~1 minute)
"""

from repro import (
    CoriSelector,
    GovCorpusConfig,
    IQNRouter,
    MinervaEngine,
    SynopsisSpec,
    build_gov_corpus,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
    sliding_window_collections,
)
from repro.ir.metrics import duplicate_fraction, micro_average


def main() -> None:
    config = GovCorpusConfig(
        num_docs=6000,
        vocabulary_size=10_000,
        num_topics=6,
        topic_assignment="blocked",
        topic_smear=1.2,
        seed=11,
    )
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 50)
    collections = corpora_from_doc_id_sets(
        corpus, sliding_window_collections(fragments, window=5, offset=1)
    )
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))
    print(f"network: {len(engine.peers)} peers, {len(corpus)} documents total")

    queries = make_workload(config, num_queries=5, pool_size=24, seed=3)
    engine.publish({term for query in queries for term in query.terms})

    max_peers = 8
    print(f"\nmicro-averaged recall vs peers queried (k=100, peer_k=30):\n")
    header = "method".ljust(12) + "".join(f"   @{j}" for j in range(max_peers + 1))
    print(header)
    for selector in (CoriSelector(), IQNRouter()):
        outcomes = [
            engine.run_query(
                query, selector, max_peers=max_peers, k=100, peer_k=30
            )
            for query in queries
        ]
        curve = [
            micro_average([o.recall_at[j] for o in outcomes])
            for j in range(max_peers + 1)
        ]
        name = "CORI" if isinstance(selector, CoriSelector) else "IQN"
        print(name.ljust(12) + "".join(f" {r:.2f}" for r in curve))
        wasted = micro_average(
            [
                duplicate_fraction(
                    [
                        {r.doc_id for r in results}
                        for results in o.per_peer_results.values()
                    ]
                )
                for o in outcomes
            ]
        )
        print(f"{'':12s} duplicate slots across queried peers: {wasted:.0%}")


if __name__ == "__main__":
    main()
