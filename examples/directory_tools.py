"""Directory-level tooling: global statistics, adaptive synopsis choice,
batched posting.

Three capabilities the routing layer builds on:

1. **Replication measurement** — the union of a PeerList's synopses
   estimates how many *distinct* documents exist network-wide for a
   term, i.e. how replicated the term's documents are.  This is the
   paper's motivating redundancy, measured from directory state alone.
2. **Adaptive synopsis-type selection** (future work #1) — pick the
   synopsis family per term from those globally consistent statistics.
3. **Batched posting** (Section 7.2) — peers bundle the Posts headed to
   the same directory node, cutting message counts without changing
   payload.

Run:  python examples/directory_tools.py
"""

from repro import (
    GovCorpusConfig,
    MinervaEngine,
    SynopsisSpec,
    build_gov_corpus,
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
)
from repro.core.adaptive import AdaptiveSpecPolicy
from repro.minerva.stats import global_term_statistics
from repro.net.cost import MessageKinds


def main() -> None:
    config = GovCorpusConfig(
        num_docs=3000,
        vocabulary_size=6000,
        num_topics=5,
        topic_assignment="blocked",
        topic_smear=1.0,
        seed=17,
    )
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 6)
    collections = corpora_from_doc_id_sets(
        corpus, combination_collections(fragments, 3)
    )
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))
    queries = make_workload(config, num_queries=4, pool_size=24, seed=2)
    terms = {t for q in queries for t in q.terms}
    engine.publish(terms)

    print("— Replication measured from the directory —")
    print(f"{'term':10s} {'peers':>5s} {'postings':>9s} {'distinct':>9s} {'replication':>12s}")
    policy = AdaptiveSpecPolicy(budget_bits=2048)
    for term in sorted(terms)[:6]:
        stats = global_term_statistics(engine.directory.peer_list(term))
        spec = policy.choose(round(stats.distinct_documents))
        print(
            f"{term:10s} {stats.collection_frequency:5d} "
            f"{stats.total_postings:9d} {stats.distinct_documents:9.0f} "
            f"{stats.replication_factor:11.1f}x   -> adaptive spec: {spec.label}"
        )
    print(
        "\n(C(6,3) placement puts each document on C(5,2)=10 of 20 peers —"
        "\n the measured replication factor should hover around 10.)"
    )

    print("\n— Batched posting (Section 7.2) —")
    peer = engine.peers["p00"]
    posts = [peer.build_post(t) for t in sorted(terms) if t in peer.index]
    engine.cost.reset()
    for post in posts:
        engine.directory.publish(post)
    individual = engine.cost.snapshot()
    engine.cost.reset()
    messages = engine.directory.publish_batch(posts)
    batched = engine.cost.snapshot()
    print(
        f"{len(posts)} posts individually: "
        f"{individual.messages(MessageKinds.POST)} messages, "
        f"{individual.bits(MessageKinds.POST)} bits"
    )
    print(
        f"{len(posts)} posts batched:      {messages} messages, "
        f"{batched.bits(MessageKinds.POST)} bits (same payload, fewer trips)"
    )


if __name__ == "__main__":
    main()
