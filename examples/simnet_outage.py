"""A query workload riding out packet loss and a mid-run peer crash.

The discrete-event network simulator (`repro.simnet`) makes the paper's
efficiency concerns tangible: queries become messages with latencies,
messages get lost, peers die mid-workload — and the engine degrades
gracefully instead of failing.  This example runs one workload twice:

- on a *clean* network (no faults): every networked query returns
  exactly the documents the in-process engine returns;
- under a fault plan with 10% message loss and one abrupt peer crash
  halfway through: retries and backoff absorb most of the loss, the
  crashed peer's stale directory Posts keep attracting forwards that
  time out, and the affected queries complete with partial results and
  a record of who never answered.

Run:  python examples/simnet_outage.py
"""

from repro import (
    ChurnEvent,
    FaultPlan,
    GovCorpusConfig,
    IQNRouter,
    MinervaEngine,
    RetryPolicy,
    SynopsisSpec,
    build_gov_corpus,
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
)
from repro.ir.metrics import result_ids
from repro.simnet import SimNetExecutor

LOSS_RATE = 0.10
MAX_PEERS = 4
K = 30


def build_engine():
    config = GovCorpusConfig(
        num_docs=1200,
        vocabulary_size=3000,
        num_topics=5,
        topic_assignment="blocked",
        topic_smear=0.9,
        seed=31,
    )
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 6)
    collections = corpora_from_doc_id_sets(
        corpus, combination_collections(fragments, 3)
    )
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))
    queries = make_workload(config, num_queries=8, pool_size=16, seed=11)
    engine.publish({t for q in queries for t in q.terms})
    return engine, queries


def describe(outcomes, engine, queries):
    clean_ids = {
        q.query_id: result_ids(
            engine.run_query(q, IQNRouter(), max_peers=MAX_PEERS, k=K).merged
        )
        for q in queries
    }
    for outcome in outcomes:
        flags = []
        if outcome.forward_retries:
            flags.append(f"{outcome.forward_retries} retries")
        if outcome.timed_out_peers:
            flags.append(f"timed out: {', '.join(outcome.timed_out_peers)}")
        if outcome.failed_terms:
            flags.append(f"{len(outcome.failed_terms)} directory lookups failed")
        missing = len(clean_ids[outcome.query.query_id] - result_ids(outcome.merged))
        if missing:
            flags.append(f"{missing} docs lost to the outage")
        print(
            f"  q{outcome.query.query_id}  start={outcome.started_ms:7.1f}ms  "
            f"latency={outcome.latency_ms:7.1f}ms  "
            f"recall={outcome.final_recall:.2f}"
            + (f"  [{'; '.join(flags)}]" if flags else "")
        )


def main() -> None:
    engine, queries = build_engine()
    policy = RetryPolicy(timeout_ms=250.0, max_attempts=3, backoff=2.0)

    print(f"network: {engine!r}")
    print("\n--- clean run (no faults) ---")
    executor = SimNetExecutor(engine, policy=policy, seed=4)
    clean = executor.run_workload(
        queries, IQNRouter(), interarrival_ms=150.0, max_peers=MAX_PEERS, k=K
    )
    describe(clean, engine, queries)
    assert not any(outcome.degraded for outcome in clean)

    # Crash a peer that the clean run actually used, halfway through.
    victim = clean[0].selected[0]
    crash_at = clean[len(clean) // 2].started_ms
    plan = FaultPlan(
        loss_rate=LOSS_RATE,
        churn=(ChurnEvent(at_ms=crash_at, peer_id=victim),),
    )
    print(
        f"\n--- outage run: {LOSS_RATE:.0%} message loss, "
        f"{victim} crashes at {crash_at:.0f}ms ---"
    )
    executor = SimNetExecutor(engine, faults=plan, policy=policy, seed=4)
    faulted = executor.run_workload(
        queries, IQNRouter(), interarrival_ms=150.0, max_peers=MAX_PEERS, k=K
    )
    describe(faulted, engine, queries)

    stats = executor.transport.stats
    print(
        f"\nwire: {stats.sent} sent, {stats.delivered} delivered, "
        f"{stats.lost} lost, {stats.dropped_crashed} at crashed peers"
    )
    mean_clean = sum(o.latency_ms for o in clean) / len(clean)
    mean_faulted = sum(o.latency_ms for o in faulted) / len(faulted)
    print(
        f"mean latency: {mean_clean:.0f}ms clean -> {mean_faulted:.0f}ms "
        f"under faults (timeouts + backoff, yet every query completed)"
    )
    assert len(faulted) == len(queries)


if __name__ == "__main__":
    main()
