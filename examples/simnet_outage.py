"""A query workload riding out packet loss, a crash, and live churn.

The discrete-event network simulator (`repro.simnet`) makes the paper's
efficiency concerns tangible: queries become messages with latencies,
messages get lost, peers die mid-workload — and the engine degrades
gracefully instead of failing.  This example runs three acts:

- a *clean* network (no faults): every networked query returns exactly
  the documents the in-process engine returns;
- a fault plan with 10% message loss and one abrupt peer crash halfway
  through: retries and backoff absorb most of the loss, the crashed
  peer's stale directory Posts keep attracting forwards that time out,
  and the affected queries complete with partial results and a record
  of who never answered;
- the directory as a *live service* (`repro.churn`): peers crash, leave,
  and recover on a seeded schedule while maintenance timers (reposts,
  TTL sweeps, ring stabilization) repair the directory, and queries run
  with the robustness path on — when a selected peer turns out to have
  died mid-query, the next-ranked spare is queried in its place.

Run:  python examples/simnet_outage.py [--quick]
"""

import argparse

from repro import (
    ChurnEvent,
    FaultPlan,
    GovCorpusConfig,
    IQNRouter,
    MinervaEngine,
    RetryPolicy,
    SynopsisSpec,
    build_gov_corpus,
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
)
from repro.churn import (
    ChurnSchedule,
    ChurnService,
    MaintenanceConfig,
    MembershipConfig,
)
from repro.ir.metrics import result_ids
from repro.simnet import SimNetExecutor

LOSS_RATE = 0.10
MAX_PEERS = 4
K = 30


def build_engine(quick: bool = False, *, replicas: int = 1):
    config = GovCorpusConfig(
        num_docs=400 if quick else 1200,
        vocabulary_size=1200 if quick else 3000,
        num_topics=5,
        topic_assignment="blocked",
        topic_smear=0.9,
        seed=31,
    )
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 6)
    collections = corpora_from_doc_id_sets(
        corpus, combination_collections(fragments, 3)
    )
    engine = MinervaEngine(
        collections, spec=SynopsisSpec.parse("mips-64"), replicas=replicas
    )
    queries = make_workload(
        config, num_queries=6 if quick else 8, pool_size=16, seed=11
    )
    engine.publish({t for q in queries for t in q.terms})
    return engine, queries


def describe(outcomes, engine, queries):
    clean_ids = {
        q.query_id: result_ids(
            engine.run_query(q, IQNRouter(), max_peers=MAX_PEERS, k=K).merged
        )
        for q in queries
    }
    for outcome in outcomes:
        flags = []
        if outcome.forward_retries:
            flags.append(f"{outcome.forward_retries} retries")
        if outcome.timed_out_peers:
            flags.append(f"timed out: {', '.join(outcome.timed_out_peers)}")
        if outcome.failed_terms:
            flags.append(f"{len(outcome.failed_terms)} directory lookups failed")
        missing = len(clean_ids[outcome.query.query_id] - result_ids(outcome.merged))
        if missing:
            flags.append(f"{missing} docs lost to the outage")
        print(
            f"  q{outcome.query.query_id}  start={outcome.started_ms:7.1f}ms  "
            f"latency={outcome.latency_ms:7.1f}ms  "
            f"recall={outcome.final_recall:.2f}"
            + (f"  [{'; '.join(flags)}]" if flags else "")
        )


def churn_service_demo(quick: bool) -> None:
    """Act three: live membership with maintenance racing the failures."""
    engine, queries = build_engine(quick, replicas=2)
    horizon_ms = 30_000.0
    schedule = ChurnSchedule.generate(
        sorted(engine.peers),
        MembershipConfig.for_rate(4.0, horizon_ms=horizon_ms),
        seed=5,
    )
    service = ChurnService(
        engine,
        schedule,
        maintenance=MaintenanceConfig.for_repost_interval(5_000.0),
        seed=5,
    )
    print(
        f"\n--- churn run: {len(schedule)} membership events over "
        f"{horizon_ms / 1000:.0f}s, repost every 5s, 2 replicas ---"
    )
    outcomes = service.run_workload(
        queries,
        IQNRouter(),
        interarrival_ms=horizon_ms / (len(queries) + 1),
        arrivals="uniform",  # spread evenly so queries race the failures
        max_peers=MAX_PEERS,
        k=K,
    )
    for outcome in outcomes:
        flags = []
        if outcome.stale_routes:
            flags.append(f"{outcome.stale_routes} routed-to peers were dead")
        if outcome.substituted_peers:
            flags.append(
                "rescued by spares: " + ", ".join(outcome.substituted_peers)
            )
        if outcome.directory_fallbacks:
            flags.append(
                f"{outcome.directory_fallbacks} directory fetches retried "
                "at the successor"
            )
        print(
            f"  q{outcome.query.query_id}  start={outcome.started_ms:7.1f}ms  "
            f"latency={outcome.latency_ms:7.1f}ms  "
            f"recall={outcome.final_recall:.2f}"
            + (f"  [{'; '.join(flags)}]" if flags else "")
        )
    stats = service.stats
    print(
        f"\nchurn: {stats.crashes} crashes, {stats.leaves} leaves, "
        f"{stats.recoveries} recoveries; maintenance evicted "
        f"{stats.nodes_evicted} dead directory nodes, re-replicated "
        f"{stats.keys_re_replicated} keys, republished {stats.reposts} "
        f"Posts ({stats.maintenance_messages} messages)"
    )
    rescued = sum(outcome.fallback_successes for outcome in outcomes)
    print(
        f"every query completed; {rescued} dead-peer forwards were "
        f"rescued by the next-ranked spare"
    )
    assert len(outcomes) == len(queries)
    assert all(outcome.final_recall >= 0.0 for outcome in outcomes)


def main(quick: bool = False) -> None:
    engine, queries = build_engine(quick)
    policy = RetryPolicy(timeout_ms=250.0, max_attempts=3, backoff=2.0)

    print(f"network: {engine!r}")
    print("\n--- clean run (no faults) ---")
    executor = SimNetExecutor(engine, policy=policy, seed=4)
    clean = executor.run_workload(
        queries, IQNRouter(), interarrival_ms=150.0, max_peers=MAX_PEERS, k=K
    )
    describe(clean, engine, queries)
    assert not any(outcome.degraded for outcome in clean)

    # Crash a peer that the clean run actually used, halfway through.
    victim = clean[0].selected[0]
    crash_at = clean[len(clean) // 2].started_ms
    plan = FaultPlan(
        loss_rate=LOSS_RATE,
        churn=(ChurnEvent(at_ms=crash_at, peer_id=victim),),
    )
    print(
        f"\n--- outage run: {LOSS_RATE:.0%} message loss, "
        f"{victim} crashes at {crash_at:.0f}ms ---"
    )
    executor = SimNetExecutor(engine, faults=plan, policy=policy, seed=4)
    faulted = executor.run_workload(
        queries, IQNRouter(), interarrival_ms=150.0, max_peers=MAX_PEERS, k=K
    )
    describe(faulted, engine, queries)

    stats = executor.transport.stats
    print(
        f"\nwire: {stats.sent} sent, {stats.delivered} delivered, "
        f"{stats.lost} lost, {stats.dropped_crashed} at crashed peers"
    )
    mean_clean = sum(o.latency_ms for o in clean) / len(clean)
    mean_faulted = sum(o.latency_ms for o in faulted) / len(faulted)
    print(
        f"mean latency: {mean_clean:.0f}ms clean -> {mean_faulted:.0f}ms "
        f"under faults (timeouts + backoff, yet every query completed)"
    )
    assert len(faulted) == len(queries)

    churn_service_demo(quick)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus and workload (seconds instead of a minute)",
    )
    main(quick=parser.parse_args().quick)
