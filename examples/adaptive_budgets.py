"""Adaptive per-term synopsis lengths under a posting budget (Section 7.2).

A peer that wants to cap the bandwidth of publishing its Posts must split
a total bit budget B across its terms.  This example shows the three
benefit heuristics the paper proposes, the resulting allocations for one
peer, and why only MIPs synopses can exploit heterogeneous lengths.

Run:  python examples/adaptive_budgets.py
"""

from repro import (
    GovCorpusConfig,
    SynopsisSpec,
    build_gov_corpus,
    corpora_from_doc_id_sets,
    fragment_corpus,
)
from repro.core.budget import (
    allocate_budget,
    benefit_list_length,
    benefit_score_mass_quantile,
    benefit_score_threshold,
    build_adaptive_posts,
)
from repro.minerva.peer import Peer
from repro.synopses.mips import BITS_PER_POSITION


def main() -> None:
    config = GovCorpusConfig(num_docs=1500, vocabulary_size=4000, seed=21)
    corpus = build_gov_corpus(config)
    collection = corpora_from_doc_id_sets(
        corpus, [set(fragment_corpus(corpus, 3)[0])]
    )[0]
    peer = Peer("peer-0", collection, spec=SynopsisSpec.parse("mips-64"))

    # Pick a handful of terms with very different list lengths.
    by_length = sorted(
        peer.index.vocabulary,
        key=lambda t: peer.index.document_frequency(t),
        reverse=True,
    )
    terms = [by_length[0], by_length[20], by_length[200], by_length[1000]]
    budget = 128 * BITS_PER_POSITION  # 128 MIPs positions in total

    heuristics = {
        "list length": benefit_list_length,
        "entries with score >= 0.5": benefit_score_threshold(0.5),
        "90% score-mass quantile": benefit_score_mass_quantile(0.9),
    }

    print(f"budget B = {budget} bits over {len(terms)} terms\n")
    header = "term (df)".ljust(24) + "".join(
        name.rjust(28) for name in heuristics
    )
    print(header)
    allocations = {
        name: allocate_budget(peer.index, terms, budget, benefit=benefit)
        for name, benefit in heuristics.items()
    }
    for term in terms:
        df = peer.index.document_frequency(term)
        row = f"{term} ({df})".ljust(24)
        for name in heuristics:
            bits = allocations[name][term]
            row += f"{bits:>5d} bits ({bits // BITS_PER_POSITION:>3d} perms)".rjust(28)
        print(row)

    # The allocated synopses remain mutually comparable (MIPs only).
    posts = build_adaptive_posts(peer, allocations["list length"])
    long_post, short_post = posts[0], posts[-1]
    r = long_post.synopsis.estimate_resemblance(short_post.synopsis)
    print(
        f"\nheterogeneous comparison: {long_post.synopsis.size_in_bits}-bit "
        f"vs {short_post.synopsis.size_in_bits}-bit synopsis -> "
        f"resemblance estimate {r:.3f} (common-prefix rule, Section 5.3)"
    )


if __name__ == "__main__":
    main()
