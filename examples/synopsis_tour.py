"""A tour of the three collection synopses (Sections 3 and 5 of the paper).

Walks through what each synopsis family can and cannot do, on small
concrete sets — including the paper's Figure 1 (min-wise permutations)
recomputed live, heterogeneous-length MIPs comparison, and the novelty
estimation that drives IQN routing.

Run:  python examples/synopsis_tour.py
"""

import random

from repro import SynopsisSpec, estimate_novelty
from repro.synopses import (
    LinearPermutation,
    MinWisePermutations,
    UnsupportedOperationError,
    novelty,
    resemblance,
)


def figure_1_walkthrough() -> None:
    """Recompute the paper's Figure 1 example with its permutations."""
    print("— Figure 1: min-wise permutations on a toy docID set —")
    doc_ids = [20, 48, 24, 36, 18, 8]
    permutations = [
        LinearPermutation(a=7, b=3, modulus=51),
        LinearPermutation(a=5, b=6, modulus=51),
        LinearPermutation(a=3, b=9, modulus=51),
    ]
    for perm in permutations:
        images = [perm(x) for x in doc_ids]
        print(
            f"  h(x) = ({perm.a}x + {perm.b}) mod {perm.modulus}: "
            f"{images}  -> min = {min(images)}"
        )
    print("  The MIPs vector stores one minimum per permutation.\n")


def resemblance_and_novelty() -> None:
    print("— Resemblance & novelty estimation at a 2048-bit budget —")
    rng = random.Random(5)
    ids = rng.sample(range(1 << 40), 15_000)
    set_a = set(ids[:10_000])
    set_b = set(ids[5_000:15_000])  # 5k shared
    print(f"  |A| = |B| = 10000, |A ∩ B| = 5000")
    print(f"  exact resemblance = {resemblance(set_a, set_b):.3f}, "
          f"exact Novelty(B|A) = {novelty(set_b, set_a)}")
    for label in ("mips-64", "hs-32", "bf-2048"):
        spec = SynopsisSpec.parse(label)
        sa, sb = spec.build(set_a), spec.build(set_b)
        est_r = sa.estimate_resemblance(sb)
        est_n = estimate_novelty(
            sb, sa, candidate_cardinality=10_000, reference_cardinality=10_000
        )
        print(
            f"  {spec.label:8s} ({spec.size_in_bits} bits): "
            f"resemblance ≈ {est_r:.3f}, novelty ≈ {est_n:7.0f}"
        )
    print("  (the 2048-bit Bloom filter is overloaded at 10k elements —")
    print("   exactly the failure mode of Figure 2.)\n")


def aggregation_matrix() -> None:
    print("— Aggregation support (Section 3.4) —")
    small = set(range(500))
    other = set(range(250, 750))
    for label in ("mips-64", "hs-32", "bf-2048"):
        spec = SynopsisSpec.parse(label)
        a, b = spec.build(small), spec.build(other)
        union_ok = "union:yes"
        try:
            a.intersect(b)
            intersect_ok = "intersect:yes"
        except UnsupportedOperationError:
            intersect_ok = "intersect:NO"
        print(f"  {spec.label:8s} {union_ok} {intersect_ok}")
    print()


def heterogeneous_mips() -> None:
    print("— MIPs with heterogeneous lengths (Section 5.3) —")
    set_a = set(range(2_000))
    set_b = set(range(1_000, 3_000))
    long = MinWisePermutations.from_ids(set_a, num_permutations=128)
    short = MinWisePermutations.from_ids(set_b, num_permutations=32)
    print(
        f"  128-permutation vs 32-permutation vector: comparison uses the "
        f"common prefix\n  estimated resemblance = "
        f"{long.estimate_resemblance(short):.3f} "
        f"(exact = {resemblance(set_a, set_b):.3f})"
    )
    merged = long.union(short)
    print(f"  union vector length = min(128, 32) = {merged.num_permutations}\n")


if __name__ == "__main__":
    figure_1_walkthrough()
    resemblance_and_novelty()
    aggregation_matrix()
    heterogeneous_mips()
