"""End-to-end on real text: from raw documents to P2P routed search.

Everything else in `examples/` uses the synthetic corpus; this one walks
the full pipeline on actual prose — a small collection of government-
flavoured snippets (the paper's GOV domain) ingested with the tokenizer,
replicated unevenly across six peers, searched with CORI and IQN.

Run:  python examples/real_text_search.py
"""

from repro import (
    CoriSelector,
    IQNRouter,
    MinervaEngine,
    Query,
    SynopsisSpec,
)
from repro.datasets.ingest import corpus_from_texts
from repro.ir.documents import Corpus

# A miniature ".gov crawl": doc id -> page text.  Topics: wildfire
# management, food safety, tax filing.
PAGES = {
    0: "National forest fire prevention guidelines for dry season camping.",
    1: "Wildfire smoke advisories and air quality monitoring for residents.",
    2: "Controlled burn schedules reduce wildfire fuel in national forests.",
    3: "Forest service firefighting crews deploy to the northern district.",
    4: "Emergency evacuation routes during a forest fire in canyon areas.",
    5: "Fire danger ratings explained: moderate, high, very high, extreme.",
    6: "Food safety inspection reports for school cafeteria kitchens.",
    7: "Safe food handling temperatures for poultry, beef, and seafood.",
    8: "Pest control and food safety in commercial grain storage.",
    9: "Restaurant food safety certification and inspection frequency.",
    10: "Recall notice: contaminated produce and food safety procedures.",
    11: "Income tax filing deadlines and electronic submission options.",
    12: "Small business tax deductions for home office expenses.",
    13: "Property tax assessment appeals and filing requirements.",
    14: "Estimated quarterly tax payments for self employed workers.",
    15: "Tax credit eligibility for energy efficient home improvements.",
}

# Which peer crawled which pages: the wildfire pages are popular
# (crawled by many peers), tax pages live on two peers only.
CRAWLS = {
    0: [0, 1, 2, 3, 6, 7],
    1: [0, 1, 2, 4, 5, 8],
    2: [0, 1, 3, 4, 9, 10],
    3: [0, 2, 3, 5, 6, 10],
    4: [11, 12, 13, 0, 1],
    5: [13, 14, 15, 2, 3],
}


def main() -> None:
    master = corpus_from_texts(PAGES)
    collections = [
        Corpus.from_documents(master.get(i) for i in pages)
        for pages in CRAWLS.values()
    ]
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))

    query = Query(0, ("forest", "fire"))
    engine.publish(set(query.terms))

    print(f"{len(engine.peers)} peers, {len(master)} pages network-wide")
    print(f"query: {query!s}\n")
    for selector in (CoriSelector(), IQNRouter()):
        outcome = engine.run_query(query, selector, max_peers=2, k=10, peer_k=3)
        name = "CORI" if isinstance(selector, CoriSelector) else "IQN"
        print(f"{name}: queried {list(outcome.selected)}")
        for result in outcome.merged[:5]:
            print(f"   [{result.score:5.2f}] {PAGES[result.doc_id]}")
        print(
            f"   recall vs centralized top-10: {outcome.final_recall:.0%}  "
            f"(local-only baseline: {outcome.recall_at[0]:.0%})\n"
        )


if __name__ == "__main__":
    main()
