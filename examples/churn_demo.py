"""Churn: peers joining and leaving a live MINERVA network.

The P2P setting's defining property (Section 1.1: "self-organizing way
with resilience to failures and churn").  This example runs a query
workload against a network while peers leave — gracefully and by crash —
and a newcomer joins, showing:

- directory keys migrating on joins/leaves (queries keep resolving);
- replica survival when a PeerList's primary owner departs;
- the stale-post failure mode: a crashed peer's Posts keep attracting
  forwards that return nothing, until they are purged.

Run:  python examples/churn_demo.py
"""

from repro import (
    CoriSelector,
    GovCorpusConfig,
    IQNRouter,
    MinervaEngine,
    SynopsisSpec,
    build_gov_corpus,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
    sliding_window_collections,
)


def main() -> None:
    config = GovCorpusConfig(
        num_docs=2400,
        vocabulary_size=6000,
        num_topics=6,
        topic_assignment="blocked",
        topic_smear=1.0,
        seed=13,
    )
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 12)
    collections = corpora_from_doc_id_sets(
        corpus, sliding_window_collections(fragments, window=3, offset=1)
    )
    # Replication factor 2: every PeerList lives on two directory nodes.
    engine = MinervaEngine(
        collections, spec=SynopsisSpec.parse("mips-64"), replicas=2
    )
    queries = make_workload(config, num_queries=3, pool_size=16, seed=5)
    engine.publish({t for q in queries for t in q.terms})
    query = queries[0]

    def recall(label):
        outcome = engine.run_query(query, IQNRouter(), max_peers=4, k=50, peer_k=20)
        print(
            f"{label:42s} peers={len(engine.peers):2d} "
            f"recall={outcome.final_recall:.2f} plan={list(outcome.selected)}"
        )
        return outcome

    print(f"query: {query!s}\n")
    baseline = recall("initial network")

    # Graceful departure of the best-routed peer: keys migrate, Posts
    # are purged, and the router must re-plan around the loss.
    victim = baseline.selected[0]
    engine.remove_peer(victim)
    replanned = recall(f"after graceful departure of {victim}")

    # Crash of the next best peer: it vanishes but its Posts linger.
    crashed = replanned.selected[0]
    engine.remove_peer(crashed, purge_posts=False)
    outcome = recall(f"after CRASH of {crashed} (stale posts remain)")
    if crashed in outcome.selected:
        wasted = sum(
            1 for r in outcome.per_peer_results.get(crashed, ()) if r
        )
        print(
            f"  -> routing still selected the dead peer {crashed}; its "
            f"forward returned {wasted} results (wasted message)"
        )
    purged = engine.purge_posts_of(crashed)
    recall(f"after purging {purged} stale posts")

    # A newcomer joins with a fresh slice of the corpus.
    newcomer_docs = corpora_from_doc_id_sets(
        corpus, [set(fragments[0]) | set(fragments[6])]
    )[0]
    engine.add_peer("pnew", newcomer_docs)
    recall("after pnew joined and published")

    print(
        "\nThroughout, CORI for comparison:",
        f"{engine.run_query(query, CoriSelector(), max_peers=4, k=50, peer_k=20).final_recall:.2f}",
    )


if __name__ == "__main__":
    main()
