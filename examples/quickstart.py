"""Quickstart: a 10-peer P2P search network in ~40 lines.

Builds a small Web-like corpus, spreads it over 10 overlapping peer
collections, publishes per-term statistics + MIPs synopses to the
Chord-based directory, and routes one multi-keyword query with the
quality-only baseline (CORI) and with IQN.

Run:  python examples/quickstart.py
"""

from repro import (
    CoriSelector,
    GovCorpusConfig,
    IQNRouter,
    MinervaEngine,
    SynopsisSpec,
    build_gov_corpus,
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
)


def main() -> None:
    # 1. A synthetic crawl: 2000 documents over 5 topics.
    config = GovCorpusConfig(
        num_docs=2000,
        vocabulary_size=5000,
        num_topics=5,
        topic_assignment="blocked",
        topic_smear=1.0,
        seed=7,
    )
    corpus = build_gov_corpus(config)

    # 2. Ten peers, each holding 2 of 5 fragments -> heavy overlap.
    fragments = fragment_corpus(corpus, 5)
    collections = corpora_from_doc_id_sets(
        corpus, combination_collections(fragments, 2)
    )
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))
    print(f"network: {engine}")

    # 3. A small query workload; publish the needed per-term Posts.
    queries = make_workload(config, num_queries=3, seed=1)
    engine.publish({term for query in queries for term in query.terms})

    # 4. Route and execute with both methods.
    query = queries[0]
    print(f"\nquery: {query!s}")
    for selector in (CoriSelector(), IQNRouter()):
        outcome = engine.run_query(query, selector, max_peers=4, k=50, peer_k=20)
        curve = " ".join(f"{r:.2f}" for r in outcome.recall_at)
        print(
            f"{selector.name:25s} peers={list(outcome.selected)}\n"
            f"{'':25s} recall@0..4 = {curve}"
            f"  messages={outcome.cost.total_messages}"
        )


if __name__ == "__main__":
    main()
