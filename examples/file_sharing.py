"""File sharing: the paper's motivating single-attribute scenario.

Section 1.1: "Consider a single-attribute query for all songs by Mikis
Theodorakis.  If ... every selected peer contributes its best matches
only, the query result will most likely contain many duplicates (of
popular songs), when instead users would have preferred a much larger
variety of songs from the same number of peers."

This example models exactly that: peers share music files tagged with
attribute-value terms (``composer:theodorakis``, ``genre:opera``, ...).
Popular songs are replicated on most peers; rare recordings live on a
few.  We compare how many *distinct* matching files quality-only routing
vs IQN delivers for the same number of contacted peers.

Run:  python examples/file_sharing.py
"""

import random

from repro import (
    Corpus,
    CoriSelector,
    Document,
    IQNRouter,
    MinervaEngine,
    Query,
    SynopsisSpec,
)

NUM_MIRRORS = 8        # peers that all replicate the same hit library
NUM_COLLECTORS = 16    # peers with small but largely unique libraries
POPULAR_SONGS = 60     # the hits every mirror carries
RARE_SONGS = 500       # spread thinly across collectors


def build_music_collections(rng: random.Random) -> list[Corpus]:
    """Every file is a 'document' whose terms are attribute:value tags.

    Mirrors have the *largest* matching lists (popular library + a few
    rare tracks), so quality-only routing loves them — but they all hold
    the same files.  Collectors hold fewer matches, mostly unique.
    """

    def song(file_id: int, composer: str, genre: str) -> Document:
        return Document.from_terms(
            file_id, [f"composer:{composer}", f"genre:{genre}", "filetype:mp3"]
        )

    popular = [song(i, "theodorakis", "opera") for i in range(POPULAR_SONGS)]
    rare = [
        song(POPULAR_SONGS + i, "theodorakis", "opera")
        for i in range(RARE_SONGS)
    ]
    other = [song(10_000 + i, "hadjidakis", "folk") for i in range(200)]

    collections = []
    for _ in range(NUM_MIRRORS):
        files = popular + rng.sample(rare, 5) + rng.sample(other, 40)
        collections.append(Corpus.from_documents(files))
    for _ in range(NUM_COLLECTORS):
        files = (
            rng.sample(popular, 8)
            + rng.sample(rare, 30)
            + rng.sample(other, 20)
        )
        collections.append(Corpus.from_documents(files))
    return collections


def main() -> None:
    rng = random.Random(2006)
    engine = MinervaEngine(
        build_music_collections(rng), spec=SynopsisSpec.parse("mips-64")
    )
    num_peers = len(engine.peers)
    query = Query(0, ("composer:theodorakis",))
    engine.publish(set(query.terms))

    total_matching = len(
        engine.reference_index.doc_ids("composer:theodorakis")
    )
    print(
        f"{num_peers} peers ({NUM_MIRRORS} mirrors, {NUM_COLLECTORS} "
        f"collectors); {total_matching} distinct Theodorakis files exist "
        "network-wide\n"
    )
    print("query: all songs with composer:theodorakis, asking 5 peers\n")

    for selector in (CoriSelector(), IQNRouter()):
        outcome = engine.run_query(
            query, selector, max_peers=5, k=total_matching, peer_k=60
        )
        distinct = len({r.doc_id for r in outcome.merged})
        slots = sum(len(r) for r in outcome.per_peer_results.values())
        name = "CORI (quality only)" if isinstance(selector, CoriSelector) else "IQN"
        print(
            f"{name:22s} distinct files: {distinct:4d}   "
            f"returned slots: {slots}   "
            f"wasted on duplicates: {1 - distinct / max(1, slots + 60):.0%}"
        )
    print(
        "\nIQN routes to peers with *complementary* libraries, so the same "
        "five\npeers deliver a much larger variety of songs."
    )


if __name__ == "__main__":
    main()
