"""Tests for the tokenizer."""

from repro.ir.tokenize import STOPWORDS, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert list(tokenize("Forest FIRE safety")) == ["forest", "fire", "safety"]

    def test_strips_punctuation(self):
        assert list(tokenize("pest-safety, control!")) == [
            "pest",
            "safety",
            "control",
        ]

    def test_drops_stopwords(self):
        assert list(tokenize("the fire and the forest")) == ["fire", "forest"]

    def test_keeps_stopwords_when_asked(self):
        tokens = list(tokenize("the fire", drop_stopwords=False))
        assert tokens == ["the", "fire"]

    def test_min_length(self):
        assert list(tokenize("a ab abc", min_length=3, drop_stopwords=False)) == [
            "abc"
        ]

    def test_min_length_validation(self):
        import pytest

        with pytest.raises(ValueError):
            list(tokenize("x", min_length=0))

    def test_numbers_kept(self):
        assert list(tokenize("trec 2003 web track")) == [
            "trec",
            "2003",
            "web",
            "track",
        ]

    def test_empty_text(self):
        assert list(tokenize("")) == []

    def test_stopword_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)
