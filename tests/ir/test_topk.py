"""Tests for local top-k query execution."""

import pytest

from repro.ir.documents import Corpus, Document
from repro.ir.index import InvertedIndex
from repro.ir.topk import ScoredDocument, execute_query


@pytest.fixture
def index():
    return InvertedIndex(
        Corpus.from_documents(
            [
                Document.from_terms(1, ["forest", "fire", "fire"]),
                Document.from_terms(2, ["forest", "park"]),
                Document.from_terms(3, ["fire", "safety"]),
                Document.from_terms(4, ["park", "ranger"]),
            ]
        )
    )


class TestDisjunctive:
    def test_matches_any_term(self, index):
        results = execute_query(index, ("forest", "fire"), k=10)
        assert {r.doc_id for r in results} == {1, 2, 3}

    def test_multi_term_doc_ranks_first(self, index):
        results = execute_query(index, ("forest", "fire"), k=10)
        assert results[0].doc_id == 1

    def test_k_truncates(self, index):
        assert len(execute_query(index, ("forest", "fire"), k=2)) == 2

    def test_duplicate_terms_counted_once(self, index):
        once = execute_query(index, ("fire",), k=10)
        twice = execute_query(index, ("fire", "fire"), k=10)
        assert once == twice

    def test_scores_descending(self, index):
        results = execute_query(index, ("forest", "fire", "park"), k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestConjunctive:
    def test_requires_all_terms(self, index):
        results = execute_query(index, ("forest", "fire"), k=10, conjunctive=True)
        assert {r.doc_id for r in results} == {1}

    def test_no_match_is_empty(self, index):
        assert (
            execute_query(index, ("forest", "ranger"), k=10, conjunctive=True) == []
        )

    def test_single_term_same_as_disjunctive(self, index):
        a = execute_query(index, ("park",), k=10)
        b = execute_query(index, ("park",), k=10, conjunctive=True)
        assert a == b


class TestEdges:
    def test_empty_terms(self, index):
        assert execute_query(index, (), k=5) == []

    def test_unknown_terms(self, index):
        assert execute_query(index, ("zzz",), k=5) == []

    def test_invalid_k(self, index):
        with pytest.raises(ValueError):
            execute_query(index, ("fire",), k=0)

    def test_deterministic_tie_break(self, index):
        results = execute_query(index, ("park",), k=10)
        # Both docs contain "park" once with equal length-independent
        # tf-idf scores; higher doc_id wins the tie (reverse tuple sort).
        assert [r.doc_id for r in results] == sorted(
            [r.doc_id for r in results],
            key=lambda d: (-dict((x.doc_id, x.score) for x in results)[d], -d),
        )

    def test_result_type(self, index):
        results = execute_query(index, ("fire",), k=1)
        assert isinstance(results[0], ScoredDocument)
