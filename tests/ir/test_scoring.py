"""Tests for tf*idf and BM25 scorers."""

import math

import pytest

from repro.ir.documents import Corpus, Document
from repro.ir.scoring import BM25Scorer, TfIdfScorer


@pytest.fixture
def corpus():
    return Corpus.from_documents(
        [
            Document.from_terms(1, ["apple"] * 3 + ["banana"]),
            Document.from_terms(2, ["apple", "cherry"]),
            Document.from_terms(3, ["cherry", "cherry", "durian"]),
        ]
    )


class TestTfIdf:
    def test_zero_for_absent_term(self, corpus):
        scorer = TfIdfScorer()
        assert scorer.score(corpus, corpus.get(1), "cherry") == 0.0

    def test_zero_for_unknown_term(self, corpus):
        scorer = TfIdfScorer()
        assert scorer.score(corpus, corpus.get(1), "nope") == 0.0
        assert scorer.term_weight(corpus, "nope") == 0.0

    def test_exact_formula(self, corpus):
        scorer = TfIdfScorer()
        # apple: tf=3 in doc 1, df=2, N=3.
        expected = (1 + math.log(3)) * math.log(1 + 3 / 2)
        assert scorer.score(corpus, corpus.get(1), "apple") == pytest.approx(expected)

    def test_rarer_term_weighs_more(self, corpus):
        scorer = TfIdfScorer()
        assert scorer.term_weight(corpus, "durian") > scorer.term_weight(
            corpus, "apple"
        )

    def test_score_combines_components(self, corpus):
        scorer = TfIdfScorer()
        d = corpus.get(3)
        assert scorer.score(corpus, d, "cherry") == pytest.approx(
            scorer.term_weight(corpus, "cherry")
            * scorer.within_document(2, d, corpus)
        )


class TestBM25:
    def test_zero_for_absent_term(self, corpus):
        scorer = BM25Scorer()
        assert scorer.score(corpus, corpus.get(2), "banana") == 0.0

    def test_monotone_in_tf(self, corpus):
        scorer = BM25Scorer()
        d1 = corpus.get(1)  # tf(apple)=3
        d2 = corpus.get(2)  # tf(apple)=1, shorter doc though
        w1 = scorer.within_document(3, d1, corpus)
        w2 = scorer.within_document(1, d1, corpus)
        assert w1 > w2

    def test_tf_saturation(self, corpus):
        """BM25's hallmark: the tf component is bounded by k1 + 1."""
        scorer = BM25Scorer(k1=1.2)
        d = corpus.get(1)
        assert scorer.within_document(10_000, d, corpus) < scorer.k1 + 1

    def test_idf_nonnegative(self, corpus):
        scorer = BM25Scorer()
        for term in ("apple", "banana", "cherry", "durian"):
            assert scorer.term_weight(corpus, term) >= 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Scorer(k1=-1)
        with pytest.raises(ValueError):
            BM25Scorer(b=1.5)

    def test_scores_nonnegative(self, corpus):
        scorer = BM25Scorer()
        for document in corpus:
            for term in document.vocabulary:
                assert scorer.score(corpus, document, term) >= 0.0

    def test_name(self):
        assert BM25Scorer().name == "BM25Scorer"
        assert TfIdfScorer().name == "TfIdfScorer"
