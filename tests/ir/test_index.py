"""Tests for the inverted index."""

import pytest

from repro.ir.documents import Corpus, Document
from repro.ir.index import InvertedIndex, Posting, build_index
from repro.ir.scoring import BM25Scorer


@pytest.fixture
def corpus():
    return Corpus.from_documents(
        [
            Document.from_terms(10, ["apple"] * 5 + ["banana"]),
            Document.from_terms(20, ["apple", "banana", "banana"]),
            Document.from_terms(30, ["cherry"]),
        ]
    )


@pytest.fixture
def index(corpus):
    return InvertedIndex(corpus)


class TestStructure:
    def test_lists_sorted_by_score_desc(self, index):
        for term in index.terms():
            scores = [p.score for p in index.index_list(term)]
            assert scores == sorted(scores, reverse=True)

    def test_document_frequency(self, index):
        assert index.document_frequency("apple") == 2
        assert index.document_frequency("cherry") == 1
        assert index.document_frequency("nope") == 0

    def test_doc_ids(self, index):
        assert index.doc_ids("apple") == {10, 20}
        assert index.doc_ids("nope") == frozenset()

    def test_vocabulary_and_term_space(self, index):
        assert index.vocabulary == {"apple", "banana", "cherry"}
        assert index.term_space_size == 3

    def test_max_document_frequency(self, index):
        assert index.max_document_frequency == 2

    def test_contains_and_len(self, index):
        assert "apple" in index
        assert "nope" not in index
        assert len(index) == 3

    def test_unknown_term_is_empty(self, index):
        assert index.index_list("nope") == ()

    def test_higher_tf_scores_higher(self, index):
        postings = index.index_list("apple")
        assert postings[0].doc_id == 10  # tf 5 beats tf 1

    def test_build_index_helper(self, corpus):
        assert build_index(corpus).vocabulary == InvertedIndex(corpus).vocabulary


class TestStatistics:
    def test_max_and_average_score(self, index):
        postings = index.index_list("banana")
        assert index.max_score("banana") == postings[0].score
        assert index.average_score("banana") == pytest.approx(
            sum(p.score for p in postings) / len(postings)
        )

    def test_zero_for_unknown(self, index):
        assert index.max_score("nope") == 0.0
        assert index.average_score("nope") == 0.0


class TestScoredDocIds:
    def test_normalized_tops_at_one(self, index):
        scored = index.scored_doc_ids("apple", normalized=True)
        assert scored[0][1] == pytest.approx(1.0)
        assert all(0.0 < s <= 1.0 for _, s in scored)

    def test_raw_scores(self, index):
        raw = index.scored_doc_ids("apple", normalized=False)
        postings = index.index_list("apple")
        assert raw == [(p.doc_id, p.score) for p in postings]

    def test_unknown_term(self, index):
        assert index.scored_doc_ids("nope") == []


class TestAlternativeScorer:
    def test_bm25_changes_scores_not_structure(self, corpus):
        tfidf = InvertedIndex(corpus)
        bm25 = InvertedIndex(corpus, BM25Scorer())
        assert tfidf.vocabulary == bm25.vocabulary
        for term in tfidf.terms():
            assert tfidf.doc_ids(term) == bm25.doc_ids(term)

    def test_scorer_exposed(self, corpus):
        scorer = BM25Scorer()
        assert InvertedIndex(corpus, scorer).scorer is scorer


class TestPosting:
    def test_tuple_ordering(self):
        assert Posting(2.0, 1) > Posting(1.0, 99)
        assert Posting(1.0, 2) > Posting(1.0, 1)

    def test_fields(self):
        p = Posting(score=1.5, doc_id=7)
        assert p.score == 1.5
        assert p.doc_id == 7
