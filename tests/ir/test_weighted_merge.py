"""Tests for CORI-weighted result fusion."""

import pytest

from repro.ir.merge import merge_results, weighted_merge
from repro.ir.topk import ScoredDocument


def results(*pairs):
    return [ScoredDocument(score=s, doc_id=d) for s, d in pairs]


class TestWeightedMerge:
    def test_weights_scale_scores(self):
        fused = weighted_merge(
            {
                "good": results((1.0, 1)),
                "weak": results((1.0, 2)),
            },
            {"good": 0.9, "weak": 0.3},
        )
        assert [r.doc_id for r in fused] == [1, 2]
        assert fused[0].score == pytest.approx(0.9)

    def test_weight_can_flip_ranking(self):
        """A strong score from a weak collection loses to a moderate
        score from a strong one."""
        fused = weighted_merge(
            {
                "strong-collection": results((0.6, 1)),
                "weak-collection": results((0.9, 2)),
            },
            {"strong-collection": 1.0, "weak-collection": 0.5},
        )
        assert fused[0].doc_id == 1

    def test_missing_weight_defaults_to_one(self):
        fused = weighted_merge(
            {"unknown": results((0.7, 5))},
            {},
        )
        assert fused[0].score == pytest.approx(0.7)

    def test_duplicates_keep_best_weighted_score(self):
        fused = weighted_merge(
            {
                "a": results((1.0, 7)),
                "b": results((0.8, 7)),
            },
            {"a": 0.5, "b": 1.0},
        )
        assert len(fused) == 1
        assert fused[0].score == pytest.approx(0.8)

    def test_uniform_weights_match_plain_merge(self):
        per_peer = {
            "a": results((1.0, 1), (0.5, 2)),
            "b": results((0.8, 2), (0.3, 3)),
        }
        weighted = weighted_merge(per_peer, {"a": 1.0, "b": 1.0})
        plain = merge_results(per_peer.values())
        assert weighted == plain

    def test_k_truncates(self):
        fused = weighted_merge(
            {"a": results((1.0, 1), (0.9, 2), (0.8, 3))},
            {"a": 1.0},
            k=2,
        )
        assert len(fused) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_merge({}, {}, k=0)
        with pytest.raises(ValueError):
            weighted_merge({"a": results((1.0, 1))}, {"a": -0.5})
