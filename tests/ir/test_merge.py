"""Tests for result merging at the query initiator."""

import pytest

from repro.ir.merge import merge_results
from repro.ir.topk import ScoredDocument


def results(*pairs):
    return [ScoredDocument(score=s, doc_id=d) for s, d in pairs]


class TestMerge:
    def test_dedupes_by_doc_id_keeping_max_score(self):
        merged = merge_results(
            [results((1.0, 7), (0.5, 8)), results((2.0, 7), (0.4, 9))]
        )
        by_id = {r.doc_id: r.score for r in merged}
        assert by_id == {7: 2.0, 8: 0.5, 9: 0.4}

    def test_reranks_descending(self):
        merged = merge_results([results((0.1, 1)), results((0.9, 2))])
        assert [r.doc_id for r in merged] == [2, 1]

    def test_k_truncates(self):
        merged = merge_results(
            [results((1.0, 1), (0.9, 2), (0.8, 3))], k=2
        )
        assert len(merged) == 2

    def test_k_none_returns_all(self):
        merged = merge_results([results((1.0, 1)), results((0.9, 2))], k=None)
        assert len(merged) == 2

    def test_empty_inputs(self):
        assert merge_results([]) == []
        assert merge_results([[], []]) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            merge_results([results((1.0, 1))], k=0)

    def test_overlapping_peers_collapse(self):
        """The paper's duplicate problem: three peers, same top docs."""
        same = results((1.0, 1), (0.9, 2))
        merged = merge_results([same, same, same])
        assert len(merged) == 2
