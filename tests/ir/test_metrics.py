"""Tests for evaluation metrics (relative recall et al.)."""

import pytest

from repro.ir.metrics import (
    duplicate_fraction,
    micro_average,
    precision_against_reference,
    relative_recall,
    result_ids,
)
from repro.ir.topk import ScoredDocument


class TestRelativeRecall:
    def test_full_recall(self):
        assert relative_recall({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_partial(self):
        assert relative_recall({1, 2}, {1, 2, 3, 4}) == 0.5

    def test_zero(self):
        assert relative_recall({9}, {1, 2}) == 0.0

    def test_empty_reference_is_one(self):
        assert relative_recall({1}, set()) == 1.0
        assert relative_recall(set(), set()) == 1.0

    def test_extra_retrieved_do_not_hurt(self):
        assert relative_recall({1, 2, 99, 100}, {1, 2}) == 1.0

    def test_accepts_any_collection(self):
        assert relative_recall([1, 1, 2], (1, 2, 3, 4)) == 0.5


class TestPrecision:
    def test_basic(self):
        assert precision_against_reference({1, 2, 3, 4}, {1, 2}) == 0.5

    def test_empty_retrieved(self):
        assert precision_against_reference(set(), {1}) == 0.0


class TestResultIds:
    def test_extracts_ids(self):
        docs = [ScoredDocument(1.0, 5), ScoredDocument(0.5, 6)]
        assert result_ids(docs) == {5, 6}

    def test_empty(self):
        assert result_ids([]) == frozenset()


class TestMicroAverage:
    def test_mean(self):
        assert micro_average([0.0, 1.0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            micro_average([])


class TestDuplicateFraction:
    def test_no_duplicates(self):
        assert duplicate_fraction([{1, 2}, {3, 4}]) == 0.0

    def test_all_duplicates(self):
        assert duplicate_fraction([{1, 2}, {1, 2}]) == 0.5

    def test_empty(self):
        assert duplicate_fraction([]) == 0.0
        assert duplicate_fraction([set(), set()]) == 0.0

    def test_partial(self):
        # 6 slots, 4 distinct docs -> 1/3 wasted.
        assert duplicate_fraction([{1, 2, 3}, {3, 4, 1}]) == pytest.approx(1 / 3)
