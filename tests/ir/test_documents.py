"""Tests for the document/corpus model."""

import pytest

from repro.ir.documents import Corpus, Document


def doc(doc_id, terms):
    return Document.from_terms(doc_id, terms)


class TestDocument:
    def test_from_terms_counts(self):
        d = doc(1, ["a", "b", "a", "c", "a"])
        assert d.frequency("a") == 3
        assert d.frequency("b") == 1
        assert d.frequency("missing") == 0

    def test_length_and_vocabulary(self):
        d = doc(1, ["a", "b", "a"])
        assert d.length == 3
        assert d.vocabulary == {"a", "b"}

    def test_contains(self):
        d = doc(1, ["x"])
        assert "x" in d
        assert "y" not in d

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Document(doc_id=-1, term_frequencies={"a": 1})

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Document(doc_id=1, term_frequencies={"a": 0})

    def test_equality_and_hash(self):
        assert doc(1, ["a", "b"]) == doc(1, ["b", "a"])
        assert hash(doc(1, ["a"])) == hash(doc(1, ["a"]))
        assert doc(1, ["a"]) != doc(2, ["a"])

    def test_frozen_mapping_snapshot(self):
        source = {"a": 2}
        d = Document(doc_id=1, term_frequencies=source)
        source["b"] = 5
        assert "b" not in d


class TestCorpus:
    def test_from_documents(self):
        corpus = Corpus.from_documents([doc(1, ["a"]), doc(2, ["a", "b"])])
        assert len(corpus) == 2
        assert corpus.doc_ids == {1, 2}

    def test_duplicate_id_rejected(self):
        corpus = Corpus.from_documents([doc(1, ["a"])])
        with pytest.raises(ValueError, match="duplicate"):
            corpus.add(doc(1, ["b"]))

    def test_document_frequency(self):
        corpus = Corpus.from_documents(
            [doc(1, ["a", "b"]), doc(2, ["a"]), doc(3, ["c"])]
        )
        assert corpus.document_frequency("a") == 2
        assert corpus.document_frequency("b") == 1
        assert corpus.document_frequency("zzz") == 0
        assert corpus.max_document_frequency == 2

    def test_term_space_size(self):
        corpus = Corpus.from_documents([doc(1, ["a", "b"]), doc(2, ["b", "c"])])
        assert corpus.term_space_size == 3
        assert corpus.vocabulary == {"a", "b", "c"}

    def test_average_document_length(self):
        corpus = Corpus.from_documents(
            [doc(1, ["a"] * 4), doc(2, ["b"] * 6)]
        )
        assert corpus.average_document_length == 5.0

    def test_empty_corpus(self):
        corpus = Corpus()
        assert len(corpus) == 0
        assert corpus.average_document_length == 0.0
        assert corpus.max_document_frequency == 0

    def test_get_missing_raises(self):
        with pytest.raises(KeyError, match="no document"):
            Corpus().get(42)

    def test_membership_and_iteration(self):
        d1, d2 = doc(1, ["a"]), doc(2, ["b"])
        corpus = Corpus.from_documents([d1, d2])
        assert 1 in corpus
        assert 3 not in corpus
        assert set(corpus) == {d1, d2}
