"""Tests for the simulated Chord ring."""

import math

import pytest

from repro.dht.ring import ChordRing


@pytest.fixture
def ring():
    return ChordRing([f"peer-{i}" for i in range(32)], bits=16)


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            ChordRing([])

    def test_node_count(self, ring):
        assert len(ring) == 32

    def test_sorted_ids(self, ring):
        assert ring.node_ids == sorted(ring.node_ids)

    def test_pointers_consistent(self, ring):
        ids = ring.node_ids
        for position, node_id in enumerate(ids):
            node = ring.node(node_id)
            assert node.successor == ids[(position + 1) % len(ids)]
            assert node.predecessor == ids[(position - 1) % len(ids)]

    def test_finger_table_full(self, ring):
        node = ring.node(ring.node_ids[0])
        assert len(node.fingers) == 16
        for i, finger in enumerate(node.fingers):
            assert finger == ring.successor_of(node.finger_start(i))


class TestOwnership:
    def test_owner_is_successor_of_key(self, ring):
        for key in ("apple", "banana", 123):
            owner = ring.owner_of(key)
            assert owner.node_id == ring.successor_of(ring.key_id(key))

    def test_every_key_owned_by_exactly_one_node(self, ring):
        owners = {ring.owner_of(f"term-{i}").node_id for i in range(200)}
        assert owners <= set(ring.node_ids)

    def test_replica_nodes_are_distinct_successors(self, ring):
        replicas = ring.replica_nodes("apple", 3)
        assert len({n.node_id for n in replicas}) == 3
        assert replicas[0].node_id == ring.owner_of("apple").node_id

    def test_replicas_capped_by_ring_size(self):
        ring = ChordRing(["a", "b"], bits=16)
        assert len(ring.replica_nodes("x", 10)) == 2

    def test_replicas_validation(self, ring):
        with pytest.raises(ValueError):
            ring.replica_nodes("x", 0)


class TestLookup:
    def test_lookup_finds_owner(self, ring):
        for i in range(50):
            key = f"term-{i}"
            result = ring.lookup(key)
            assert result.owner == ring.owner_of(key).node_id

    def test_lookup_from_any_start(self, ring):
        key = "query-term"
        expected = ring.owner_of(key).node_id
        for start in ring.node_ids:
            assert ring.lookup(key, start_node=start).owner == expected

    def test_lookup_hops_logarithmic(self, ring):
        """Greedy finger routing: hops <= ~2 log2(n) for all keys."""
        bound = 2 * math.log2(len(ring)) + 1
        hops = [ring.lookup(f"t{i}").hops for i in range(200)]
        assert max(hops) <= bound

    def test_lookup_unknown_start_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.lookup("x", start_node=-1)

    def test_single_node_ring(self):
        ring = ChordRing(["solo"], bits=16)
        result = ring.lookup("anything")
        assert result.owner == ring.node_ids[0]
        assert result.hops == 0


class TestStorage:
    def test_put_get_roundtrip(self, ring):
        ring.put("apple", {"posts": 3})
        assert ring.get("apple") == {"posts": 3}

    def test_get_missing_is_none(self, ring):
        assert ring.get("never-stored") is None

    def test_put_with_replicas(self, ring):
        nodes = ring.put("pear", "v", replicas=3)
        key = ring.key_id("pear")
        assert all(n.store[key] == "v" for n in nodes)


class TestChurn:
    def test_add_node_migrates_keys(self):
        ring = ChordRing([f"p{i}" for i in range(8)], bits=16)
        for i in range(100):
            ring.put(f"k{i}", i)
        ring.add_node("newcomer")
        # Every key must still be resolvable at its (new) owner.
        for i in range(100):
            assert ring.get(f"k{i}") == i

    def test_remove_node_hands_keys_to_successor(self):
        ring = ChordRing([f"p{i}" for i in range(8)], bits=16)
        for i in range(100):
            ring.put(f"k{i}", i)
        victim = ring.owner_of("k0").node_id
        ring.remove_node(victim)
        for i in range(100):
            assert ring.get(f"k{i}") == i

    def test_remove_unknown_raises(self):
        ring = ChordRing(["a", "b"], bits=16)
        with pytest.raises(KeyError):
            ring.remove_node(123456)

    def test_cannot_remove_last_node(self):
        ring = ChordRing(["solo"], bits=16)
        with pytest.raises(ValueError):
            ring.remove_node(ring.node_ids[0])

    def test_lookup_still_correct_after_churn(self):
        ring = ChordRing([f"p{i}" for i in range(16)], bits=16)
        ring.add_node("x1")
        ring.remove_node(ring.node_ids[3])
        ring.add_node("x2")
        for i in range(50):
            key = f"term-{i}"
            assert ring.lookup(key).owner == ring.owner_of(key).node_id
