"""Crash -> stabilize -> lookup invariants of the Chord ring.

The churn subsystem leans on three ring properties: a crash loses
exactly the crashed node's store, ``re_replicate`` restores every key
that still has a surviving copy onto the key's *current* replica set,
and after repair every surviving key is reachable by routed lookup from
any start node.
"""

from __future__ import annotations

import random

import pytest

from repro.dht.ring import ChordRing

REPLICAS = 2


def make_ring(num_nodes: int = 24) -> ChordRing:
    return ChordRing([f"peer-{i}" for i in range(num_nodes)], bits=16)


def populate(ring: ChordRing, count: int = 60) -> dict[str, str]:
    values = {f"term-{i}": f"value-{i}" for i in range(count)}
    for key, value in values.items():
        ring.put(key, value, replicas=REPLICAS)
    return values


class TestCrashSemantics:
    def test_crash_loses_exactly_the_nodes_store(self):
        ring = make_ring()
        populate(ring)
        victim = ring.node_ids[0]
        held = len(ring.node(victim).store)
        assert ring.crash_node(victim) == held
        assert victim not in ring.node_ids

    def test_crash_repairs_pointers_immediately(self):
        ring = make_ring()
        ring.crash_node(ring.node_ids[3])
        ids = ring.node_ids
        for position, node_id in enumerate(ids):
            node = ring.node(node_id)
            assert node.successor == ids[(position + 1) % len(ids)]
            assert node.predecessor == ids[(position - 1) % len(ids)]

    def test_cannot_crash_the_last_node(self):
        ring = ChordRing(["solo"])
        with pytest.raises(ValueError, match="last node"):
            ring.crash_node(ring.node_ids[0])


class TestCrashThenStabilize:
    def test_single_crash_loses_no_replicated_key(self):
        ring = make_ring()
        values = populate(ring)
        ring.crash_node(ring.node_ids[5])
        ring.re_replicate(REPLICAS)
        for key, value in values.items():
            assert ring.get(key) == value

    def test_survivors_are_reachable_by_routed_lookup_from_anywhere(self):
        ring = make_ring()
        values = populate(ring)
        ring.crash_node(ring.node_ids[5])
        ring.re_replicate(REPLICAS)
        rng = random.Random(7)
        for key in values:
            start = rng.choice(ring.node_ids)
            result = ring.lookup(key, start_node=start)
            assert result.owner == ring.owner_of(key).node_id
            assert ring.key_id(key) in ring.node(result.owner).store

    def test_replica_invariant_restored_exactly(self):
        ring = make_ring()
        values = populate(ring)
        ring.crash_node(ring.node_ids[2])
        ring.crash_node(ring.node_ids[9])
        ring.re_replicate(REPLICAS)
        for key in values:
            position = ring.key_id(key)
            holders = {
                node_id
                for node_id in ring.node_ids
                if position in ring.node(node_id).store
            }
            assert holders == set(ring.replica_ids_at(position, REPLICAS))

    def test_consecutive_replica_crashes_lose_keys_for_good(self):
        """Crashing a key's whole replica set before repair loses it —
        the scenario reposting (not re-replication) must cover."""
        ring = make_ring()
        values = populate(ring)
        probe = next(iter(values))
        for node_id in ring.replica_ids_at(ring.key_id(probe), REPLICAS):
            ring.crash_node(node_id)
        ring.re_replicate(REPLICAS)
        assert ring.get(probe) is None

    def test_repeated_churn_rounds_keep_surviving_keys_available(self):
        """Randomized rounds of crash + stabilize: any key whose copy
        survived the round is findable afterwards."""
        ring = make_ring(num_nodes=20)
        values = populate(ring, count=40)
        rng = random.Random(23)
        for _ in range(5):
            victim = rng.choice(ring.node_ids)
            ring.crash_node(victim)
            ring.re_replicate(REPLICAS)
            surviving = {
                key
                for node_id in ring.node_ids
                for key in (
                    k
                    for k in values
                    if ring.key_id(k) in ring.node(node_id).store
                )
            }
            for key in surviving:
                assert ring.get(key) == values[key]
                result = ring.lookup(key, start_node=rng.choice(ring.node_ids))
                assert ring.key_id(key) in ring.node(result.owner).store
