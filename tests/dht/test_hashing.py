"""Tests for Chord consistent hashing primitives."""

import pytest

from repro.dht.hashing import chord_id, in_interval, ring_distance


class TestChordId:
    def test_deterministic(self):
        assert chord_id("peer-1") == chord_id("peer-1")

    def test_within_ring(self):
        for key in ("a", "b", 42, "term:apple"):
            assert 0 <= chord_id(key, bits=16) < (1 << 16)

    def test_salt_separates_namespaces(self):
        assert chord_id("x", salt="node") != chord_id("x", salt="key")

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            chord_id("x", bits=0)
        with pytest.raises(ValueError):
            chord_id("x", bits=200)

    def test_spread(self):
        ids = {chord_id(i, bits=32) for i in range(1000)}
        assert len(ids) == 1000


class TestRingDistance:
    def test_forward(self):
        assert ring_distance(10, 20, bits=8) == 10

    def test_wraparound(self):
        assert ring_distance(250, 5, bits=8) == 11

    def test_zero(self):
        assert ring_distance(7, 7, bits=8) == 0


class TestInInterval:
    def test_simple_interval(self):
        assert in_interval(15, 10, 20, bits=8)
        assert not in_interval(5, 10, 20, bits=8)

    def test_exclusive_start(self):
        assert not in_interval(10, 10, 20, bits=8)

    def test_inclusive_end_default(self):
        assert in_interval(20, 10, 20, bits=8)

    def test_exclusive_end(self):
        assert not in_interval(20, 10, 20, bits=8, inclusive_end=False)

    def test_wraparound_interval(self):
        assert in_interval(3, 250, 10, bits=8)
        assert in_interval(255, 250, 10, bits=8)
        assert not in_interval(100, 250, 10, bits=8)

    def test_full_ring_interval(self):
        # start == end spans the whole ring.
        assert in_interval(5, 9, 9, bits=8)
        assert in_interval(9, 9, 9, bits=8)  # inclusive end
        assert not in_interval(9, 9, 9, bits=8, inclusive_end=False)
