"""Property-based tests on the Chord ring.

Invariants over arbitrary node populations and churn sequences: routed
lookups agree with direct ownership, keys survive churn, and the ring's
pointers stay mutually consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.ring import ChordRing

node_name_sets = st.sets(
    st.integers(min_value=0, max_value=500).map(lambda i: f"peer-{i}"),
    min_size=1,
    max_size=24,
)

key_lists = st.lists(
    st.integers(min_value=0, max_value=300).map(lambda i: f"key-{i}"),
    min_size=1,
    max_size=30,
    unique=True,
)


class TestRingProperties:
    @given(node_name_sets, key_lists)
    @settings(max_examples=40, deadline=None)
    def test_lookup_agrees_with_ownership(self, names, keys):
        ring = ChordRing(names, bits=16)
        for key in keys:
            assert ring.lookup(key).owner == ring.owner_of(key).node_id

    @given(node_name_sets, key_lists)
    @settings(max_examples=40, deadline=None)
    def test_lookup_start_invariance(self, names, keys):
        ring = ChordRing(names, bits=16)
        for key in keys[:5]:
            owners = {
                ring.lookup(key, start_node=start).owner
                for start in ring.node_ids[:5]
            }
            assert len(owners) == 1

    @given(node_name_sets)
    @settings(max_examples=40, deadline=None)
    def test_pointer_consistency(self, names):
        ring = ChordRing(names, bits=16)
        ids = ring.node_ids
        for position, node_id in enumerate(ids):
            node = ring.node(node_id)
            assert node.successor == ids[(position + 1) % len(ids)]
            assert node.predecessor == ids[(position - 1) % len(ids)]

    @given(node_name_sets, key_lists, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_keys_survive_arbitrary_churn(self, names, keys, rng):
        """Put keys, then run a random join/leave sequence; every key
        must remain resolvable with its value."""
        ring = ChordRing(names, bits=16)
        for index, key in enumerate(keys):
            ring.put(key, index)
        joined = 0
        for step in range(6):
            if rng.random() < 0.5 and len(ring) > 1:
                ring.remove_node(rng.choice(ring.node_ids))
            else:
                ring.add_node(f"joiner-{joined}")
                joined += 1
        for index, key in enumerate(keys):
            assert ring.get(key) == index

    @given(node_name_sets, key_lists)
    @settings(max_examples=30, deadline=None)
    def test_key_partition_is_total(self, names, keys):
        """Every key has exactly one owner; owners partition the space."""
        ring = ChordRing(names, bits=16)
        for key in keys:
            owners = [
                node_id
                for node_id in ring.node_ids
                if ring.successor_of(ring.key_id(key)) == node_id
            ]
            assert len(owners) == 1
