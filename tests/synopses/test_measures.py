"""Tests for exact set measures and the estimator algebra (Section 3.1)."""

import pytest

from repro.synopses.measures import (
    containment,
    containment_from_resemblance,
    novelty,
    novelty_from_resemblance,
    novelty_from_union,
    overlap,
    overlap_from_containment,
    overlap_from_resemblance,
    resemblance,
    resemblance_from_containment,
)

A = set(range(0, 60))
B = set(range(40, 100))  # |A ∩ B| = 20, |A ∪ B| = 100


class TestExactMeasures:
    def test_overlap(self):
        assert overlap(A, B) == 20
        assert overlap(B, A) == 20

    def test_containment_asymmetric(self):
        assert containment(A, B) == pytest.approx(20 / 60)
        assert containment(B, A) == pytest.approx(20 / 60)
        # Asymmetry shows with different sizes.
        small = set(range(50, 60))
        assert containment(A, small) == 1.0
        assert containment(small, A) == pytest.approx(10 / 60)

    def test_containment_empty_b(self):
        assert containment(A, set()) == 0.0

    def test_resemblance_symmetric(self):
        assert resemblance(A, B) == resemblance(B, A) == pytest.approx(0.2)

    def test_resemblance_empty(self):
        assert resemblance(set(), set()) == 0.0

    def test_novelty_definition(self):
        # Novelty(B | A): what B adds beyond A.
        assert novelty(B, A) == 40
        assert novelty(A, B) == 40
        assert novelty(A, A) == 0
        assert novelty(set(), A) == 0
        assert novelty(A, set()) == len(A)

    def test_subset_has_zero_novelty(self):
        """The Section 3.1 motivation: a small subset has low containment
        and resemblance yet adds nothing new."""
        small = set(range(10))
        big = set(range(1000))
        assert resemblance(small, big) < 0.02
        assert containment(big, small) == 1.0
        assert novelty(small, big) == 0


class TestConversions:
    def test_overlap_from_resemblance_roundtrip(self):
        res = resemblance(A, B)
        assert overlap_from_resemblance(res, len(A), len(B)) == pytest.approx(20)

    def test_overlap_from_containment_roundtrip(self):
        cont = containment(A, B)
        assert overlap_from_containment(cont, len(B)) == pytest.approx(20)

    def test_resemblance_containment_inverse(self):
        res = resemblance(A, B)
        cont = containment_from_resemblance(res, len(A), len(B))
        assert cont == pytest.approx(containment(A, B))
        back = resemblance_from_containment(cont, len(A), len(B))
        assert back == pytest.approx(res)

    def test_novelty_from_resemblance_roundtrip(self):
        res = resemblance(A, B)
        assert novelty_from_resemblance(res, len(A), len(B)) == pytest.approx(40)

    def test_novelty_from_union_roundtrip(self):
        union_size = len(A | B)
        assert novelty_from_union(union_size, len(A), len(B)) == pytest.approx(40)

    def test_overlap_clamped_to_feasible(self):
        # A noisy resemblance of 1.0 cannot imply overlap > min(|A|, |B|).
        assert overlap_from_resemblance(1.0, 10, 1000) <= 10

    def test_novelty_clamped_nonnegative(self):
        assert novelty_from_resemblance(1.0, 1000, 10) >= 0.0

    def test_novelty_from_union_clamped_to_candidate(self):
        assert novelty_from_union(10_000, 10, 50) == 50

    def test_degenerate_cardinalities(self):
        assert resemblance_from_containment(0.0, 0, 0) == 0.0
        assert containment_from_resemblance(0.5, 10, 0) == 0.0


class TestValidation:
    def test_rejects_bad_resemblance(self):
        with pytest.raises(ValueError):
            overlap_from_resemblance(1.5, 10, 10)
        with pytest.raises(ValueError):
            overlap_from_resemblance(-0.1, 10, 10)

    def test_rejects_negative_cardinality(self):
        with pytest.raises(ValueError):
            overlap_from_resemblance(0.5, -1, 10)
        with pytest.raises(ValueError):
            novelty_from_union(5, -1, 10)

    def test_rejects_negative_union(self):
        with pytest.raises(ValueError):
            novelty_from_union(-5, 1, 10)
