"""Memo-cache freshness properties (hypothesis).

Every synopsis family lazily memoizes a derived statistic on first use
(``_cardinality`` for MIPs / hash sketches / LogLog, ``_bit_count`` for
Bloom filters).  Synopses are immutable value objects, so the only way a
stale memo could ever surface is through a derived object: an operation
performed *after* the memo was warmed must yield an object whose own
estimates are indistinguishable from the same operation on cold, freshly
rebuilt operands.

These tests pin that contract (the invariant reprolint's RPRL001 guards
statically): warm the memo, derive, and compare bit-for-bit against the
cold path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses.bloom import BloomFilter
from repro.synopses.hashsketch import HashSketch
from repro.synopses.loglog import LogLogCounter
from repro.synopses.mips import MinWisePermutations

id_sets = st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=200)

FAMILIES = {
    "bloom": lambda ids: BloomFilter.from_ids(ids, num_bits=512, num_hashes=3),
    "mips": lambda ids: MinWisePermutations.from_ids(ids, num_permutations=16),
    "hash-sketch": lambda ids: HashSketch.from_ids(
        ids, num_bitmaps=8, bitmap_length=32
    ),
    "loglog": lambda ids: LogLogCounter.from_ids(ids, num_buckets=16),
}

INTERSECTABLE = ("bloom", "mips")


def _warmed(build, ids):
    """A synopsis whose memoized statistics have been populated."""
    synopsis = build(ids)
    synopsis.estimate_cardinality()
    if isinstance(synopsis, BloomFilter):
        synopsis.bit_count  # warms the _bit_count memo
    return synopsis


class TestUnionFreshness:
    @given(id_sets, id_sets, st.sampled_from(sorted(FAMILIES)))
    @settings(max_examples=60)
    def test_union_after_estimate_matches_cold_union(self, a, b, family):
        build = FAMILIES[family]
        warm = _warmed(build, a).union(_warmed(build, b))
        cold = build(a).union(build(b))
        assert warm == cold
        assert warm.estimate_cardinality() == cold.estimate_cardinality()

    @given(id_sets, id_sets, st.sampled_from(sorted(FAMILIES)))
    @settings(max_examples=60)
    def test_union_result_memo_is_its_own(self, a, b, family):
        """The union's first estimate equals its second (memo is stable)
        and matches a rebuild from the true union of the id sets."""
        build = FAMILIES[family]
        union = _warmed(build, a).union(_warmed(build, b))
        first = union.estimate_cardinality()
        assert union.estimate_cardinality() == first
        rebuilt = build(a | b)
        assert union == rebuilt
        assert first == rebuilt.estimate_cardinality()


class TestIntersectFreshness:
    @given(id_sets, id_sets, st.sampled_from(INTERSECTABLE))
    @settings(max_examples=60)
    def test_intersect_after_estimate_matches_cold_intersect(self, a, b, family):
        build = FAMILIES[family]
        warm = _warmed(build, a).intersect(_warmed(build, b))
        cold = build(a).intersect(build(b))
        assert warm == cold
        assert warm.estimate_cardinality() == cold.estimate_cardinality()


class TestBloomDerivedOps:
    @given(id_sets, st.integers(min_value=0, max_value=1 << 40))
    @settings(max_examples=60)
    def test_add_after_estimate_matches_cold_build(self, ids, extra):
        warm = _warmed(FAMILIES["bloom"], ids).add(extra)
        cold = FAMILIES["bloom"](ids | {extra})
        assert warm == cold
        assert warm.bit_count == cold.bit_count
        assert warm.estimate_cardinality() == cold.estimate_cardinality()

    @given(id_sets, id_sets)
    @settings(max_examples=60)
    def test_difference_after_estimate_matches_cold_difference(self, a, b):
        build = FAMILIES["bloom"]
        warm = _warmed(build, a).difference(_warmed(build, b))
        cold = build(a).difference(build(b))
        assert warm == cold
        assert warm.estimate_cardinality() == cold.estimate_cardinality()


class TestEmptyLikeFreshness:
    @given(id_sets, st.sampled_from(sorted(FAMILIES)))
    @settings(max_examples=40)
    def test_empty_like_of_warmed_synopsis_estimates_zero(self, ids, family):
        empty = _warmed(FAMILIES[family], ids).empty_like()
        assert empty.is_empty
        assert empty.estimate_cardinality() == 0.0
