"""Tests for min-wise independent permutation synopses."""

import random
import statistics

import pytest

from repro.synopses.base import IncompatibleSynopsesError
from repro.synopses.measures import resemblance
from repro.synopses.mips import MIPS_MODULUS, MinWisePermutations


def build(ids, n=64, seed=0):
    return MinWisePermutations.from_ids(ids, num_permutations=n, seed=seed)


def overlapping_sets(rng, size=2000, shared=500):
    ids = rng.sample(range(1 << 40), 2 * size - shared)
    common = set(ids[:shared])
    return (
        common | set(ids[shared:size]),
        common | set(ids[size : 2 * size - shared]),
    )


class TestConstruction:
    def test_empty_is_sentinel_vector(self):
        empty = build([])
        assert empty.is_empty
        assert all(m == MIPS_MODULUS for m in empty.minima)

    def test_rejects_zero_permutations(self):
        with pytest.raises(ValueError):
            build([1, 2], n=0)

    def test_rejects_out_of_range_minima(self):
        with pytest.raises(ValueError):
            MinWisePermutations([MIPS_MODULUS + 1])

    def test_rejects_empty_vector(self):
        with pytest.raises(ValueError):
            MinWisePermutations([])

    def test_deterministic(self):
        assert build(range(100)) == build(range(100))
        assert hash(build(range(100))) == hash(build(range(100)))

    def test_order_independent(self):
        ids = list(range(1000))
        shuffled = ids[::-1]
        assert build(ids) == build(shuffled)

    def test_size_accounting(self):
        assert build(range(10), n=64).size_in_bits == 64 * 32
        assert build(range(10), n=32).size_in_bits == 1024


class TestResemblance:
    def test_identical_sets(self):
        a = build(range(1000))
        assert a.estimate_resemblance(a) == 1.0

    def test_disjoint_sets(self):
        a = build(range(1000))
        b = build(range(10_000, 11_000))
        assert a.estimate_resemblance(b) < 0.1

    def test_empty_operand_gives_zero(self):
        a = build(range(100))
        assert a.estimate_resemblance(build([])) == 0.0
        assert build([]).estimate_resemblance(a) == 0.0
        assert build([]).estimate_resemblance(build([])) == 0.0

    def test_unbiased_over_trials(self):
        """Mean estimate over 25 trials within 2 stderr of the truth."""
        estimates = []
        truth = None
        for trial in range(25):
            rng = random.Random(1000 + trial)
            set_a, set_b = overlapping_sets(rng)
            truth = resemblance(set_a, set_b)
            estimates.append(build(set_a).estimate_resemblance(build(set_b)))
        mean = statistics.mean(estimates)
        stderr = statistics.stdev(estimates) / len(estimates) ** 0.5
        assert abs(mean - truth) < 3 * stderr + 0.01

    def test_more_permutations_reduce_error(self):
        errors = {n: [] for n in (16, 256)}
        for trial in range(12):
            rng = random.Random(2000 + trial)
            set_a, set_b = overlapping_sets(rng)
            truth = resemblance(set_a, set_b)
            for n in errors:
                est = build(set_a, n=n).estimate_resemblance(build(set_b, n=n))
                errors[n].append(abs(est - truth))
        assert statistics.mean(errors[256]) < statistics.mean(errors[16])


class TestHeterogeneousLengths:
    def test_resemblance_uses_common_prefix(self):
        set_a = set(range(500))
        set_b = set(range(250, 750))
        long = build(set_a, n=128)
        short = build(set_b, n=32)
        est = long.estimate_resemblance(short)
        # Same as comparing two 32-permutation vectors.
        est_32 = build(set_a, n=32).estimate_resemblance(build(set_b, n=32))
        assert est == est_32

    def test_union_takes_shorter_length(self):
        union = build(range(10), n=128).union(build(range(10, 20), n=32))
        assert union.num_permutations == 32

    def test_prefix_consistency(self):
        # Longer vectors extend shorter ones built from the same set.
        short = build(range(100), n=16)
        long = build(range(100), n=64)
        assert long.minima[:16] == short.minima


class TestAggregation:
    def test_union_equals_synopsis_of_union(self):
        """Position-wise min is exactly the MIPs of the set union."""
        set_a = set(range(0, 3000, 3))
        set_b = set(range(0, 3000, 7))
        assert build(set_a).union(build(set_b)) == build(set_a | set_b)

    def test_union_with_empty_is_identity(self):
        a = build(range(100))
        assert a.union(a.empty_like()) == a

    def test_intersect_is_conservative(self):
        """Per Section 6.1: the true intersection's minimum under any
        permutation can be *no lower* than the heuristic's position-wise
        max, i.e. heuristic <= true at every position."""
        set_a = set(range(0, 2000, 2))
        set_b = set(range(0, 2000, 3))
        heuristic = build(set_a).intersect(build(set_b))
        true = build(set_a & set_b)
        assert all(h <= t for h, t in zip(heuristic.minima, true.minima))

    def test_intersect_of_disjoint_not_empty_vector_but_large_minima(self):
        a, b = build(range(100)), build(range(1000, 1100))
        inter = a.intersect(b)
        assert all(
            i >= max(x, y)
            for i, x, y in zip(inter.minima, a.minima, b.minima)
        )


class TestCardinality:
    @pytest.mark.parametrize("n_items", [100, 1000, 10_000])
    def test_order_statistics_estimate(self, n_items):
        mips = build(range(n_items), n=256)
        assert mips.estimate_cardinality() == pytest.approx(n_items, rel=0.35)

    def test_empty_cardinality(self):
        assert build([]).estimate_cardinality() == 0.0

    def test_distinct_fraction(self):
        assert build([]).distinct_fraction == 0.0
        assert 0.0 < build(range(1000)).distinct_fraction <= 1.0


class TestCompatibility:
    def test_seed_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError, match="seed"):
            build(range(5), seed=1).union(build(range(5), seed=2))

    def test_cross_type_rejected(self):
        from repro.synopses.bloom import BloomFilter

        bloom = BloomFilter.from_ids(range(5), num_bits=64, num_hashes=2)
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5)).union(bloom)
