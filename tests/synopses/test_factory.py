"""Tests for named synopsis configurations (SynopsisSpec)."""

import pytest

from repro.synopses.bloom import BloomFilter
from repro.synopses.factory import KINDS, SynopsisSpec
from repro.synopses.hashsketch import HashSketch
from repro.synopses.mips import MinWisePermutations


class TestParsing:
    @pytest.mark.parametrize(
        "label,kind,parameter",
        [
            ("mips-64", "mips", 64),
            ("MIPS-32", "mips", 32),
            ("bf-2048", "bloom", 2048),
            ("bloom-1024", "bloom", 1024),
            ("hs-32", "hash-sketch", 32),
            ("hss-16", "hash-sketch", 16),
            ("hash-sketch-8", "hash-sketch", 8),
        ],
    )
    def test_parse(self, label, kind, parameter):
        spec = SynopsisSpec.parse(label)
        assert spec.kind == kind
        assert spec.parameter == parameter

    @pytest.mark.parametrize("label", ["", "mips", "64", "foo-12", "mips-x"])
    def test_parse_rejects(self, label):
        with pytest.raises(ValueError):
            SynopsisSpec.parse(label)

    def test_display_labels(self):
        assert SynopsisSpec.parse("mips-64").label == "MIPs 64"
        assert SynopsisSpec.parse("bf-2048").label == "BF 2048"
        assert SynopsisSpec.parse("hs-32").label == "HSs 32"


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown synopsis kind"):
            SynopsisSpec(kind="cuckoo", parameter=8)

    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(ValueError):
            SynopsisSpec(kind="mips", parameter=0)


class TestBudget:
    def test_equal_budget_configurations(self):
        """The paper's 2048-bit comparison point (LogLog's 5-bit
        registers cannot hit 2048 exactly; it fills to within one)."""
        for kind in KINDS:
            spec = SynopsisSpec.for_budget(kind, 2048)
            assert 2048 - 4 <= spec.size_in_bits <= 2048
        assert SynopsisSpec.for_budget("mips", 2048).parameter == 64
        assert SynopsisSpec.for_budget("bloom", 2048).parameter == 2048
        assert SynopsisSpec.for_budget("hash-sketch", 2048).parameter == 32
        assert SynopsisSpec.for_budget("loglog", 2048).parameter == 409

    def test_budget_never_exceeded(self):
        for kind in KINDS:
            spec = SynopsisSpec.for_budget(kind, 1000)
            assert spec.size_in_bits <= 1000

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            SynopsisSpec.for_budget("mips", 0)
        with pytest.raises(ValueError):
            SynopsisSpec.for_budget("wrong", 64)


class TestBuild:
    def test_build_dispatch(self):
        ids = range(50)
        assert isinstance(SynopsisSpec.parse("mips-8").build(ids), MinWisePermutations)
        assert isinstance(SynopsisSpec.parse("bf-128").build(ids), BloomFilter)
        assert isinstance(SynopsisSpec.parse("hs-4").build(ids), HashSketch)

    def test_empty_builds_empty(self):
        for kind in KINDS:
            spec = SynopsisSpec.for_budget(kind, 1024)
            assert spec.empty().is_empty

    def test_built_synopses_are_compatible(self):
        spec = SynopsisSpec.parse("mips-16")
        a = spec.build(range(10))
        b = spec.build(range(5, 15))
        a.check_compatible(b)  # does not raise

    def test_seed_flows_through(self):
        a = SynopsisSpec(kind="mips", parameter=16, seed=1).build(range(10))
        b = SynopsisSpec(kind="mips", parameter=16, seed=2).build(range(10))
        assert a != b


class TestCapabilities:
    def test_heterogeneous_sizes_only_mips(self):
        assert SynopsisSpec.parse("mips-16").supports_heterogeneous_sizes
        assert not SynopsisSpec.parse("bf-128").supports_heterogeneous_sizes
        assert not SynopsisSpec.parse("hs-8").supports_heterogeneous_sizes

    def test_intersection_not_hash_sketch(self):
        assert SynopsisSpec.parse("mips-16").supports_intersection
        assert SynopsisSpec.parse("bf-128").supports_intersection
        assert not SynopsisSpec.parse("hs-8").supports_intersection

    def test_resized(self):
        spec = SynopsisSpec.parse("mips-64")
        smaller = spec.resized(16)
        assert smaller.parameter == 16
        assert smaller.kind == spec.kind
        assert smaller.seed == spec.seed
