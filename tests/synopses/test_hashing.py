"""Tests for the deterministic hash families."""

import numpy as np
import pytest

from repro.synopses.hashing import (
    MERSENNE_PRIME_61,
    ids_to_uint64_array,
    LinearHashFamily,
    LinearPermutation,
    splitmix64,
    splitmix64_array,
    uniform_hash,
    uniform_hash_array,
)


class TestSplitMix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_known_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_distinct_inputs_distinct_outputs(self):
        # SplitMix64 is a bijection on 64-bit ints; a small sample must
        # therefore be collision-free.
        outputs = {splitmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_avalanche_flips_many_bits(self):
        a = splitmix64(1234)
        b = splitmix64(1235)
        assert bin(a ^ b).count("1") > 16

    def test_array_matches_scalar(self):
        values = np.array([0, 1, 7, 2**40, 2**64 - 1], dtype=np.uint64)
        expected = [splitmix64(int(v)) for v in values.tolist()]
        assert splitmix64_array(values).tolist() == expected

    def test_array_does_not_mutate_input(self):
        values = np.array([3, 4], dtype=np.uint64)
        splitmix64_array(values)
        assert values.tolist() == [3, 4]


class TestUniformHash:
    def test_seed_changes_output(self):
        assert uniform_hash(99, seed=1) != uniform_hash(99, seed=2)

    def test_array_matches_scalar(self):
        keys = np.array([5, 17, 2**33], dtype=np.uint64)
        expected = [uniform_hash(int(k), seed=11) for k in keys.tolist()]
        assert uniform_hash_array(keys, seed=11).tolist() == expected

    def test_roughly_uniform_low_bits(self):
        # Bucket 20k hashes into 16 buckets; each should be near 1250.
        buckets = [0] * 16
        for i in range(20_000):
            buckets[uniform_hash(i) % 16] += 1
        assert max(buckets) - min(buckets) < 400


class TestLinearPermutation:
    def test_is_bijection_on_small_modulus(self):
        perm = LinearPermutation(a=3, b=5, modulus=17)
        images = {perm(x) for x in range(17)}
        assert images == set(range(17))

    def test_rejects_zero_coefficient(self):
        with pytest.raises(ValueError, match="nonzero"):
            LinearPermutation(a=0, b=5, modulus=17)

    def test_rejects_multiple_of_modulus(self):
        with pytest.raises(ValueError, match="nonzero"):
            LinearPermutation(a=34, b=5, modulus=17)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError, match="modulus"):
            LinearPermutation(a=1, b=0, modulus=1)

    def test_default_modulus_is_mersenne(self):
        perm = LinearPermutation(a=7, b=3)
        assert perm.modulus == MERSENNE_PRIME_61


class TestLinearHashFamily:
    def test_same_seed_same_sequence(self):
        family_a = LinearHashFamily(seed=5)
        family_b = LinearHashFamily(seed=5)
        # Materialize in different orders; sequences must agree anyway.
        family_a.permutation(10)
        for i in (3, 10, 0):
            pa = family_a.permutation(i)
            pb = family_b.permutation(i)
            assert (pa.a, pa.b) == (pb.a, pb.b)

    def test_different_seeds_differ(self):
        pa = LinearHashFamily(seed=1).permutation(0)
        pb = LinearHashFamily(seed=2).permutation(0)
        assert (pa.a, pa.b) != (pb.a, pb.b)

    def test_permutations_prefix(self):
        family = LinearHashFamily(seed=3)
        five = family.permutations(5)
        three = family.permutations(3)
        assert five[:3] == three

    def test_permutations_zero(self):
        assert LinearHashFamily(seed=3).permutations(0) == []

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            LinearHashFamily(seed=3).permutation(-1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            LinearHashFamily(seed=3).permutations(-2)

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            LinearHashFamily(seed=0, modulus=0)


class TestIdsToUint64Array:
    """The shared id-conversion helper must match the old per-synopsis
    ``np.fromiter((i & MASK64 for i in ids), ...)`` generators exactly."""

    def masked(self, ids):
        return [i & ((1 << 64) - 1) for i in ids]

    def test_empty(self):
        array = ids_to_uint64_array([])
        assert array.dtype == np.uint64
        assert array.size == 0

    def test_empty_frozenset(self):
        assert ids_to_uint64_array(frozenset()).size == 0

    def test_list_and_frozenset(self):
        ids = [3, 17, 2**40, 0]
        assert sorted(ids_to_uint64_array(frozenset(ids)).tolist()) == sorted(
            self.masked(ids)
        )
        assert ids_to_uint64_array(ids).tolist() == self.masked(ids)

    def test_range(self):
        assert ids_to_uint64_array(range(5)).tolist() == [0, 1, 2, 3, 4]

    def test_negative_ids_wrap_like_mask(self):
        ids = [-1, -2**63, -12345]
        assert ids_to_uint64_array(ids).tolist() == self.masked(ids)

    def test_high_bit_ids(self):
        ids = [2**63, 2**64 - 1]
        assert ids_to_uint64_array(ids).tolist() == self.masked(ids)

    def test_huge_ids_fall_back_to_masking(self):
        ids = [2**64, 2**80 + 5, 7]
        assert ids_to_uint64_array(ids).tolist() == self.masked(ids)

    def test_uint64_array_passthrough(self):
        values = np.array([1, 2, 3], dtype=np.uint64)
        assert ids_to_uint64_array(values) is values

    def test_int64_array_converted(self):
        values = np.array([-1, 5], dtype=np.int64)
        assert ids_to_uint64_array(values).tolist() == self.masked([-1, 5])

    def test_float_ids_rejected(self):
        # The old generator raised TypeError on floats (the & operator);
        # the helper must not silently truncate them instead.
        with pytest.raises(TypeError):
            ids_to_uint64_array([1.5, 2.0])

    def test_float_array_rejected(self):
        with pytest.raises(TypeError):
            ids_to_uint64_array(np.array([1.5, 2.0]))
