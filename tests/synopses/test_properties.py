"""Property-based tests (hypothesis) on the synopsis layer's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses.bloom import BloomFilter
from repro.synopses.factory import SynopsisSpec
from repro.synopses.hashsketch import HashSketch
from repro.synopses.measures import (
    containment,
    novelty,
    overlap,
    overlap_from_resemblance,
    resemblance,
)
from repro.synopses.mips import MinWisePermutations

id_sets = st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=300)
nonempty_id_sets = st.sets(
    st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=300
)


class TestExactMeasureAlgebra:
    @given(id_sets, id_sets)
    def test_inclusion_exclusion(self, a, b):
        assert len(a) + len(b) - overlap(a, b) == len(a | b)

    @given(id_sets, id_sets)
    def test_novelty_decomposition(self, a, b):
        """|B| = Novelty(B|A) + |A ∩ B| — the identity IQN relies on."""
        assert novelty(b, a) + overlap(a, b) == len(b)

    @given(id_sets, id_sets)
    def test_resemblance_bounds_and_symmetry(self, a, b):
        r = resemblance(a, b)
        assert 0.0 <= r <= 1.0
        assert r == resemblance(b, a)

    @given(id_sets, id_sets)
    def test_containment_bounds(self, a, b):
        assert 0.0 <= containment(a, b) <= 1.0

    @given(nonempty_id_sets, nonempty_id_sets)
    def test_overlap_recovery_from_exact_resemblance(self, a, b):
        """The Section 5.2 conversion is exact on exact inputs."""
        recovered = overlap_from_resemblance(resemblance(a, b), len(a), len(b))
        assert abs(recovered - overlap(a, b)) < 1e-6


class TestBloomProperties:
    @given(id_sets)
    @settings(max_examples=50)
    def test_no_false_negatives(self, ids):
        bf = BloomFilter.from_ids(ids, num_bits=2048, num_hashes=4)
        assert all(i in bf for i in ids)

    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_union_is_filter_of_union(self, a, b):
        make = lambda s: BloomFilter.from_ids(s, num_bits=1024, num_hashes=3)
        assert make(a).union(make(b)) == make(a | b)

    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_intersect_contains_true_intersection(self, a, b):
        make = lambda s: BloomFilter.from_ids(s, num_bits=1024, num_hashes=3)
        inter = make(a).intersect(make(b))
        assert all(i in inter for i in a & b)

    @given(id_sets)
    @settings(max_examples=50)
    def test_cardinality_nonnegative(self, ids):
        bf = BloomFilter.from_ids(ids, num_bits=512, num_hashes=3)
        assert bf.estimate_cardinality() >= 0.0


class TestMipsProperties:
    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_union_is_mips_of_union(self, a, b):
        make = lambda s: MinWisePermutations.from_ids(s, num_permutations=16)
        assert make(a).union(make(b)) == make(a | b)

    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_resemblance_in_unit_interval(self, a, b):
        make = lambda s: MinWisePermutations.from_ids(s, num_permutations=16)
        assert 0.0 <= make(a).estimate_resemblance(make(b)) <= 1.0

    @given(nonempty_id_sets)
    @settings(max_examples=50)
    def test_self_resemblance_is_one(self, ids):
        mips = MinWisePermutations.from_ids(ids, num_permutations=16)
        assert mips.estimate_resemblance(mips) == 1.0

    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_intersect_positionwise_max(self, a, b):
        make = lambda s: MinWisePermutations.from_ids(s, num_permutations=16)
        ma, mb = make(a), make(b)
        inter = ma.intersect(mb)
        assert inter.minima == tuple(
            max(x, y) for x, y in zip(ma.minima, mb.minima)
        )

    @given(nonempty_id_sets, st.integers(min_value=1, max_value=64))
    @settings(max_examples=50)
    def test_prefix_stability_across_lengths(self, ids, n):
        """Any two lengths agree on their common prefix (Section 5.3)."""
        short = MinWisePermutations.from_ids(ids, num_permutations=n)
        long = MinWisePermutations.from_ids(ids, num_permutations=64)
        assert long.minima[: short.num_permutations] == short.minima[:64]


class TestHashSketchProperties:
    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_union_is_sketch_of_union(self, a, b):
        make = lambda s: HashSketch.from_ids(s, num_bitmaps=8, bitmap_length=32)
        assert make(a).union(make(b)) == make(a | b)

    @given(id_sets)
    @settings(max_examples=50)
    def test_cardinality_nonnegative(self, ids):
        sketch = HashSketch.from_ids(ids, num_bitmaps=8, bitmap_length=32)
        assert sketch.estimate_cardinality() >= 0.0

    @given(id_sets, id_sets)
    @settings(max_examples=50)
    def test_union_estimate_at_least_each_operand(self, a, b):
        make = lambda s: HashSketch.from_ids(s, num_bitmaps=8, bitmap_length=32)
        union_est = make(a).union(make(b)).estimate_cardinality()
        assert union_est >= make(a).estimate_cardinality() - 1e-9
        assert union_est >= make(b).estimate_cardinality() - 1e-9


class TestSpecProperties:
    @given(
        st.sampled_from(["mips", "bloom", "hash-sketch"]),
        st.integers(min_value=64, max_value=8192),
    )
    def test_budget_respected(self, kind, budget):
        spec = SynopsisSpec.for_budget(kind, budget)
        assert 0 < spec.size_in_bits <= budget

    @given(st.sets(st.integers(min_value=0, max_value=1 << 30), max_size=100))
    @settings(max_examples=30)
    def test_build_empty_iff_no_ids(self, ids):
        spec = SynopsisSpec.parse("mips-8")
        assert spec.build(ids).is_empty == (len(ids) == 0)
