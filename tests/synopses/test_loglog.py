"""Tests for (super-)LogLog counters."""

import pytest

from repro.synopses.base import (
    IncompatibleSynopsesError,
    UnsupportedOperationError,
)
from repro.synopses.factory import SynopsisSpec
from repro.synopses.loglog import REGISTER_BITS, LogLogCounter


def build(ids, m=64, seed=0):
    return LogLogCounter.from_ids(ids, num_buckets=m, seed=seed)


class TestConstruction:
    def test_empty(self):
        counter = build([])
        assert counter.is_empty
        assert counter.estimate_cardinality() == 0.0
        assert counter.estimate_cardinality_super() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LogLogCounter(0)
        with pytest.raises(ValueError):
            LogLogCounter(2, registers=(1,))
        with pytest.raises(ValueError):
            LogLogCounter(1, registers=(99,))

    def test_deterministic(self):
        assert build(range(500)) == build(range(500))
        assert hash(build(range(500))) == hash(build(range(500)))

    def test_multiset_insensitive(self):
        assert build(list(range(100)) * 5) == build(range(100))

    def test_size_is_five_bits_per_bucket(self):
        assert build([], m=64).size_in_bits == 64 * REGISTER_BITS
        assert build([], m=256).size_in_bits == 1280


class TestCardinality:
    @pytest.mark.parametrize("n_items", [50, 1_000, 20_000, 200_000])
    def test_estimate_accuracy(self, n_items):
        """LogLog with 64 buckets: stderr ~ 1.3/sqrt(64) ~ 16%."""
        counter = build(range(n_items), m=256)
        assert counter.estimate_cardinality() == pytest.approx(n_items, rel=0.4)

    def test_small_range_correction(self):
        """With few elements, linear counting keeps the estimate sane."""
        counter = build(range(10), m=256)
        assert counter.estimate_cardinality() == pytest.approx(10, abs=6)

    def test_super_estimate_positive(self):
        counter = build(range(10_000), m=256)
        assert counter.estimate_cardinality_super() > 0.0

    def test_monotone_in_size(self):
        assert (
            build(range(50_000)).estimate_cardinality()
            > build(range(500)).estimate_cardinality()
        )


class TestAggregation:
    def test_union_equals_counter_of_union(self):
        set_a = set(range(0, 8000, 2))
        set_b = set(range(0, 8000, 3))
        assert build(set_a).union(build(set_b)) == build(set_a | set_b)

    def test_union_identity(self):
        a = build(range(100))
        assert a.union(a.empty_like()) == a

    def test_intersect_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            build(range(10)).intersect(build(range(5, 15)))

    def test_resemblance_bounded(self):
        a = build(range(5000), m=256)
        b = build(range(2500, 7500), m=256)
        assert 0.0 <= a.estimate_resemblance(b) <= 1.0


class TestCompatibility:
    def test_bucket_mismatch(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), m=32).union(build(range(5), m=64))

    def test_seed_mismatch(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), seed=1).union(build(range(5), seed=2))


class TestFactoryIntegration:
    def test_parse(self):
        spec = SynopsisSpec.parse("ll-256")
        assert spec.kind == "loglog"
        assert spec.label == "LL 256"
        assert spec.size_in_bits == 256 * REGISTER_BITS

    def test_for_budget(self):
        spec = SynopsisSpec.for_budget("loglog", 2048)
        assert spec.size_in_bits <= 2048
        # 2048 bits buy 409 LogLog buckets vs 32 FM bitmaps.
        assert spec.parameter == 409

    def test_capability_flags(self):
        spec = SynopsisSpec.parse("loglog-64")
        assert not spec.supports_intersection
        assert not spec.supports_heterogeneous_sizes

    def test_novelty_integration(self):
        from repro.core.novelty import estimate_novelty

        spec = SynopsisSpec.parse("ll-256")
        ref = spec.build(range(3000))
        cand = spec.build(range(1500, 4500))
        estimate = estimate_novelty(
            cand, ref, candidate_cardinality=3000, reference_cardinality=3000
        )
        assert estimate == pytest.approx(1500, rel=0.5)
