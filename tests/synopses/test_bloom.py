"""Tests for Bloom filter synopses."""

import math

import pytest

from repro.synopses.base import IncompatibleSynopsesError
from repro.synopses.bloom import BloomFilter, optimal_num_hashes
from repro.synopses.measures import resemblance


def build(ids, m=2048, k=5, seed=0):
    return BloomFilter.from_ids(ids, num_bits=m, num_hashes=k, seed=seed)


class TestConstruction:
    def test_empty(self):
        bf = build([])
        assert bf.is_empty
        assert bf.bit_count == 0
        assert bf.estimate_cardinality() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=0, num_hashes=3)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=64, num_hashes=0)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=4, num_hashes=1, _bits=1 << 10)

    def test_add_returns_new_filter(self):
        bf = build([])
        grown = bf.add(7)
        assert bf.is_empty
        assert not grown.is_empty
        assert 7 in grown

    def test_size_in_bits_is_m(self):
        assert build([], m=512).size_in_bits == 512

    def test_deterministic(self):
        assert build(range(100)) == build(range(100))
        assert hash(build(range(100))) == hash(build(range(100)))


class TestMembership:
    def test_no_false_negatives(self):
        ids = list(range(0, 4000, 7))
        bf = build(ids, m=8192)
        assert all(i in bf for i in ids)

    def test_false_positive_rate_matches_theory(self):
        ids = list(range(500))
        bf = build(ids, m=4096, k=5)
        probes = [i for i in range(10_000, 30_000)]
        observed = sum(1 for i in probes if i in bf) / len(probes)
        predicted = bf.false_positive_rate()
        assert observed == pytest.approx(predicted, abs=0.02)


class TestCardinality:
    @pytest.mark.parametrize("n", [10, 100, 400])
    def test_estimate_within_ten_percent_when_not_overloaded(self, n):
        bf = build(range(n), m=8192, k=5)
        assert bf.estimate_cardinality() == pytest.approx(n, rel=0.10)

    def test_overloaded_filter_underestimates(self):
        # 50k elements in 2048 bits: the filter saturates and the
        # estimate collapses — the paper's Figure 2 "BF overload" effect.
        bf = build(range(50_000), m=2048, k=5)
        assert bf.fill_fraction == 1.0
        assert bf.estimate_cardinality() < 10_000

    def test_saturated_estimate_is_finite(self):
        bf = build(range(100_000), m=64, k=3)
        assert math.isfinite(bf.estimate_cardinality())


class TestAggregation:
    def test_union_is_bitwise_or(self):
        a, b = build(range(50)), build(range(25, 75))
        union = a.union(b)
        assert union == build(range(75))

    def test_union_with_empty_is_identity(self):
        a = build(range(50))
        assert a.union(a.empty_like()) == a

    def test_intersect_superset_of_true_intersection_filter(self):
        a, b = build(range(100)), build(range(50, 150))
        inter = a.intersect(b)
        true_filter = build(range(50, 100))
        # Every bit of the true intersection filter is set in the AND.
        assert true_filter._bits & ~inter._bits == 0

    def test_difference_removes_shared_bits(self):
        a, b = build(range(100)), build(range(100))
        assert a.difference(b).is_empty

    def test_difference_of_disjoint_keeps_most_bits(self):
        a, b = build(range(100)), build(range(10_000, 10_100))
        diff = a.difference(b)
        # A few collisions may clear bits, but most survive.
        assert diff.bit_count > 0.7 * a.bit_count

    def test_difference_cardinality_tracks_novelty(self):
        ref = build(range(300), m=8192)
        cand = build(range(200, 500), m=8192)
        estimate = cand.difference(ref).estimate_cardinality()
        assert estimate == pytest.approx(200, rel=0.25)


class TestResemblance:
    def test_identical_sets(self):
        a = build(range(500), m=8192)
        assert a.estimate_resemblance(a) == pytest.approx(1.0, abs=0.05)

    def test_disjoint_sets(self):
        a = build(range(500), m=8192)
        b = build(range(10_000, 10_500), m=8192)
        assert a.estimate_resemblance(b) == pytest.approx(0.0, abs=0.08)

    def test_partial_overlap(self):
        set_a = set(range(600))
        set_b = set(range(300, 900))
        a, b = build(set_a, m=16384), build(set_b, m=16384)
        assert a.estimate_resemblance(b) == pytest.approx(
            resemblance(set_a, set_b), abs=0.08
        )


class TestCompatibility:
    def test_size_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError, match="num_bits"):
            build(range(5), m=1024).union(build(range(5), m=2048))

    def test_seed_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), seed=1).union(build(range(5), seed=2))

    def test_hash_count_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), k=3).intersect(build(range(5), k=5))

    def test_cross_type_rejected(self):
        from repro.synopses.mips import MinWisePermutations

        mips = MinWisePermutations.from_ids(range(5))
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5)).union(mips)


class TestCompressedSize:
    def test_sparse_filter_compresses_well(self):
        """Mitzenmacher [26]: low fill -> far below m bits."""
        bf = build(range(50), m=8192)
        assert bf.compressed_size_in_bits < 0.3 * bf.size_in_bits

    def test_half_full_filter_incompressible(self):
        # Load the filter to ~50% fill (k=5, n ~ m ln2 / 5).
        bf = build(range(1135), m=8192, k=5)
        assert 0.4 < bf.fill_fraction < 0.6
        assert bf.compressed_size_in_bits > 0.95 * bf.size_in_bits

    def test_empty_and_saturated_are_free(self):
        assert build([], m=256).compressed_size_in_bits == 0.0
        saturated = build(range(50_000), m=256, k=5)
        assert saturated.fill_fraction == 1.0
        assert saturated.compressed_size_in_bits == 0.0

    def test_never_exceeds_m(self):
        for n in (10, 100, 1000):
            bf = build(range(n), m=2048)
            assert bf.compressed_size_in_bits <= bf.size_in_bits + 1e-9


class TestOptimalNumHashes:
    def test_classic_ratio(self):
        # m/n = 8 -> k = 8 ln2 ~ 5.5 -> rounds to 6 (or 5).
        assert optimal_num_hashes(8192, 1024) in (5, 6)

    def test_overloaded_returns_one(self):
        assert optimal_num_hashes(64, 10_000) == 1

    def test_zero_items(self):
        assert optimal_num_hashes(64, 0) == 1

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0, 10)
