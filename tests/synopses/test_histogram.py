"""Tests for score-histogram synopses (Section 7.1 data structure)."""

import pytest

from repro.synopses.base import IncompatibleSynopsesError
from repro.synopses.factory import SynopsisSpec
from repro.synopses.histogram import ScoreHistogramSynopsis, cell_index

SPEC = SynopsisSpec.parse("mips-16")


def scored(ids_scores):
    return list(ids_scores)


class TestCellIndex:
    @pytest.mark.parametrize(
        "score,cells,expected",
        [
            (0.0, 4, 0),
            (0.24, 4, 0),
            (0.25, 4, 1),
            (0.5, 4, 2),
            (0.99, 4, 3),
            (1.0, 4, 3),
            (0.5, 1, 0),
        ],
    )
    def test_mapping(self, score, cells, expected):
        assert cell_index(score, cells) == expected

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cell_index(1.5, 4)
        with pytest.raises(ValueError):
            cell_index(-0.1, 4)

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            cell_index(0.5, 0)


class TestConstruction:
    def test_from_scored_ids(self):
        hist = ScoreHistogramSynopsis.from_scored_ids(
            [(1, 0.9), (2, 0.8), (3, 0.2), (4, 0.4)], spec=SPEC, num_cells=4
        )
        assert hist.num_cells == 4
        assert hist.cell_cardinalities == (1.0, 1.0, 0.0, 2.0)
        assert hist.total_cardinality == 4.0

    def test_empty(self):
        hist = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=3)
        assert hist.total_cardinality == 0.0
        assert all(cell.is_empty for cell in hist.cells)

    def test_rejects_mismatched_cardinalities(self):
        with pytest.raises(ValueError):
            ScoreHistogramSynopsis(
                cells=(SPEC.empty(),), cell_cardinalities=(0.0, 1.0), spec=SPEC
            )

    def test_rejects_no_cells(self):
        with pytest.raises(ValueError):
            ScoreHistogramSynopsis(cells=(), cell_cardinalities=(), spec=SPEC)

    def test_rejects_negative_cardinality(self):
        with pytest.raises(ValueError):
            ScoreHistogramSynopsis(
                cells=(SPEC.empty(),), cell_cardinalities=(-1.0,), spec=SPEC
            )

    def test_size_in_bits_sums_cells(self):
        hist = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=4)
        assert hist.size_in_bits == 4 * SPEC.size_in_bits


class TestUnion:
    def test_cellwise_union(self):
        a = ScoreHistogramSynopsis.from_scored_ids(
            [(1, 0.9), (2, 0.1)], spec=SPEC, num_cells=2
        )
        b = ScoreHistogramSynopsis.from_scored_ids(
            [(3, 0.9), (4, 0.1)], spec=SPEC, num_cells=2
        )
        union = a.union(b)
        expected_top = SPEC.build([1, 3])
        assert union.cells[1] == expected_top
        assert union.cell_cardinalities == (2.0, 2.0)

    def test_union_with_explicit_cardinalities(self):
        a = ScoreHistogramSynopsis.from_scored_ids(
            [(1, 0.9)], spec=SPEC, num_cells=2
        )
        b = ScoreHistogramSynopsis.from_scored_ids(
            [(1, 0.9)], spec=SPEC, num_cells=2
        )
        union = a.union(b, merged_cardinalities=[0.0, 1.0])
        assert union.cell_cardinalities == (0.0, 1.0)

    def test_union_rejects_wrong_cardinality_count(self):
        a = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        with pytest.raises(ValueError):
            a.union(a, merged_cardinalities=[1.0])

    def test_union_rejects_cell_count_mismatch(self):
        a = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        b = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=3)
        with pytest.raises(IncompatibleSynopsesError):
            a.union(b)

    def test_union_rejects_spec_mismatch(self):
        other_spec = SynopsisSpec.parse("mips-8")
        a = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        b = ScoreHistogramSynopsis.empty(spec=other_spec, num_cells=2)
        with pytest.raises(IncompatibleSynopsesError):
            a.union(b)


class TestWeights:
    def test_cell_midpoints(self):
        hist = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=4)
        assert hist.cell_midpoint_score(0) == pytest.approx(0.125)
        assert hist.cell_midpoint_score(3) == pytest.approx(0.875)

    def test_midpoint_out_of_range(self):
        hist = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=4)
        with pytest.raises(IndexError):
            hist.cell_midpoint_score(4)
