"""Batch-kernel vs scalar equality for the routing fast path.

Every packed/vectorized operation added for :mod:`repro.core.fastpath`
must reproduce the scalar synopsis code *bit for bit* — the fast path's
plan-equivalence guarantee rests on these identities.
"""

import math
import random

import numpy as np
import pytest

from repro.synopses.bloom import (
    BloomFilter,
    batch_difference_popcounts,
    cardinality_from_popcount,
    pack_bit_row,
    pack_bit_rows,
    popcount_cardinality_table,
)
from repro.synopses.hashsketch import (
    HashSketch,
    cardinality_from_rho_sum,
    first_zero_positions,
    pack_bitmap_rows,
    rho_sum_cardinality_table,
)
from repro.synopses.loglog import (
    LogLogCounter,
    cardinality_from_register_stats,
    pack_register_rows,
    register_cardinality_tables,
)
from repro.synopses.mips import (
    MIPS_MODULUS,
    MinWisePermutations,
    batch_match_counts,
    pack_minima_rows,
)


def random_sets(seed, count=12, universe=5000):
    rng = random.Random(seed)
    sets = []
    for _ in range(count):
        size = rng.randrange(0, 400)
        sets.append({rng.randrange(0, universe) for _ in range(size)})
    return sets


class TestBloomKernels:
    M, K = 512, 3

    def filters(self, seed):
        return [BloomFilter.from_ids(s, num_bits=self.M, num_hashes=self.K)
                for s in random_sets(seed)]

    def test_pack_roundtrip(self):
        filters = self.filters(0)
        rows = pack_bit_rows([f.raw_bits for f in filters], self.M)
        assert rows.shape == (len(filters), (self.M + 63) // 64)
        for row, synopsis in zip(rows, filters):
            rebuilt = 0
            for word_index, word in enumerate(row.tolist()):
                rebuilt |= word << (64 * word_index)
            assert rebuilt == synopsis.raw_bits

    def test_batch_difference_matches_scalar(self):
        filters = self.filters(1)
        reference = filters[0]
        for other in filters[1:]:
            reference = reference.union(other)
        rows = pack_bit_rows([f.raw_bits for f in self.filters(2)], self.M)
        reference_row = pack_bit_row(reference.raw_bits, self.M)
        popcounts = batch_difference_popcounts(rows, reference_row)
        for synopsis, popcount in zip(self.filters(2), popcounts.tolist()):
            difference = synopsis.difference(reference)
            assert difference.bit_count == popcount

    def test_popcount_table_matches_estimator(self):
        table = popcount_cardinality_table(self.M, self.K)
        assert len(table) == self.M + 1
        for synopsis in self.filters(3):
            t = synopsis.bit_count
            assert table[t] == synopsis.estimate_cardinality()

    def test_cardinality_from_popcount_saturation(self):
        # A full filter is clamped to t = m - 1 rather than log(0).
        full = cardinality_from_popcount(self.M, self.M, self.K)
        assert math.isfinite(full)
        assert cardinality_from_popcount(0, self.M, self.K) == 0.0

    def test_bit_count_cached_value_is_correct(self):
        synopsis = BloomFilter.from_ids(range(100), num_bits=self.M)
        assert synopsis.bit_count == bin(synopsis.raw_bits).count("1")
        # Second access hits the cache; value must not drift.
        assert synopsis.bit_count == bin(synopsis.raw_bits).count("1")


class TestMipsKernels:
    N = 24

    def synopses(self, seed):
        return [MinWisePermutations.from_ids(s, num_permutations=self.N)
                for s in random_sets(seed)]

    def test_pack_rows_sentinel_for_none(self):
        synopses = self.synopses(0)
        rows = pack_minima_rows([synopses[0], None, synopses[1]], self.N)
        assert (rows[1] == MIPS_MODULUS).all()

    def test_batch_match_counts_match_resemblance(self):
        synopses = self.synopses(1)
        reference = synopses[0]
        for other in synopses[1:3]:
            reference = reference.union(other)
        rows = pack_minima_rows(synopses, self.N)
        reference_row = pack_minima_rows([reference], self.N)[0]
        matches = batch_match_counts(rows, reference_row)
        for synopsis, count in zip(synopses, matches.tolist()):
            if reference.is_empty:
                continue
            assert reference.estimate_resemblance(synopsis) == count / self.N

    def test_cardinality_cached(self):
        synopsis = MinWisePermutations.from_ids(range(50), num_permutations=self.N)
        assert synopsis.estimate_cardinality() == synopsis.estimate_cardinality()


class TestHashSketchKernels:
    M, L = 8, 24

    def synopses(self, seed):
        return [HashSketch.from_ids(s, num_bitmaps=self.M, bitmap_length=self.L)
                for s in random_sets(seed)]

    def test_first_zero_positions_match_scalar(self):
        synopses = self.synopses(0)
        rows = pack_bitmap_rows(synopses, self.M)
        positions = first_zero_positions(rows, self.L)
        for synopsis, row in zip(synopses, positions.tolist()):
            for bucket, position in enumerate(row):
                bitmap = int(rows[synopses.index(synopsis)][bucket])
                expected = 0
                while expected < self.L and (bitmap >> expected) & 1:
                    expected += 1
                assert position == expected

    def test_rho_sum_table_matches_estimator(self):
        table = rho_sum_cardinality_table(self.M, self.L)
        assert len(table) == self.M * self.L + 1
        for synopsis in self.synopses(1):
            rows = pack_bitmap_rows([synopsis], self.M)
            rho_sum = int(first_zero_positions(rows, self.L).sum())
            assert table[rho_sum] == synopsis.estimate_cardinality()

    def test_cardinality_from_rho_sum_scalar(self):
        for rho_sum in (0, 1, 7, self.M * self.L):
            value = cardinality_from_rho_sum(rho_sum, self.M)
            assert value > 0 or rho_sum == 0


class TestLogLogKernels:
    M = 32

    def synopses(self, seed):
        return [LogLogCounter.from_ids(s, num_buckets=self.M)
                for s in random_sets(seed)]

    def test_register_tables_match_estimator(self):
        linear, extrapolation = register_cardinality_tables(self.M)
        for synopsis in self.synopses(0):
            rows = pack_register_rows([synopsis], self.M)
            empty = int((rows[0] == 0).sum())
            register_sum = int(rows[0].sum(dtype=np.int64))
            expected = synopsis.estimate_cardinality()
            if empty > self.M * 0.3:
                assert linear[empty] == expected
            else:
                assert extrapolation[register_sum] == expected

    def test_linear_table_zero_empty_is_unreachable_sentinel(self):
        linear, _ = register_cardinality_tables(self.M)
        # empty == 0 never takes the linear branch (0 > 0.3 m is false);
        # the slot only pads the table for direct integer indexing.
        assert math.isinf(linear[0])

    def test_cardinality_from_register_stats_branches(self):
        dense = cardinality_from_register_stats(0, 5 * self.M, self.M)
        sparse = cardinality_from_register_stats(self.M - 1, 3, self.M)
        assert dense > sparse

    def test_pack_register_rows_none_is_empty(self):
        synopsis = LogLogCounter.from_ids(range(100), num_buckets=self.M)
        rows = pack_register_rows([None, synopsis], self.M)
        assert (rows[0] == 0).all()
        assert rows.dtype == np.uint8
