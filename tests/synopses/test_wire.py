"""Tests for the synopsis wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synopses.factory import SynopsisSpec
from repro.synopses.wire import WireFormatError, dumps, loads

ALL_SPECS = [
    SynopsisSpec.parse("mips-32"),
    SynopsisSpec.parse("bf-1024"),
    SynopsisSpec.parse("hs-16"),
    SynopsisSpec.parse("ll-64"),
]


class TestRoundtrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_nonempty(self, spec):
        synopsis = spec.build(range(500))
        assert loads(dumps(synopsis)) == synopsis

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_empty(self, spec):
        synopsis = spec.empty()
        assert loads(dumps(synopsis)) == synopsis

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_negative_seed(self, spec):
        import dataclasses

        seeded = dataclasses.replace(spec, seed=-12345)
        synopsis = seeded.build(range(100))
        assert loads(dumps(synopsis)) == synopsis

    @given(st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=200))
    @settings(max_examples=25)
    def test_roundtrip_property(self, ids):
        for spec in ALL_SPECS:
            synopsis = spec.build(ids)
            assert loads(dumps(synopsis)) == synopsis

    def test_estimates_survive_roundtrip(self):
        spec = SynopsisSpec.parse("mips-64")
        a = spec.build(range(1000))
        b = spec.build(range(500, 1500))
        assert loads(dumps(a)).estimate_resemblance(
            loads(dumps(b))
        ) == a.estimate_resemblance(b)


class TestWireSize:
    def test_payload_tracks_size_in_bits(self):
        for spec in ALL_SPECS:
            synopsis = spec.build(range(500))
            wire_bits = len(dumps(synopsis)) * 8
            # Header + byte rounding only; never more than ~70% overhead
            # (LogLog stores 5-bit registers as whole bytes).
            assert wire_bits < 1.7 * synopsis.size_in_bits + 160

    def test_mips_minima_are_four_bytes_each(self):
        spec = SynopsisSpec.parse("mips-16")
        data = dumps(spec.build(range(10)))
        assert len(data) >= 16 * 4


class TestMalformedInput:
    def test_empty_payload(self):
        with pytest.raises(WireFormatError, match="empty"):
            loads(b"")

    def test_unknown_kind(self):
        with pytest.raises(WireFormatError, match="unknown"):
            loads(b"\xff\x01\x02")

    def test_truncated_header(self):
        with pytest.raises(WireFormatError):
            loads(b"\x01\x80")  # unterminated varint

    def test_truncated_payload(self):
        spec = SynopsisSpec.parse("bf-1024")
        data = dumps(spec.build(range(100)))
        with pytest.raises(WireFormatError, match="truncated"):
            loads(data[:-5])

    def test_mips_out_of_range_minimum(self):
        spec = SynopsisSpec.parse("mips-4")
        data = bytearray(dumps(spec.build(range(10))))
        data[-1] = 0xFF  # push top minimum past the modulus
        with pytest.raises(WireFormatError, match="out of range"):
            loads(bytes(data))

    def test_unsupported_type_rejected_on_dumps(self):
        with pytest.raises(WireFormatError, match="no wire format"):
            dumps(object())  # type: ignore[arg-type]


class TestHistogramWire:
    def test_roundtrip(self):
        from repro.synopses.histogram import ScoreHistogramSynopsis

        spec = SynopsisSpec.parse("mips-8")
        hist = ScoreHistogramSynopsis.from_scored_ids(
            [(1, 0.95), (2, 0.1), (3, 0.5), (4, 0.52)], spec=spec, num_cells=4
        )
        restored = loads(dumps(hist))
        assert restored.cells == hist.cells
        assert restored.cell_cardinalities == hist.cell_cardinalities
        assert restored.spec == hist.spec

    def test_empty_histogram_roundtrip(self):
        from repro.synopses.histogram import ScoreHistogramSynopsis

        spec = SynopsisSpec.parse("bf-256")
        hist = ScoreHistogramSynopsis.empty(spec=spec, num_cells=3)
        restored = loads(dumps(hist))
        assert restored.spec == hist.spec
        assert all(cell.is_empty for cell in restored.cells)

    def test_truncated_rejected(self):
        from repro.synopses.histogram import ScoreHistogramSynopsis

        spec = SynopsisSpec.parse("mips-8")
        hist = ScoreHistogramSynopsis.empty(spec=spec, num_cells=2)
        data = dumps(hist)
        with pytest.raises(WireFormatError):
            loads(data[:-3])

    def test_estimated_cardinality_preserved(self):
        from repro.synopses.histogram import ScoreHistogramSynopsis

        spec = SynopsisSpec.parse("mips-16")
        hist = ScoreHistogramSynopsis.from_scored_ids(
            [(i, 0.8) for i in range(100)], spec=spec, num_cells=2
        )
        restored = loads(dumps(hist))
        assert restored.total_cardinality == hist.total_cardinality


class TestSpecOf:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.label)
    def test_roundtrip_via_instance(self, spec):
        synopsis = spec.build(range(50))
        recovered = SynopsisSpec.of(synopsis)
        assert recovered.kind == spec.kind
        assert recovered.parameter == spec.parameter
        assert recovered.seed == spec.seed

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="cannot derive"):
            SynopsisSpec.of(object())  # type: ignore[arg-type]


class TestFuzzedInput:
    """loads() must never crash on garbage — only raise WireFormatError
    (or ValueError from constructor validation)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, data):
        try:
            loads(data)
        except (WireFormatError, ValueError):
            pass

    @given(
        st.binary(max_size=50),
        st.sampled_from([b"\x01", b"\x02", b"\x03", b"\x04", b"\x05"]),
    )
    @settings(max_examples=200)
    def test_valid_kind_bytes_with_garbage_payload(self, tail, kind):
        try:
            loads(kind + tail)
        except (WireFormatError, ValueError):
            pass

    @given(st.integers(min_value=0, max_value=255), st.binary(max_size=30))
    @settings(max_examples=100)
    def test_truncations_of_valid_payloads(self, cut, tail):
        spec = SynopsisSpec.parse("mips-4")
        data = dumps(spec.build(range(5)))
        mangled = data[: cut % len(data)] + tail
        try:
            loads(mangled)
        except (WireFormatError, ValueError):
            pass
