"""The packed column store: round-trips, invariants, and bit-identical
routing plans against the object-backed paths.

The columnar representation is only admissible because it is *exact*:
``materialize(pack(s)) == s`` for every family, and a routing plan
computed from the stored matrices equals — float for float — the plan
the per-peer object paths produce.  These tests pin both properties.
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import PerPeerAggregation, PerTermAggregation
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.bloom import BloomFilter
from repro.synopses.columnstore import (
    BloomColumn,
    HashSketchColumn,
    LogLogColumn,
    MipsColumn,
    PeerIdTable,
    TermColumns,
    column_for,
)
from repro.synopses.factory import SynopsisSpec
from repro.synopses.hashsketch import HashSketch
from repro.synopses.loglog import LogLogCounter
from repro.synopses.mips import MinWisePermutations

id_sets = st.sets(st.integers(min_value=0, max_value=1 << 40), max_size=200)

FAMILIES = {
    "bloom": lambda ids: BloomFilter.from_ids(ids, num_bits=512, num_hashes=4),
    "mips": lambda ids: MinWisePermutations.from_ids(ids, num_permutations=32),
    "hash-sketch": lambda ids: HashSketch.from_ids(
        ids, num_bitmaps=16, bitmap_length=32
    ),
    "loglog": lambda ids: LogLogCounter.from_ids(ids, num_buckets=32),
}


class TestPeerIdTable:
    def test_intern_is_stable_and_lookup_inverts(self):
        table = PeerIdTable()
        a = table.intern("peer-a")
        b = table.intern("peer-b")
        assert a != b
        assert table.intern("peer-a") == a
        assert table.lookup("peer-b") == b
        assert table.lookup("peer-zzz") is None
        assert table.name(a) == "peer-a"
        assert len(table) == 2

    def test_names_array_tracks_growth(self):
        table = PeerIdTable()
        table.intern("x")
        first = table.names_array()
        assert first.tolist() == ["x"]
        table.intern("y")
        assert table.names_array().tolist() == ["x", "y"]

    def test_pickle_round_trip(self):
        table = PeerIdTable()
        for name in ("c", "a", "b"):
            table.intern(name)
        clone = pickle.loads(pickle.dumps(table))
        assert len(clone) == 3
        assert clone.lookup("a") == table.lookup("a")
        assert clone.names_array().tolist() == table.names_array().tolist()


class TestPackRoundTrip:
    """materialize(pack(s)) == s, bit for bit, for every family."""

    @given(id_sets)
    @settings(max_examples=40)
    def test_bloom(self, ids):
        synopsis = FAMILIES["bloom"](ids)
        column = column_for(synopsis)
        assert isinstance(column, BloomColumn)
        column.set_row(0, synopsis)
        assert column.materialize(0) == synopsis

    @given(id_sets)
    @settings(max_examples=40)
    def test_mips(self, ids):
        synopsis = FAMILIES["mips"](ids)
        column = column_for(synopsis)
        assert isinstance(column, MipsColumn)
        column.set_row(0, synopsis)
        assert column.materialize(0) == synopsis

    @given(id_sets)
    @settings(max_examples=40)
    def test_hash_sketch(self, ids):
        synopsis = FAMILIES["hash-sketch"](ids)
        column = column_for(synopsis)
        assert isinstance(column, HashSketchColumn)
        column.set_row(0, synopsis)
        assert column.materialize(0) == synopsis

    @given(id_sets)
    @settings(max_examples=40)
    def test_loglog(self, ids):
        synopsis = FAMILIES["loglog"](ids)
        column = column_for(synopsis)
        assert isinstance(column, LogLogColumn)
        column.set_row(0, synopsis)
        assert column.materialize(0) == synopsis

    def test_wide_sketch_bitmaps_are_not_packable(self):
        class Wide(HashSketch):
            pass

        base = HashSketch.from_ids([1, 2], num_bitmaps=4, bitmap_length=64)
        assert column_for(base) is not None
        subclassed = Wide(4, 64, 0, list(base.bitmaps))
        assert column_for(subclassed) is None

    def test_neutral_rows_materialize_as_empty(self):
        empty = FAMILIES["mips"](set())
        column = column_for(FAMILIES["mips"]({1, 2, 3}))
        assert column is not None
        assert column.materialize(0) == empty  # untouched row

    def test_gather_masks_to_neutral(self):
        synopsis = FAMILIES["bloom"]({1, 2, 3})
        column = column_for(synopsis)
        assert column is not None
        column.set_row(0, synopsis)
        rows = np.array([0, -1, 0], dtype=np.int64)
        mask = np.array([True, True, False])
        gathered = column.gather(rows, mask)
        assert gathered[0].tolist() == column._matrix[0].tolist()
        assert not gathered[1].any()  # absent row -> neutral
        assert not gathered[2].any()  # masked row -> neutral


class TestTermColumns:
    def make(self):
        return TermColumns("alpha", PeerIdTable())

    def post_args(self, peer, cdf, synopsis=None):
        return (peer, cdf, float(cdf), cdf / 2.0, 1000, synopsis, None)

    def test_upsert_overwrites_in_place(self):
        columns = self.make()
        row = columns.upsert(*self.post_args("p1", 10))
        assert columns.upsert(*self.post_args("p1", 25)) == row
        assert len(columns) == 1
        assert columns.cdf_values().tolist() == [25]

    def test_remove_swaps_last_and_clears_vacated(self):
        columns = self.make()
        synopsis = FAMILIES["bloom"]({1, 2, 3})
        for peer in ("p1", "p2", "p3"):
            columns.upsert(*self.post_args(peer, 5, synopsis))
        assert columns.remove("p1")
        assert len(columns) == 2
        survivors = {
            columns.table.name(i) for i in columns.interned_ids().tolist()
        }
        assert survivors == {"p2", "p3"}
        # The vacated physical slot holds neutral payloads.
        column = columns.synopsis_column
        assert column is not None
        assert not column._matrix[2].any()
        assert not columns.remove("p1")
        assert not columns.remove("ghost")

    def test_rows_stay_dense_after_removal(self):
        columns = self.make()
        for index in range(10):
            columns.upsert(*self.post_args(f"p{index}", index + 1))
        for peer in ("p0", "p5", "p9"):
            columns.remove(peer)
        assert len(columns) == 7
        interned = columns.interned_ids()
        for position, value in enumerate(interned.tolist()):
            assert columns.row_for(value) == position

    def test_quality_order_matches_sorted_and_is_cached(self):
        columns = self.make()
        rng = random.Random(11)
        posts = []
        for index in range(30):
            peer = f"p{index:02d}"
            cdf = rng.randrange(1, 50)
            max_score = rng.choice([0.5, 1.0, 1.5])  # force score ties
            columns.upsert(peer, cdf, max_score, 0.1, 100, None, None)
            posts.append((max_score, cdf, peer))
        order = columns.quality_order()
        assert columns.quality_order() is order  # cached
        expected = sorted(posts, reverse=True)
        names = columns.table.names_array()[columns.interned_ids()]
        got = [
            (
                float(columns.max_scores()[row]),
                int(columns.cdf_values()[row]),
                str(names[row]),
            )
            for row in order.tolist()
        ]
        assert got == expected
        columns.upsert(*self.post_args("zz", 99))
        assert columns.quality_order() is not order  # invalidated

    def test_peer_rows_inverse_tracks_table_growth(self):
        table = PeerIdTable()
        columns = TermColumns("alpha", table)
        columns.upsert("p1", 1, 1.0, 0.5, 10, None, None)
        assert columns.peer_rows(np.array([0], dtype=np.int64)).tolist() == [0]
        # Another term interns new peers into the shared table; the
        # cached inverse must grow with it.
        other = table.intern("p2")
        assert columns.peer_rows(
            np.array([other], dtype=np.int64)
        ).tolist() == [-1]

    def test_foreign_synopsis_breaks_purity(self):
        columns = self.make()
        columns.upsert(*self.post_args("p1", 5, FAMILIES["bloom"]({1})))
        assert columns.is_pure
        other_params = BloomFilter.from_ids({2}, num_bits=256, num_hashes=2)
        columns.upsert(*self.post_args("p2", 5, other_params))
        assert not columns.is_pure
        assert columns.synopsis_at(1) == other_params

    def test_pickle_round_trip_preserves_content(self):
        columns = self.make()
        synopsis = FAMILIES["mips"]({1, 2, 3})
        columns.upsert(*self.post_args("p1", 7, synopsis))
        clone = pickle.loads(pickle.dumps(columns))
        assert len(clone) == 1
        assert clone.synopsis_at(0) == synopsis
        assert clone.post_fields(0)[:2] == ("p1", 7)


def seeded_lists(spec, *, peers=50, terms=("alpha", "beta", "gamma"), seed=42):
    """One column-backed and one equal object-era directory snapshot."""
    rng = random.Random(seed)
    table = PeerIdTable()
    shared = {t: PeerList(term=t, peer_table=table) for t in terms}
    posts_by_term = {t: [] for t in terms}
    for index in range(peers):
        peer = f"peer-{index:03d}"
        for term in terms:
            if rng.random() < 0.75:
                docs = frozenset(
                    rng.randrange(20000)
                    for _ in range(rng.randrange(1, 100))
                )
                posts_by_term[term].append(
                    Post(
                        peer_id=peer,
                        term=term,
                        cdf=len(docs),
                        max_score=rng.random(),
                        avg_score=rng.random() / 2,
                        term_space_size=rng.randrange(100, 9000),
                        synopsis=spec.build(docs),
                    )
                )
    for term in terms:
        for post in posts_by_term[term]:
            shared[term].add(post, retain=False)
    # Same content on per-list private tables: the columnar tier cannot
    # attach (tables differ), so routing exercises the object paths.
    private = {t: PeerList(term=t) for t in terms}
    for term in terms:
        for post in posts_by_term[term]:
            private[term].add(post)
    return shared, private


def make_context(lists, spec, *, conjunctive=False, peers=50):
    terms = tuple(lists)
    initiator = LocalView(
        peer_id="peer-000",
        result_doc_ids=frozenset(range(60)),
        doc_ids_by_term={t: frozenset(range(40)) for t in terms},
    )
    return RoutingContext(
        query=Query(query_id=1, terms=terms),
        peer_lists=lists,
        num_peers=peers,
        spec=spec,
        initiator=initiator,
        conjunctive=conjunctive,
    )


SPECS = [
    SynopsisSpec(kind="bloom", parameter=1024, seed=7),
    SynopsisSpec(kind="mips", parameter=64, seed=7),
    SynopsisSpec(kind="hash-sketch", parameter=32, seed=7),
    SynopsisSpec(kind="loglog", parameter=64, seed=7),
]


def plan_rows(plan):
    return [(s.peer_id, s.quality, s.novelty) for s in plan]


class TestBitIdenticalRouting:
    """Column-backed plans equal object-fastpath and naive plans exactly."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
    @pytest.mark.parametrize("conjunctive", [False, True], ids=["disj", "conj"])
    @pytest.mark.parametrize(
        "make_aggregation",
        [PerPeerAggregation, PerTermAggregation],
        ids=["perpeer", "perterm"],
    )
    def test_three_tiers_agree(self, spec, conjunctive, make_aggregation):
        shared, private = seeded_lists(spec)
        columnar_router = IQNRouter(make_aggregation())
        columnar = columnar_router.rank_detailed(
            make_context(shared, spec, conjunctive=conjunctive), 12
        )
        assert columnar_router.last_stats is not None
        assert columnar_router.last_stats.attach == "columns"
        object_router = IQNRouter(make_aggregation())
        object_plan = object_router.rank_detailed(
            make_context(private, spec, conjunctive=conjunctive), 12
        )
        assert object_router.last_stats is not None
        assert object_router.last_stats.attach == "objects"
        naive_router = IQNRouter(make_aggregation(), fast_path=False)
        naive = naive_router.rank_detailed(
            make_context(shared, spec, conjunctive=conjunctive), 12
        )
        assert naive_router.last_stats is not None
        assert naive_router.last_stats.mode == "naive"
        assert plan_rows(columnar) == plan_rows(object_plan) == plan_rows(naive)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
    def test_novelty_only_ranking_agrees(self, spec):
        shared, private = seeded_lists(spec, seed=9)
        columnar = IQNRouter(quality_weighted=False).rank_detailed(
            make_context(shared, spec), 8
        )
        object_plan = IQNRouter(quality_weighted=False).rank_detailed(
            make_context(private, spec), 8
        )
        assert plan_rows(columnar) == plan_rows(object_plan)

    def test_stats_counters_match_object_fast_path(self):
        spec = SPECS[0]
        shared, private = seeded_lists(spec, seed=3)
        columnar_router = IQNRouter()
        columnar_router.rank_detailed(make_context(shared, spec), 10)
        object_router = IQNRouter()
        object_router.rank_detailed(make_context(private, spec), 10)
        columnar_stats = columnar_router.last_stats
        object_stats = object_router.last_stats
        assert columnar_stats is not None and object_stats is not None
        assert columnar_stats.mode == object_stats.mode
        assert columnar_stats.candidates == object_stats.candidates
        assert (
            columnar_stats.novelty_evaluations
            == object_stats.novelty_evaluations
        )
        assert columnar_stats.rounds == object_stats.rounds

    def test_empty_directory_routes_empty_via_columns(self):
        spec = SPECS[0]
        table = PeerIdTable()
        lists = {
            t: PeerList(term=t, peer_table=table) for t in ("alpha", "beta")
        }
        router = IQNRouter()
        assert router.rank_detailed(make_context(lists, spec), 5) == []
        assert router.last_stats is not None
        assert router.last_stats.attach == "columns"
        assert router.last_stats.mode == "empty"
