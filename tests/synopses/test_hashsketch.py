"""Tests for Flajolet–Martin hash sketches (PCSA)."""

import pytest

from repro.synopses.base import (
    IncompatibleSynopsesError,
    UnsupportedOperationError,
)
from repro.synopses.hashsketch import HashSketch, _rho


def build(ids, m=32, length=64, seed=0):
    return HashSketch.from_ids(ids, num_bitmaps=m, bitmap_length=length, seed=seed)


class TestRho:
    def test_zero_maps_to_limit(self):
        assert _rho(0, 63) == 63

    @pytest.mark.parametrize(
        "value,expected", [(1, 0), (2, 1), (4, 2), (6, 1), (8, 3), (12, 2)]
    )
    def test_least_significant_one(self, value, expected):
        assert _rho(value, 63) == expected

    def test_capped_at_limit(self):
        assert _rho(1 << 40, 5) == 5


class TestConstruction:
    def test_empty(self):
        sketch = build([])
        assert sketch.is_empty
        assert sketch.estimate_cardinality() == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashSketch(num_bitmaps=0, bitmap_length=64)
        with pytest.raises(ValueError):
            HashSketch(num_bitmaps=4, bitmap_length=0)
        with pytest.raises(ValueError):
            HashSketch(num_bitmaps=2, bitmap_length=4, bitmaps=(1,))
        with pytest.raises(ValueError):
            HashSketch(num_bitmaps=1, bitmap_length=2, bitmaps=(16,))

    def test_deterministic(self):
        assert build(range(500)) == build(range(500))
        assert hash(build(range(500))) == hash(build(range(500)))

    def test_multiset_insensitive(self):
        once = build(list(range(200)))
        thrice = build(list(range(200)) * 3)
        assert once == thrice

    def test_size_accounting(self):
        assert build([], m=32, length=64).size_in_bits == 2048


class TestCardinality:
    @pytest.mark.parametrize("n_items", [500, 5_000, 50_000])
    def test_estimate_accuracy(self, n_items):
        """PCSA with 32 bitmaps: stderr ~ 0.78/sqrt(32) ~ 14%."""
        sketch = build(range(n_items))
        assert sketch.estimate_cardinality() == pytest.approx(n_items, rel=0.45)

    def test_monotone_in_set_size(self):
        small = build(range(200)).estimate_cardinality()
        large = build(range(50_000)).estimate_cardinality()
        assert large > small


class TestAggregation:
    def test_union_equals_sketch_of_union(self):
        """Bitwise OR is exactly the sketch of the union (Section 5.2)."""
        set_a = set(range(0, 5000, 2))
        set_b = set(range(0, 5000, 3))
        assert build(set_a).union(build(set_b)) == build(set_a | set_b)

    def test_union_with_empty_is_identity(self):
        a = build(range(100))
        assert a.union(a.empty_like()) == a

    def test_intersect_raises(self):
        a, b = build(range(10)), build(range(5, 15))
        with pytest.raises(UnsupportedOperationError, match="intersection"):
            a.intersect(b)


class TestResemblance:
    def test_identical_sets(self):
        a = build(range(5000))
        assert a.estimate_resemblance(a) == pytest.approx(1.0, abs=0.01)

    def test_disjoint_sets(self):
        a = build(range(5000))
        b = build(range(100_000, 105_000))
        assert a.estimate_resemblance(b) < 0.35

    def test_bounded(self):
        a = build(range(3000))
        b = build(range(1500, 4500))
        assert 0.0 <= a.estimate_resemblance(b) <= 1.0


class TestCompatibility:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), m=16).union(build(range(5), m=32))
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), length=32).union(build(range(5), length=64))

    def test_seed_mismatch_rejected(self):
        with pytest.raises(IncompatibleSynopsesError):
            build(range(5), seed=1).union(build(range(5), seed=2))
