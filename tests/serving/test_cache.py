"""Unit tests for the routing-plan and reference-synopsis caches."""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.core.aggregation import PerTermAggregation
from repro.core.stopping import MaxPeers
from repro.datasets.queries import Query
from repro.routing.cori import CoriSelector
from repro.serving.cache import (
    CachedPlan,
    CachingSpec,
    ReferenceSynopsisCache,
    RoutingPlanCache,
    plan_key,
    selector_signature,
)
from repro.synopses.factory import SynopsisSpec


def key_for(terms, *, initiator="p00", selector=None):
    return plan_key(
        Query(0, tuple(terms)),
        selector or IQNRouter(),
        initiator_id=initiator,
        max_peers=3,
        fallback_spares=1,
        conjunctive=False,
    )


def plan_for(*peers, terms=("a", "b"), epoch=0):
    return CachedPlan(
        ranked=tuple(peers),
        bounds={p: 1.0 for p in peers},
        terms=tuple(sorted(terms)),
        epoch=epoch,
    )


class TestPlanKey:
    def test_term_order_is_normalized(self):
        assert key_for(["b", "a"]) == key_for(["a", "b"])

    def test_distinct_selectors_never_alias(self):
        assert key_for(["a"]) != key_for(["a"], selector=CoriSelector())

    def test_aggregation_mode_is_part_of_the_key(self):
        per_peer = selector_signature(IQNRouter())
        per_term = selector_signature(
            IQNRouter(aggregation=PerTermAggregation())
        )
        assert per_peer != per_term

    def test_initiator_is_part_of_the_key(self):
        assert key_for(["a"]) != key_for(["a"], initiator="p01")

    def test_selector_configuration_never_aliases(self):
        """Same class, different ranking-relevant knobs -> distinct keys."""
        assert selector_signature(CoriSelector(alpha=0.3)) != selector_signature(
            CoriSelector(alpha=0.5)
        )
        assert selector_signature(
            IQNRouter(stopping=MaxPeers(3))
        ) != selector_signature(IQNRouter(stopping=MaxPeers(5)))
        assert selector_signature(
            IQNRouter(quality_weighted=False)
        ) != selector_signature(IQNRouter())


class TestRoutingPlanCache:
    def test_miss_then_hit(self):
        cache = RoutingPlanCache()
        key = key_for(["a", "b"])
        assert cache.lookup(key) is None
        cache.store(key, plan_for("p01", "p02"))
        assert cache.lookup(key) == plan_for("p01", "p02")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_drop_peer_repairs_plans_in_place(self):
        cache = RoutingPlanCache()
        key = key_for(["a", "b"])
        cache.store(key, plan_for("p01", "p02", "p03"))
        assert cache.drop_peer("p02") == 1
        repaired = cache.lookup(key)
        assert repaired is not None
        assert repaired.ranked == ("p01", "p03")
        assert "p02" not in repaired.bounds
        assert cache.stats().repaired == 1

    def test_drop_peer_invalidates_emptied_plans(self):
        cache = RoutingPlanCache()
        key = key_for(["a"])
        cache.store(key, plan_for("p01"))
        cache.drop_peer("p01")
        assert cache.lookup(key) is None
        assert len(cache) == 0
        assert cache.stats().invalidated == 1

    def test_drop_peer_leaves_unrelated_plans_alone(self):
        cache = RoutingPlanCache()
        touched, untouched = key_for(["a"]), key_for(["b"])
        cache.store(touched, plan_for("p01", terms=("a",)))
        cache.store(untouched, plan_for("p02", terms=("b",)))
        cache.drop_peer("p01")
        assert cache.lookup(untouched) is not None

    def test_invalidate_term_drops_only_matching_plans(self):
        cache = RoutingPlanCache()
        hit_key = key_for(["a", "b"])
        safe_key = key_for(["c"])
        cache.store(hit_key, plan_for("p01"))
        cache.store(safe_key, plan_for("p02", terms=("c",)))
        assert cache.invalidate_term("b") == 1
        assert cache.lookup(hit_key) is None
        assert cache.lookup(safe_key) is not None
        assert cache.invalidate_term("zzz") == 0

    def test_clear_counts_invalidations(self):
        cache = RoutingPlanCache()
        cache.store(key_for(["a"]), plan_for("p01", terms=("a",)))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidated == 1

    def test_stats_memo_never_goes_stale(self):
        cache = RoutingPlanCache()
        before = cache.stats()
        cache.lookup(key_for(["a"]))
        after = cache.stats()
        assert before.misses == 0
        assert after.misses == 1


class TestReferenceSynopsisCache:
    SPEC = SynopsisSpec.parse("mips-16")

    def test_build_is_memoized_by_content(self):
        cache = ReferenceSynopsisCache(self.SPEC)
        first = cache.build([1, 2, 3])
        second = cache.build([3, 2, 1])  # same set, different order
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_built_values_match_the_plain_spec(self):
        cache = ReferenceSynopsisCache(self.SPEC)
        assert cache.build([5, 7]) == self.SPEC.build([5, 7])

    def test_epoch_bump_invalidates(self):
        cache = ReferenceSynopsisCache(self.SPEC)
        first = cache.build([1])
        assert cache.bump_epoch() == 1
        assert len(cache) == 0
        second = cache.build([1])
        assert second is not first
        assert second == first

    def test_distinct_sets_get_distinct_entries(self):
        cache = ReferenceSynopsisCache(self.SPEC)
        cache.build([1])
        cache.build([2])
        assert len(cache) == 2
        assert cache.stats().misses == 2


class TestCachingSpec:
    SPEC = SynopsisSpec.parse("mips-16")

    def test_build_goes_through_the_cache(self):
        cache = ReferenceSynopsisCache(self.SPEC)
        spec = CachingSpec(cache)
        assert spec.build([1, 2]) is spec.build([2, 1])
        assert cache.stats().hits == 1

    def test_configuration_fields_match_the_wrapped_spec(self):
        spec = CachingSpec(ReferenceSynopsisCache(self.SPEC))
        assert spec.kind == self.SPEC.kind
        assert spec.parameter == self.SPEC.parameter
        assert spec.label == self.SPEC.label
        assert spec.size_in_bits == self.SPEC.size_in_bits

    def test_build_values_equal_the_plain_spec(self):
        spec = CachingSpec(ReferenceSynopsisCache(self.SPEC))
        assert spec.build([9, 11]) == self.SPEC.build([9, 11])

    def test_still_frozen(self):
        spec = CachingSpec(ReferenceSynopsisCache(self.SPEC))
        with pytest.raises(Exception):
            spec.parameter = 99  # type: ignore[misc]
