"""ServingFrontend: cache hits, churn invalidation, one-shot identity."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn import ChurnSchedule, ChurnService, MaintenanceConfig
from repro.churn.membership import MembershipEvent
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query, make_query_log
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.net.cost import MessageKinds
from repro.serving import ServingFrontend, plan_key
from repro.simnet.executor import SimNetExecutor
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")
QUERY = Query(0, ("apple", "banana"))
INITIATOR = "p00"
HORIZON_MS = 6_000.0
MAINTENANCE = MaintenanceConfig.for_repost_interval(
    4_000.0, stabilize_interval_ms=2_000.0
)
KNOBS = dict(max_peers=2, k=10, fallback_spares=2)


def make_engine(num_peers: int = 6) -> MinervaEngine:
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(4 * num_peers)
    }
    collections = [
        Corpus.from_documents(
            docs[i % len(docs)] for i in range(p * 4, p * 4 + 8)
        )
        for p in range(num_peers)
    ]
    engine = MinervaEngine(collections, spec=SPEC, replicas=2)
    engine.publish({"apple", "banana"})
    return engine


def make_frontend(host=None, **overrides) -> ServingFrontend:
    if host is None:
        host = SimNetExecutor(make_engine(), seed=3)
    return ServingFrontend(host, IQNRouter(), **{**KNOBS, **overrides})


def query_key(front: ServingFrontend):
    """QUERY's plan-cache key under this front end's configuration."""
    return plan_key(
        QUERY,
        front.selector,
        initiator_id=INITIATOR,
        max_peers=front.max_peers,
        fallback_spares=front.fallback_spares,
        conjunctive=front.conjunctive,
    )


def plan_peers() -> tuple[str, ...]:
    """The ranked plan (targets + spares) a cold serve of QUERY caches."""
    front = make_frontend()
    front.serve(QUERY, initiator_id=INITIATOR)
    front.run()
    plan = front.plan_cache.lookup(query_key(front))
    assert plan is not None
    return plan.ranked


def make_churn_frontend(events) -> ServingFrontend:
    service = ChurnService(
        make_engine(),
        ChurnSchedule(events, horizon_ms=HORIZON_MS),
        maintenance=MAINTENANCE,
        seed=3,
    )
    return make_frontend(host=service)


class TestServeBasics:
    def test_cold_serve_matches_the_one_shot_path(self):
        engine = make_engine()
        front = make_frontend(host=SimNetExecutor(engine, seed=3))
        future = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        served = future.value
        reference = engine.run_query_networked(
            QUERY, IQNRouter(), initiator_id=INITIATOR, **KNOBS
        )
        assert not served.plan_hit
        assert served.topk == tuple(reference.merged[: KNOBS["k"]])
        assert served.queried == reference.selected
        assert not served.degraded

    def test_repeat_serve_hits_and_answers_identically(self):
        front = make_frontend()
        first = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        assert not first.value.plan_hit
        assert second.value.plan_hit
        assert second.value.topk == first.value.topk
        assert second.value.selected == first.value.selected
        assert front.plan_stats().hits == 1

    def test_hit_pays_no_directory_traffic(self):
        front = make_frontend()
        first = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        cold_kinds = first.value.cost.messages_by_kind
        hot_kinds = second.value.cost.messages_by_kind
        assert cold_kinds.get(MessageKinds.PEERLIST_FETCH, 0) > 0
        assert MessageKinds.PEERLIST_FETCH not in hot_kinds
        assert MessageKinds.DHT_HOP not in hot_kinds
        assert second.value.latency_ms <= first.value.latency_ms

    def test_distinct_initiators_do_not_share_plans(self):
        front = make_frontend()
        front.serve(QUERY, initiator_id="p00")
        front.run()
        front.serve(QUERY, initiator_id="p01")
        front.run()
        assert front.plan_stats().hits == 0
        assert front.plan_stats().size == 2

    def test_serve_log_is_deterministic(self):
        base = [Query(i, ("apple", "banana")) for i in range(4)]
        log = make_query_log(base, num_events=12, zipf_s=1.1, seed=7)
        outcomes = []
        for _ in range(2):
            front = make_frontend()
            outcomes.append(
                front.serve_log(log, interarrival_ms=200.0, seed=5)
            )
        assert outcomes[0] == outcomes[1]
        assert len(outcomes[0]) == 12
        assert any(served.plan_hit for served in outcomes[0])


class TestChurnInvalidation:
    def test_crash_of_a_plan_peer_repairs_the_cached_plan(self):
        ranked = plan_peers()
        victim = ranked[0]
        assert victim != INITIATOR
        front = make_churn_frontend(
            [MembershipEvent(at_ms=3_000.0, peer_id=victim, kind="crash")]
        )
        first = front.serve(QUERY, at_ms=0.0, initiator_id=INITIATOR)
        front.run(until_ms=2_999.0)
        assert first.done and victim in first.value.queried

        front.run(until_ms=3_500.0)  # past the crash, before stabilization
        assert front.plan_stats().repaired == 1
        repaired = front.plan_cache.lookup(query_key(front))
        assert repaired is not None
        assert victim not in repaired.ranked
        assert repaired.ranked == tuple(p for p in ranked if p != victim)

        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        assert second.value.plan_hit
        assert victim not in second.value.queried
        assert not second.value.degraded

    def test_plan_survives_unrelated_churn(self):
        ranked = plan_peers()
        bystanders = sorted(
            set(make_engine().peers) - set(ranked) - {INITIATOR}
        )
        assert bystanders, "testbed too small: every peer is in the plan"
        front = make_churn_frontend(
            [
                MembershipEvent(
                    at_ms=3_000.0, peer_id=bystanders[0], kind="crash"
                )
            ]
        )
        first = front.serve(QUERY, at_ms=0.0, initiator_id=INITIATOR)
        front.run(until_ms=3_500.0)
        assert first.done

        stats = front.plan_stats()
        assert stats.repaired == 0
        assert stats.invalidated == 0
        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        assert second.value.plan_hit
        assert second.value.selected == first.value.selected
        assert second.value.topk == first.value.topk

    def test_recovery_invalidates_plans_over_the_reposted_terms(self):
        ranked = plan_peers()
        victim = ranked[0]
        front = make_churn_frontend(
            [
                MembershipEvent(at_ms=1_000.0, peer_id=victim, kind="crash"),
                MembershipEvent(at_ms=3_000.0, peer_id=victim, kind="recover"),
            ]
        )
        front.serve(QUERY, at_ms=0.0, initiator_id=INITIATOR)
        front.run(until_ms=3_500.0)
        # The recovered peer reposted apple/banana fresh: the cached
        # ranking never considered it, so the plan must go cold.
        assert front.plan_cache.lookup(query_key(front)) is None
        epoch_after = front.synopsis_cache.epoch
        assert epoch_after >= 1


ENGINE = make_engine()
BIT_IDENTITY_QUERIES = [
    Query(0, ("apple", "banana")),
    Query(3, ("banana",)),
    Query(5, ("apple",)),
]


@settings(max_examples=25, deadline=None)
@given(
    query=st.sampled_from(BIT_IDENTITY_QUERIES),
    max_peers=st.integers(min_value=1, max_value=4),
    k=st.sampled_from([1, 3, 10]),
    peer_k=st.sampled_from([None, 20]),
    batch_size=st.sampled_from([None, 2]),
)
def test_cold_cache_serving_is_bit_identical(
    query, max_peers, k, peer_k, batch_size
):
    """Property: over any (query, knobs) the cold serving path answers
    exactly what ``run_query_networked`` answers — same top-k values and
    order, same peers queried."""
    front = ServingFrontend(
        SimNetExecutor(ENGINE, seed=3),
        IQNRouter(),
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
        batch_size=batch_size,
    )
    future = front.serve(query, initiator_id=INITIATOR)
    front.run()
    served = future.value
    reference = ENGINE.run_query_networked(
        query,
        IQNRouter(),
        initiator_id=INITIATOR,
        max_peers=max_peers,
        k=k,
        peer_k=peer_k,
    )
    assert not served.plan_hit
    assert served.topk == tuple(reference.merged[:k])
    assert served.queried == reference.selected
    assert not served.degraded
