"""Serving-layer additions riding with the topology tier: size-capped
LRU caches (eviction + counters) and per-cluster plan invalidation on
super-peer re-election."""

from __future__ import annotations

import pytest

from repro.churn import ChurnSchedule, ChurnService, MaintenanceConfig
from repro.churn.membership import MembershipEvent
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.net.cost import MessageKinds
from repro.serving import ServingFrontend, plan_key
from repro.serving.cache import (
    CachedPlan,
    ReferenceSynopsisCache,
    RoutingPlanCache,
)
from repro.simnet.executor import SimNetExecutor
from repro.synopses.factory import SynopsisSpec
from repro.topology import SuperPeerTopology

SPEC = SynopsisSpec.parse("mips-16")
QUERY = Query(0, ("apple", "banana"))
INITIATOR = "p00"
HORIZON_MS = 6_000.0
MAINTENANCE = MaintenanceConfig.for_repost_interval(
    4_000.0, stabilize_interval_ms=2_000.0
)
KNOBS = dict(max_peers=2, k=10, fallback_spares=2)


def key_for(terms, *, initiator="p00"):
    return plan_key(
        Query(0, tuple(terms)),
        IQNRouter(),
        initiator_id=initiator,
        max_peers=3,
        fallback_spares=1,
        conjunctive=False,
    )


def plan_for(*peers, terms=("a", "b")):
    return CachedPlan(
        ranked=tuple(peers),
        bounds={p: 1.0 for p in peers},
        terms=tuple(sorted(terms)),
        epoch=0,
    )


class TestPlanCacheLRU:
    def test_capacity_evicts_least_recently_used(self):
        cache = RoutingPlanCache(max_plans=2)
        cache.store(key_for(["a"]), plan_for("p01"))
        cache.store(key_for(["b"]), plan_for("p02"))
        cache.store(key_for(["c"]), plan_for("p03"))
        assert cache.lookup(key_for(["a"])) is None
        assert cache.lookup(key_for(["b"])) is not None
        assert cache.lookup(key_for(["c"])) is not None
        stats = cache.stats()
        assert stats.evicted == 1
        assert stats.size == 2

    def test_lookup_refreshes_recency(self):
        cache = RoutingPlanCache(max_plans=2)
        cache.store(key_for(["a"]), plan_for("p01"))
        cache.store(key_for(["b"]), plan_for("p02"))
        assert cache.lookup(key_for(["a"])) is not None
        cache.store(key_for(["c"]), plan_for("p03"))
        assert cache.lookup(key_for(["a"])) is not None
        assert cache.lookup(key_for(["b"])) is None

    def test_restore_of_existing_key_does_not_evict(self):
        cache = RoutingPlanCache(max_plans=2)
        cache.store(key_for(["a"]), plan_for("p01"))
        cache.store(key_for(["b"]), plan_for("p02"))
        cache.store(key_for(["a"]), plan_for("p09"))
        assert cache.stats().evicted == 0
        assert cache.lookup(key_for(["a"])).ranked == ("p09",)

    def test_uncapped_by_default(self):
        cache = RoutingPlanCache()
        for letter in "abcdefghij":
            cache.store(key_for([letter]), plan_for("p01"))
        assert cache.stats().size == 10
        assert cache.stats().evicted == 0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            RoutingPlanCache(max_plans=0)

    def test_invalidate_peers_drops_every_touching_plan(self):
        cache = RoutingPlanCache()
        cache.store(key_for(["a"]), plan_for("p01", "p02"))
        cache.store(key_for(["b"]), plan_for("p02", "p03"))
        cache.store(key_for(["c"]), plan_for("p04"))
        dropped = cache.invalidate_peers(("p02", "p09"))
        assert dropped == 2
        assert cache.lookup(key_for(["a"])) is None
        assert cache.lookup(key_for(["b"])) is None
        assert cache.lookup(key_for(["c"])) is not None
        assert cache.stats().invalidated == 2

    def test_invalidate_peers_with_no_matches(self):
        cache = RoutingPlanCache()
        cache.store(key_for(["a"]), plan_for("p01"))
        assert cache.invalidate_peers(("p42",)) == 0
        assert cache.stats().invalidated == 0


class TestSynopsisCacheLRU:
    def test_capacity_evicts_oldest_entry(self):
        cache = ReferenceSynopsisCache(SPEC, max_entries=2)
        first = frozenset([1, 2])
        for ids in (first, frozenset([3, 4]), frozenset([5, 6])):
            cache.build(ids)
        hits_before = cache.stats().hits
        cache.build(first)  # evicted: rebuilt, not a hit
        assert cache.stats().hits == hits_before
        assert cache.stats().evicted >= 1

    def test_hit_refreshes_recency(self):
        cache = ReferenceSynopsisCache(SPEC, max_entries=2)
        first = frozenset([1, 2])
        cache.build(first)
        cache.build(frozenset([3, 4]))
        cache.build(first)  # refresh
        cache.build(frozenset([5, 6]))  # evicts {3,4}, not {1,2}
        hits_before = cache.stats().hits
        cache.build(first)
        assert cache.stats().hits == hits_before + 1

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReferenceSynopsisCache(SPEC, max_entries=0)


def make_super_engine() -> MinervaEngine:
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(24)
    }
    collections = [
        Corpus.from_documents(docs[i % 24] for i in range(p * 4, p * 4 + 8))
        for p in range(6)
    ]
    engine = MinervaEngine(
        collections,
        spec=SPEC,
        replicas=2,
        topology=SuperPeerTopology(num_clusters=2, seed=0),
    )
    engine.publish({"apple", "banana"})
    return engine


class TestHierarchicalServing:
    def test_cold_serve_matches_one_shot_networked(self):
        engine = make_super_engine()
        front = ServingFrontend(
            SimNetExecutor(engine, seed=3), IQNRouter(), **KNOBS
        )
        future = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        reference = make_super_engine().run_query_networked(
            QUERY, IQNRouter(), initiator_id=INITIATOR, **KNOBS
        )
        assert future.value.queried == reference.selected
        assert future.value.topk == tuple(reference.merged[: KNOBS["k"]])

    def test_hot_serve_skips_super_peer_traffic(self):
        front = ServingFrontend(
            SimNetExecutor(make_super_engine(), seed=3), IQNRouter(), **KNOBS
        )
        first = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        cold = first.value.cost.messages_by_kind
        hot = second.value.cost.messages_by_kind
        assert cold.get(MessageKinds.CLUSTER_FETCH, 0) == 1
        assert MessageKinds.CLUSTER_FETCH not in hot
        assert MessageKinds.MEMBER_FETCH not in hot
        assert second.value.plan_hit

    def test_super_crash_invalidates_cluster_plans(self):
        """Acceptance: a seeded super-peer crash re-elects
        deterministically and drops exactly the plans that touch the
        crashed cluster's members."""
        engine = make_super_engine()
        topology = engine.topology
        topology.ensure_clusters()
        super_peers = {
            c.label: c.super_peer for c in topology.clusters
        }
        # Crash the super of the cluster the cold plan routes into.
        front_probe = ServingFrontend(
            SimNetExecutor(make_super_engine(), seed=3), IQNRouter(), **KNOBS
        )
        probe = front_probe.serve(QUERY, initiator_id=INITIATOR)
        front_probe.run()
        target_cluster = topology.cluster_of(probe.value.queried[0])
        victim = super_peers[target_cluster]

        service = ChurnService(
            engine,
            ChurnSchedule(
                [MembershipEvent(at_ms=3_000.0, peer_id=victim, kind="crash")],
                horizon_ms=HORIZON_MS,
            ),
            maintenance=MAINTENANCE,
            seed=3,
        )
        front = ServingFrontend(service, IQNRouter(), **KNOBS)
        first = front.serve(QUERY, at_ms=0.0, initiator_id=INITIATOR)
        front.run(until_ms=2_999.0)
        assert first.done

        key = plan_key(
            QUERY,
            front.selector,
            initiator_id=INITIATOR,
            max_peers=front.max_peers,
            fallback_spares=front.fallback_spares,
            conjunctive=front.conjunctive,
        )
        assert front.plan_cache.lookup(key) is not None
        epoch_before = front.synopsis_cache.epoch
        front.run(until_ms=4_500.0)  # crash + stabilize tick (re-election)
        assert front.plan_cache.lookup(key) is None
        assert front.synopsis_cache.epoch > epoch_before

        second = front.serve(QUERY, initiator_id=INITIATOR)
        front.run()
        assert not second.value.plan_hit
        assert victim not in second.value.queried

    def test_reelection_is_deterministic_across_services(self):
        outcomes = []
        for _ in range(2):
            engine = make_super_engine()
            topology = engine.topology
            topology.ensure_clusters()
            victim = topology.clusters[0].super_peer
            service = ChurnService(
                engine,
                ChurnSchedule(
                    [
                        MembershipEvent(
                            at_ms=3_000.0, peer_id=victim, kind="crash"
                        )
                    ],
                    horizon_ms=HORIZON_MS,
                ),
                maintenance=MAINTENANCE,
                seed=3,
            )
            events = []
            service.subscribe(events.append)
            front = ServingFrontend(service, IQNRouter(), **KNOBS)
            front.serve(QUERY, at_ms=0.0, initiator_id=INITIATOR)
            front.run()
            outcomes.append(
                [
                    (e.kind, e.at_ms, e.peer_id, e.members)
                    for e in events
                    if e.kind == "reelect"
                ]
            )
        assert outcomes[0] and outcomes[0] == outcomes[1]
