"""Streamed top-k: stopping-rule safety and merge_results bit-identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.merge import merge_results
from repro.ir.topk import ScoredDocument
from repro.serving.streaming import (
    StreamMerger,
    StreamState,
    synopsis_upper_bound,
)


def docs(*pairs):
    return [ScoredDocument(score=s, doc_id=d) for s, d in pairs]


class TestSynopsisUpperBound:
    def test_dominates_the_plain_sum(self):
        scores = [0.31, 1.7, 0.05]
        assert synopsis_upper_bound(scores) > sum(scores)

    def test_dominates_any_accumulation_order(self):
        import itertools

        scores = [0.1, 0.2, 0.3, 1e-12, 7.77]
        bound = synopsis_upper_bound(scores)
        for order in itertools.permutations(scores):
            running = 0.0
            for s in order:
                running += s
            assert running <= bound

    def test_empty_is_padded_zero(self):
        assert synopsis_upper_bound([]) == pytest.approx(0.0, abs=1e-8)


class TestStreamState:
    def test_full_batch_advances_and_tightens_the_bound(self):
        stream = StreamState("p01", upper=10.0)
        stream.note_batch(docs((5.0, 1), (3.0, 2)), limit=2)
        assert stream.offset == 2
        assert not stream.exhausted
        assert stream.upper == 3.0
        assert stream.contributed

    def test_short_batch_exhausts(self):
        stream = StreamState("p01", upper=10.0)
        stream.note_batch(docs((5.0, 1)), limit=2)
        assert stream.exhausted

    def test_empty_batch_exhausts_without_contributing(self):
        stream = StreamState("p01", upper=10.0)
        stream.note_batch([], limit=2)
        assert stream.exhausted
        assert not stream.contributed
        assert stream.upper == 10.0

    def test_bound_never_loosens(self):
        stream = StreamState("p01", upper=2.0)
        stream.note_batch(docs((9.0, 1), (8.0, 2)), limit=2)
        assert stream.upper == 2.0


class TestStreamMerger:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            StreamMerger([], 0)

    def test_threshold_is_none_below_k_docs(self):
        merger = StreamMerger(docs((1.0, 1)), 2)
        assert merger.threshold() is None

    def test_threshold_is_the_kth_best(self):
        merger = StreamMerger(docs((3.0, 1), (2.0, 2), (1.0, 3)), 2)
        assert merger.threshold() == 2.0

    def test_absorb_keeps_the_max_per_doc(self):
        merger = StreamMerger(docs((1.0, 7)), 1)
        merger.absorb(docs((4.0, 7)))
        merger.absorb(docs((2.0, 7)))
        assert merger.topk() == (ScoredDocument(score=4.0, doc_id=7),)

    def test_tie_with_the_bound_keeps_the_stream_open(self):
        """An unseen doc at exactly the bound could win the doc-id
        tiebreak, so `threshold == upper` must NOT close the stream."""
        merger = StreamMerger(docs((2.0, 1), (2.0, 2)), 2)
        assert merger.threshold() == 2.0
        assert merger.still_open(StreamState("p01", upper=2.0))
        assert not merger.still_open(StreamState("p01", upper=1.999))

    def test_exhausted_stream_is_closed(self):
        merger = StreamMerger([], 2)
        assert not merger.still_open(
            StreamState("p01", upper=99.0, exhausted=True)
        )

    def test_no_threshold_keeps_every_stream_open(self):
        merger = StreamMerger([], 2)
        assert merger.still_open(StreamState("p01", upper=0.0))

    def test_topk_matches_merge_results(self):
        lists = [docs((2.0, 1), (2.0, 3)), docs((2.0, 2), (1.0, 1))]
        merger = StreamMerger(lists[0], 3)
        merger.absorb(lists[1])
        assert merger.topk() == tuple(merge_results(lists, k=3))


def simulate_stream(per_peer, k, batch_size):
    """Drive the exact serving loop shape over in-memory sorted lists.

    Each peer's list plays the role of its score-sorted stream; the
    initial upper bound is the padded top score (what a tight synopsis
    bound would predict).  Returns (topk, total entries shipped).
    """
    merger = StreamMerger([], k)
    streams = {}
    for peer_id, entries in per_peer.items():
        upper = synopsis_upper_bound([entries[0].score]) if entries else 0.0
        streams[peer_id] = StreamState(peer_id, upper=upper)
    shipped = 0
    while True:
        active = [s for s in streams.values() if merger.still_open(s)]
        if not active:
            break
        for stream in active:
            entries = per_peer[stream.peer_id]
            batch = entries[stream.offset : stream.offset + batch_size]
            merger.absorb(batch)
            stream.note_batch(batch, batch_size)
            shipped += len(batch)
    return merger.topk(), shipped


@st.composite
def peer_result_lists(draw):
    """2-4 peers, each with a score-sorted list over a small doc space
    (overlap and score ties are likely by construction)."""
    num_peers = draw(st.integers(min_value=2, max_value=4))
    per_peer = {}
    for p in range(num_peers):
        entries = draw(
            st.lists(
                st.tuples(
                    st.sampled_from([0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]),
                    st.integers(min_value=0, max_value=12),
                ),
                max_size=10,
                unique_by=lambda pair: pair[1],
            )
        )
        per_peer[f"p{p:02d}"] = sorted(
            (ScoredDocument(score=s, doc_id=d) for s, d in entries),
            reverse=True,
        )
    return per_peer


@settings(max_examples=200, deadline=None)
@given(
    per_peer=peer_result_lists(),
    k=st.integers(min_value=1, max_value=6),
    batch_size=st.integers(min_value=1, max_value=4),
)
def test_streamed_topk_is_bit_identical_to_full_merge(per_peer, k, batch_size):
    """Property: for ANY peers/scores/k/batch size, early termination
    never changes the answer — only how many entries are shipped."""
    expected = tuple(merge_results(per_peer.values(), k=k))
    streamed, shipped = simulate_stream(per_peer, k, batch_size)
    assert streamed == expected
    assert shipped <= sum(len(entries) for entries in per_peer.values())
