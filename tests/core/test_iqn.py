"""Tests for the IQN router (Section 5.1) — the paper's core algorithm."""

import pytest

from repro.core.aggregation import PerTermAggregation
from repro.core.iqn import IQNRouter, IQNSelection
from repro.core.stopping import CoverageTarget, MinimumNoveltyGain
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-64")


def make_post(peer_id, term, ids):
    ids = list(ids)
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=SPEC.build(ids),
    )


def twins_context():
    """The scenario that separates IQN from one-shot overlap routing.

    The initiator holds 0..99.  Candidates:
    - twin1, twin2: identical large novel collections (200..399);
    - other: a distinct novel collection (500..649), smaller than a twin.

    A one-shot method picks both twins (both maximally novel w.r.t. the
    initiator); IQN must pick one twin, absorb it, and then prefer
    'other' because the second twin adds nothing.
    """
    apple = PeerList(term="apple")
    apple.add(make_post("twin1", "apple", range(200, 400)))
    apple.add(make_post("twin2", "apple", range(200, 400)))
    apple.add(make_post("other", "apple", range(500, 650)))
    initiator = LocalView(
        peer_id="me",
        result_doc_ids=frozenset(range(100)),
        doc_ids_by_term={"apple": frozenset(range(100))},
    )
    return RoutingContext(
        query=Query(0, ("apple",)),
        peer_lists={"apple": apple},
        num_peers=6,
        spec=SPEC,
        initiator=initiator,
    )


class TestIterativeSelection:
    def test_avoids_duplicate_twin(self):
        ranked = IQNRouter().rank(twins_context(), max_peers=2)
        assert len(ranked) == 2
        assert "other" in ranked
        assert not {"twin1", "twin2"} <= set(ranked)

    def test_first_pick_is_a_twin(self):
        """Twins are larger, hence more novel initially."""
        ranked = IQNRouter().rank(twins_context(), max_peers=3)
        assert ranked[0] in {"twin1", "twin2"}

    def test_full_ranking_orders_duplicate_last(self):
        ranked = IQNRouter().rank(twins_context(), max_peers=3)
        assert ranked[2] in {"twin1", "twin2"}

    def test_per_term_strategy_same_decision(self):
        ranked = IQNRouter(PerTermAggregation()).rank(twins_context(), 2)
        assert "other" in ranked

    def test_deterministic(self):
        a = IQNRouter().rank(twins_context(), 3)
        b = IQNRouter().rank(twins_context(), 3)
        assert a == b


class TestDiagnostics:
    def test_rank_detailed_returns_selections(self):
        selections = IQNRouter().rank_detailed(twins_context(), 3)
        assert all(isinstance(s, IQNSelection) for s in selections)
        assert all(s.novelty >= 0 and s.quality > 0 for s in selections)

    def test_score_is_product(self):
        selection = IQNRouter().rank_detailed(twins_context(), 1)[0]
        assert selection.score == pytest.approx(
            selection.quality * selection.novelty
        )

    def test_novelty_decreases_for_absorbed_duplicates(self):
        selections = IQNRouter().rank_detailed(twins_context(), 3)
        twin_novelties = [
            s.novelty for s in selections if s.peer_id.startswith("twin")
        ]
        assert twin_novelties[1] < 0.3 * twin_novelties[0]


class TestStopping:
    def test_max_peers_limits(self):
        assert len(IQNRouter().rank(twins_context(), max_peers=1)) == 1

    def test_coverage_target_stops_early(self):
        router = IQNRouter(stopping=CoverageTarget(250))
        ranked = router.rank(twins_context(), max_peers=3)
        # Initiator (100) + first twin (~200) exceeds 250 at once.
        assert len(ranked) == 1

    def test_min_novelty_gain_stops_on_duplicate(self):
        router = IQNRouter(stopping=MinimumNoveltyGain(20.0))
        ranked = router.rank(twins_context(), max_peers=3)
        # Stops as soon as the best remaining peer adds < 20 docs: the
        # second twin triggers the cutoff after being selected.
        assert len(ranked) <= 3

    def test_max_peers_validation(self):
        with pytest.raises(ValueError):
            IQNRouter().rank(twins_context(), 0)


class TestQualityWeighting:
    def test_novelty_only_mode(self):
        router = IQNRouter(quality_weighted=False)
        selections = router.rank_detailed(twins_context(), 2)
        assert all(s.quality == 1.0 for s in selections)
        assert "other" in [s.peer_id for s in selections]

    def test_name_reflects_configuration(self):
        assert "IQN" in IQNRouter().name
        assert "novelty-only" in IQNRouter(quality_weighted=False).name


class TestEdges:
    def test_no_candidates(self):
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": PeerList(term="apple")},
            num_peers=2,
            spec=SPEC,
        )
        assert IQNRouter().rank(context, 3) == []

    def test_max_peers_beyond_candidates(self):
        ranked = IQNRouter().rank(twins_context(), max_peers=50)
        assert len(ranked) == 3

    def test_zero_novelty_candidates_still_ranked_by_quality(self):
        """When every remaining peer duplicates the reference, IQN keeps
        selecting (by quality) rather than stalling."""
        apple = PeerList(term="apple")
        apple.add(make_post("dup1", "apple", range(100)))
        apple.add(make_post("dup2", "apple", range(100)))
        initiator = LocalView(
            peer_id="me",
            result_doc_ids=frozenset(range(100)),
            doc_ids_by_term={"apple": frozenset(range(100))},
        )
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": apple},
            num_peers=4,
            spec=SPEC,
            initiator=initiator,
        )
        assert len(IQNRouter().rank(context, 2)) == 2
