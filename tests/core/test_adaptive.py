"""Tests for adaptive synopsis-type selection (future work #1)."""

import pytest

from repro.core.adaptive import AdaptiveSpecPolicy, needs_repost


class TestPolicyValidation:
    def test_defaults(self):
        policy = AdaptiveSpecPolicy()
        assert policy.bloom_capacity == 256

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveSpecPolicy(budget_bits=0)
        with pytest.raises(ValueError):
            AdaptiveSpecPolicy(bloom_bits_per_element=0)


class TestChoice:
    def test_small_lists_get_bloom(self):
        policy = AdaptiveSpecPolicy(budget_bits=2048)
        spec = policy.choose(100)
        assert spec.kind == "bloom"
        assert spec.size_in_bits <= 2048

    def test_medium_lists_get_mips(self):
        policy = AdaptiveSpecPolicy(budget_bits=2048)
        assert policy.choose(1000).kind == "mips"

    def test_huge_disjunctive_lists_get_loglog(self):
        policy = AdaptiveSpecPolicy(budget_bits=2048, conjunctive=False)
        assert policy.choose(100_000).kind == "loglog"

    def test_conjunctive_never_chooses_counters(self):
        policy = AdaptiveSpecPolicy(budget_bits=2048, conjunctive=True)
        for length in (10, 1000, 100_000, 10_000_000):
            assert policy.choose(length).supports_intersection

    def test_deterministic_across_peers(self):
        """Two peers with the same policy and global df choose the same
        spec — the comparability requirement."""
        a = AdaptiveSpecPolicy(budget_bits=2048, seed=7)
        b = AdaptiveSpecPolicy(budget_bits=2048, seed=7)
        for length in (10, 500, 5_000, 500_000):
            assert a.choose(length) == b.choose(length)

    def test_budget_respected(self):
        policy = AdaptiveSpecPolicy(budget_bits=1024)
        for length in (10, 1000, 1_000_000):
            assert policy.choose(length).size_in_bits <= 1024

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSpecPolicy().choose(-1)

    def test_chosen_specs_are_comparable(self):
        policy = AdaptiveSpecPolicy(budget_bits=1024, seed=3)
        spec = policy.choose(5000)
        a = spec.build(range(100))
        b = spec.build(range(50, 150))
        assert 0.0 <= a.estimate_resemblance(b) <= 1.0


class TestBands:
    def test_band_mapping(self):
        policy = AdaptiveSpecPolicy(budget_bits=2048)
        assert policy.choose_for_band("rare").kind == "bloom"
        assert policy.choose_for_band("common").kind == "mips"
        assert policy.choose_for_band("ubiquitous").kind == "loglog"

    def test_unknown_band(self):
        with pytest.raises(ValueError, match="unknown band"):
            AdaptiveSpecPolicy().choose_for_band("sometimes")


class TestRepostTrigger:
    def test_growth_triggers(self):
        assert needs_repost(100, 150)
        assert not needs_repost(100, 149)

    def test_shrink_triggers(self):
        assert needs_repost(150, 100)
        assert not needs_repost(149, 100)

    def test_appearance_and_disappearance(self):
        assert needs_repost(0, 1)
        assert needs_repost(5, 0)
        assert not needs_repost(0, 0)

    def test_custom_factor(self):
        assert not needs_repost(100, 180, drift_factor=2.0)
        assert needs_repost(100, 200, drift_factor=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            needs_repost(10, 10, drift_factor=1.0)
        with pytest.raises(ValueError):
            needs_repost(-1, 10)
