"""Tests for the per-peer and per-term aggregation strategies (Section 6)."""

import pytest

from repro.core.aggregation import PerPeerAggregation, PerTermAggregation
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.base import UnsupportedOperationError
from repro.synopses.factory import SynopsisSpec

MIPS = SynopsisSpec.parse("mips-64")
HS = SynopsisSpec.parse("hs-16")


def make_post(spec, peer_id, term, ids):
    ids = list(ids)
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=spec.build(ids),
    )


def two_term_context(
    spec=MIPS,
    *,
    conjunctive=False,
    initiator_ids=frozenset(range(100)),
):
    """Peers over terms 'a' and 'b' with controlled doc-id sets.

    - 'dup' repeats the initiator's documents on both terms;
    - 'fresh' holds disjoint documents on both terms;
    - 'half' holds term 'a' only.
    """
    list_a = PeerList(term="a")
    list_b = PeerList(term="b")
    list_a.add(make_post(spec, "dup", "a", range(100)))
    list_b.add(make_post(spec, "dup", "b", range(100)))
    list_a.add(make_post(spec, "fresh", "a", range(1000, 1100)))
    list_b.add(make_post(spec, "fresh", "b", range(1100, 1200)))
    list_a.add(make_post(spec, "half", "a", range(2000, 2100)))
    initiator = LocalView(
        peer_id="me",
        result_doc_ids=frozenset(initiator_ids),
        doc_ids_by_term={
            "a": frozenset(initiator_ids),
            "b": frozenset(initiator_ids),
        },
    )
    return RoutingContext(
        query=Query(0, ("a", "b")),
        peer_lists={"a": list_a, "b": list_b},
        num_peers=5,
        spec=spec,
        initiator=initiator,
        conjunctive=conjunctive,
    )


def candidate(context, peer_id):
    return {c.peer_id: c for c in context.candidates()}[peer_id]


class TestPerPeerDisjunctive:
    def test_duplicate_peer_scores_near_zero(self):
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        assert strategy.novelty(state, candidate(context, "dup")) < 40

    def test_fresh_peer_scores_near_full_size(self):
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        novelty = strategy.novelty(state, candidate(context, "fresh"))
        assert novelty > 120  # ~200 distinct docs across both terms

    def test_absorb_discounts_future_duplicates(self):
        """The Aggregate-Synopses step: after absorbing 'fresh', a clone
        of fresh's content would no longer be novel."""
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        fresh = candidate(context, "fresh")
        before = strategy.novelty(state, fresh)
        strategy.absorb(state, fresh)
        after = strategy.novelty(state, fresh)
        assert after < 0.3 * before

    def test_absorb_updates_coverage(self):
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        start_coverage = strategy.estimated_coverage(state)
        strategy.absorb(state, candidate(context, "fresh"))
        assert strategy.estimated_coverage(state) > start_coverage

    def test_seeded_from_initiator(self):
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        assert state.reference_cardinality == 100.0
        assert not state.reference.is_empty

    def test_no_initiator_starts_empty(self):
        context = two_term_context()
        context.initiator = None
        state = PerPeerAggregation().start(context)
        assert state.reference_cardinality == 0.0
        assert state.reference.is_empty

    def test_half_peer_counts_single_term(self):
        context = two_term_context()
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        novelty = strategy.novelty(state, candidate(context, "half"))
        assert 50 < novelty <= 110


class TestPerPeerConjunctive:
    def test_peer_missing_term_scores_zero(self):
        context = two_term_context(conjunctive=True)
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        assert strategy.novelty(state, candidate(context, "half")) == 0.0

    def test_intersection_bounds_cardinality(self):
        context = two_term_context(conjunctive=True)
        strategy = PerPeerAggregation()
        state = strategy.start(context)
        # fresh's term sets are disjoint: conjunctive matches ~0 docs.
        novelty = strategy.novelty(state, candidate(context, "fresh"))
        assert novelty <= 100  # min cdf bound

    def test_hash_sketch_crude_fallback(self):
        context = two_term_context(spec=HS, conjunctive=True)
        strategy = PerPeerAggregation(crude_conjunctive_fallback=True)
        state = strategy.start(context)
        # Falls back to union; must not raise.
        assert strategy.novelty(state, candidate(context, "dup")) >= 0.0

    def test_hash_sketch_strict_mode_raises(self):
        context = two_term_context(spec=HS, conjunctive=True)
        strategy = PerPeerAggregation(crude_conjunctive_fallback=False)
        state = strategy.start(context)
        with pytest.raises(UnsupportedOperationError):
            strategy.novelty(state, candidate(context, "fresh"))


class TestPerTerm:
    def test_duplicate_peer_scores_near_zero(self):
        context = two_term_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        assert strategy.novelty(state, candidate(context, "dup")) < 40

    def test_fresh_peer_sums_term_novelties(self):
        context = two_term_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        novelty = strategy.novelty(state, candidate(context, "fresh"))
        assert novelty == pytest.approx(200, rel=0.3)

    def test_absorb_is_per_term(self):
        context = two_term_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        strategy.absorb(state, candidate(context, "half"))
        # Only term 'a' was absorbed; a peer novel on 'b' is unaffected.
        fresh_novelty = strategy.novelty(state, candidate(context, "fresh"))
        assert fresh_novelty > 120

    def test_conjunctive_needs_no_intersection(self):
        """The Section 6.3 advantage: per-term works for conjunctive
        queries even on hash sketches."""
        context = two_term_context(spec=HS, conjunctive=True)
        strategy = PerTermAggregation()
        state = strategy.start(context)
        assert strategy.novelty(state, candidate(context, "fresh")) >= 0.0

    def test_preserves_relative_ranking(self):
        context = two_term_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        fresh = strategy.novelty(state, candidate(context, "fresh"))
        dup = strategy.novelty(state, candidate(context, "dup"))
        assert fresh > dup

    def test_coverage_sums_terms(self):
        context = two_term_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        assert strategy.estimated_coverage(state) == 200.0  # 100 per term
