"""Tests for correlation-aware per-term aggregation (future work #2)."""

import pytest

from repro.core.aggregation import PerTermAggregation
from repro.core.correlations import (
    CorrelationAwarePerTerm,
    estimate_distinct_mass,
)
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-64")


def make_post(peer_id, term, ids):
    ids = list(ids)
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=SPEC.build(ids),
    )


def correlated_context():
    """Two candidates with equal per-term novelty sums but different
    inter-term correlation:

    - 'correlated': both terms over the SAME 200 docs (distinct mass 200);
    - 'independent': disjoint 200-doc lists per term (distinct mass 400).
    """
    list_a = PeerList(term="a")
    list_b = PeerList(term="b")
    same_docs = range(1000, 1200)
    list_a.add(make_post("correlated", "a", same_docs))
    list_b.add(make_post("correlated", "b", same_docs))
    list_a.add(make_post("independent", "a", range(2000, 2200)))
    list_b.add(make_post("independent", "b", range(3000, 3200)))
    return RoutingContext(
        query=Query(0, ("a", "b")),
        peer_lists={"a": list_a, "b": list_b},
        num_peers=4,
        spec=SPEC,
        initiator=LocalView(peer_id="me"),
    )


def candidate(context, peer_id):
    return {c.peer_id: c for c in context.candidates()}[peer_id]


class TestDistinctMass:
    def test_identical_lists_counted_once(self):
        context = correlated_context()
        mass = estimate_distinct_mass(
            candidate(context, "correlated"), ("a", "b")
        )
        assert mass == pytest.approx(200, rel=0.25)

    def test_disjoint_lists_counted_fully(self):
        context = correlated_context()
        mass = estimate_distinct_mass(
            candidate(context, "independent"), ("a", "b")
        )
        assert mass == pytest.approx(400, rel=0.15)

    def test_missing_terms_ignored(self):
        context = correlated_context()
        mass = estimate_distinct_mass(candidate(context, "correlated"), ("a",))
        assert mass == 200.0

    def test_no_posts_is_zero(self):
        context = correlated_context()
        assert (
            estimate_distinct_mass(candidate(context, "correlated"), ("zzz",))
            == 0.0
        )

    def test_bounded_by_largest_list(self):
        context = correlated_context()
        mass = estimate_distinct_mass(
            candidate(context, "correlated"), ("a", "b")
        )
        assert mass >= 200.0  # union can't be smaller than one list


class TestCorrelationAwareNovelty:
    def test_plain_per_term_cannot_distinguish(self):
        """The baseline's blind spot: both candidates sum to ~400."""
        context = correlated_context()
        strategy = PerTermAggregation()
        state = strategy.start(context)
        plain_corr = strategy.novelty(state, candidate(context, "correlated"))
        plain_indep = strategy.novelty(state, candidate(context, "independent"))
        assert plain_corr == pytest.approx(plain_indep, rel=0.15)

    def test_correlation_correction_separates_them(self):
        context = correlated_context()
        strategy = CorrelationAwarePerTerm()
        state = strategy.start(context)
        corrected_corr = strategy.novelty(state, candidate(context, "correlated"))
        corrected_indep = strategy.novelty(
            state, candidate(context, "independent")
        )
        # The duplicated-list peer is scaled toward ~200; the independent
        # peer keeps ~400.
        assert corrected_indep > 1.5 * corrected_corr
        assert corrected_corr == pytest.approx(200, rel=0.35)

    def test_absorb_still_per_term(self):
        """Aggregate-Synopses remains the parent's per-term union."""
        context = correlated_context()
        strategy = CorrelationAwarePerTerm()
        state = strategy.start(context)
        independent = candidate(context, "independent")
        strategy.absorb(state, independent)
        assert strategy.novelty(state, independent) < 100

    def test_zero_novelty_stays_zero(self):
        context = correlated_context()
        strategy = CorrelationAwarePerTerm()
        state = strategy.start(context)
        chosen = candidate(context, "correlated")
        strategy.absorb(state, chosen)
        assert strategy.novelty(state, chosen) < 60

    def test_works_inside_iqn(self):
        from repro.core.iqn import IQNRouter

        context = correlated_context()
        router = IQNRouter(CorrelationAwarePerTerm(), quality_weighted=False)
        ranked = router.rank(context, 2)
        assert ranked[0] == "independent"
