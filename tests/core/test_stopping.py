"""Tests for IQN stopping criteria."""

import pytest

from repro.core.stopping import (
    AnyOf,
    CoverageTarget,
    MaxPeers,
    MinimumNoveltyGain,
)


def check(criterion, *, selected=1, coverage=0.0, novelty=100.0):
    return criterion.should_stop(
        selected_count=selected,
        estimated_coverage=coverage,
        last_novelty=novelty,
    )


class TestMaxPeers:
    def test_stops_at_limit(self):
        assert not check(MaxPeers(3), selected=2)
        assert check(MaxPeers(3), selected=3)
        assert check(MaxPeers(3), selected=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxPeers(0)


class TestCoverageTarget:
    def test_stops_at_target(self):
        assert not check(CoverageTarget(500), coverage=499)
        assert check(CoverageTarget(500), coverage=500)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoverageTarget(0)


class TestMinimumNoveltyGain:
    def test_stops_below_threshold(self):
        assert not check(MinimumNoveltyGain(10), novelty=10)
        assert check(MinimumNoveltyGain(10), novelty=9.9)

    def test_zero_threshold_never_stops(self):
        assert not check(MinimumNoveltyGain(0.0), novelty=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MinimumNoveltyGain(-1)


class TestAnyOf:
    def test_any_member_fires(self):
        combined = AnyOf(MaxPeers(5), CoverageTarget(100))
        assert check(combined, selected=1, coverage=150)
        assert check(combined, selected=5, coverage=0)
        assert not check(combined, selected=1, coverage=50)

    def test_needs_members(self):
        with pytest.raises(ValueError):
            AnyOf()
