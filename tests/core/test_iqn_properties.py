"""Property-based tests on IQN routing invariants.

For arbitrary networks of candidate peers (random per-term document
sets), the router must uphold structural invariants: plans contain no
duplicates, never exceed the candidate pool, are deterministic, and the
reference-synopsis discount makes an exact clone of an already-selected
peer (near-)worthless.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import PerPeerAggregation, PerTermAggregation
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")

# A network blueprint: per peer, per term, a doc-id block (start, size).
peer_blueprints = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # term-a block start (x100)
        st.integers(min_value=0, max_value=40),  # term-a size
        st.integers(min_value=0, max_value=50),  # term-b block start (x100)
        st.integers(min_value=0, max_value=40),  # term-b size
    ),
    min_size=1,
    max_size=8,
)


def build_context(blueprints, *, conjunctive=False, seed_docs=frozenset()):
    list_a = PeerList(term="a")
    list_b = PeerList(term="b")
    for index, (a_start, a_size, b_start, b_size) in enumerate(blueprints):
        peer_id = f"p{index:02d}"
        ids_a = list(range(a_start * 100, a_start * 100 + a_size))
        ids_b = list(range(b_start * 100, b_start * 100 + b_size))
        if ids_a:
            list_a.add(_post(peer_id, "a", ids_a))
        if ids_b:
            list_b.add(_post(peer_id, "b", ids_b))
    return RoutingContext(
        query=Query(0, ("a", "b")),
        peer_lists={"a": list_a, "b": list_b},
        num_peers=len(blueprints) + 1,
        spec=SPEC,
        initiator=LocalView(
            peer_id="me",
            result_doc_ids=frozenset(seed_docs),
            doc_ids_by_term={"a": frozenset(seed_docs), "b": frozenset()},
        ),
        conjunctive=conjunctive,
    )


def _post(peer_id, term, ids):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=SPEC.build(ids),
    )


class TestPlanInvariants:
    @given(peer_blueprints, st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_no_duplicates_and_bounded(self, blueprints, max_peers):
        context = build_context(blueprints)
        plan = IQNRouter().rank(context, max_peers)
        assert len(plan) == len(set(plan))
        candidates = {c.peer_id for c in context.candidates()}
        assert set(plan) <= candidates
        assert len(plan) <= min(max_peers, len(candidates))

    @given(peer_blueprints)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, blueprints):
        context_one = build_context(blueprints)
        context_two = build_context(blueprints)
        assert IQNRouter().rank(context_one, 5) == IQNRouter().rank(
            context_two, 5
        )

    @given(peer_blueprints)
    @settings(max_examples=30, deadline=None)
    def test_novelties_nonnegative(self, blueprints):
        context = build_context(blueprints)
        for selection in IQNRouter().rank_detailed(context, 5):
            assert selection.novelty >= 0.0
            assert selection.quality > 0.0

    @given(peer_blueprints, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_per_term_strategy_same_invariants(self, blueprints, conjunctive):
        context = build_context(blueprints, conjunctive=conjunctive)
        plan = IQNRouter(PerTermAggregation()).rank(context, 4)
        assert len(plan) == len(set(plan))


class TestCloneDiscount:
    @given(
        st.integers(min_value=20, max_value=200),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_clones_of_selected_peer_lose_novelty(self, size, clone_count):
        """N identical peers: after the first is absorbed, the others'
        novelty collapses, regardless of set size or clone count."""
        ids = list(range(size))
        list_a = PeerList(term="a")
        for i in range(clone_count):
            list_a.add(_post(f"clone{i}", "a", ids))
        context = RoutingContext(
            query=Query(0, ("a",)),
            peer_lists={"a": list_a},
            num_peers=clone_count + 1,
            spec=SPEC,
            initiator=LocalView(peer_id="me"),
        )
        selections = IQNRouter().rank_detailed(context, clone_count)
        assert selections[0].novelty > 0.5 * size
        for later in selections[1:]:
            assert later.novelty <= 0.25 * selections[0].novelty + 1.0


class TestSeedDiscount:
    @given(st.integers(min_value=10, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_initiator_duplicates_discounted(self, size):
        """A peer that only mirrors the initiator's local result is
        dominated by an equally-sized novel peer."""
        seed = frozenset(range(size))
        list_a = PeerList(term="a")
        list_a.add(_post("mirror", "a", sorted(seed)))
        list_a.add(_post("fresh", "a", range(100_000, 100_000 + size)))
        context = RoutingContext(
            query=Query(0, ("a",)),
            peer_lists={"a": list_a},
            num_peers=3,
            spec=SPEC,
            initiator=LocalView(
                peer_id="me",
                result_doc_ids=seed,
                doc_ids_by_term={"a": seed},
            ),
        )
        plan = IQNRouter(PerPeerAggregation()).rank(context, 1)
        assert plan == ["fresh"]


class TestFastPathEquivalence:
    @given(peer_blueprints, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_fast_plan_matches_naive(self, blueprints, conjunctive):
        """The vectorized fast path is an *exact* reimplementation: for
        arbitrary networks the plans agree peer for peer, float for
        float."""
        naive = IQNRouter(fast_path=False)
        fast = IQNRouter()
        plan_naive = naive.rank_detailed(build_context(blueprints, conjunctive=conjunctive), 6)
        plan_fast = fast.rank_detailed(build_context(blueprints, conjunctive=conjunctive), 6)
        assert [(s.peer_id, s.quality, s.novelty) for s in plan_fast] == [
            (s.peer_id, s.quality, s.novelty) for s in plan_naive
        ]


class TestNoveltyMonotonicity:
    """The lazy-greedy (CELF) tier is sound only because stale novelty
    scores stay upper bounds.  That holds for exact sets trivially and
    for Bloom estimates provably; both facts are pinned here."""

    absorb_sequences = st.lists(
        st.sets(st.integers(min_value=0, max_value=2_000), max_size=150),
        min_size=1,
        max_size=6,
    )
    candidate_sets = st.sets(
        st.integers(min_value=0, max_value=2_000), min_size=1, max_size=150
    )

    @given(candidate_sets, absorb_sequences)
    @settings(max_examples=50, deadline=None)
    def test_exact_set_novelty_non_increasing(self, candidate, absorbed):
        reference = set()
        previous = len(candidate)
        for addition in absorbed:
            reference |= addition
            novelty = len(candidate - reference)
            assert novelty <= previous
            previous = novelty

    @given(candidate_sets, absorb_sequences)
    @settings(max_examples=50, deadline=None)
    def test_bloom_novelty_non_increasing(self, candidate, absorbed):
        from repro.core.novelty import estimate_novelty
        from repro.synopses.factory import SynopsisSpec as _Spec

        spec = _Spec.parse("bf-512")
        candidate_synopsis = spec.build(candidate)
        reference_ids = set()
        previous = float("inf")
        for addition in absorbed:
            reference_ids |= addition
            novelty = estimate_novelty(
                candidate_synopsis,
                spec.build(reference_ids),
                candidate_cardinality=float(len(candidate)),
            )
            assert novelty <= previous
            previous = novelty
