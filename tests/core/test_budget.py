"""Tests for adaptive synopsis length allocation (Section 7.2)."""

import pytest

from repro.core.budget import (
    allocate_budget,
    benefit_list_length,
    benefit_score_mass_quantile,
    benefit_score_threshold,
    build_adaptive_posts,
    uniform_budget,
)
from repro.ir.documents import Corpus, Document
from repro.ir.index import InvertedIndex
from repro.minerva.peer import Peer
from repro.synopses.factory import SynopsisSpec
from repro.synopses.mips import BITS_PER_POSITION


@pytest.fixture
def corpus():
    docs = []
    # "common" in 30 docs, "rare" in 3, "mid" in 10.
    for i in range(30):
        terms = ["common"]
        if i < 3:
            terms.append("rare")
        if i < 10:
            terms += ["mid"] * (1 + i)  # skewed tf -> skewed scores
        docs.append(Document.from_terms(i, terms))
    return Corpus.from_documents(docs)


@pytest.fixture
def index(corpus):
    return InvertedIndex(corpus)


TERMS = ["common", "mid", "rare"]


class TestBenefits:
    def test_list_length(self, index):
        assert benefit_list_length(index, "common") == 30
        assert benefit_list_length(index, "rare") == 3
        assert benefit_list_length(index, "absent") == 0

    def test_score_threshold(self, index):
        benefit = benefit_score_threshold(0.5)
        assert benefit(index, "mid") <= index.document_frequency("mid")
        assert benefit(index, "absent") == 0.0

    def test_score_threshold_validation(self):
        with pytest.raises(ValueError):
            benefit_score_threshold(1.5)

    def test_score_mass_quantile_skew_sensitivity(self, index):
        """A skewed list reaches 90% of its score mass in fewer entries
        than its full length."""
        benefit = benefit_score_mass_quantile(0.9)
        assert 0 < benefit(index, "mid") <= index.document_frequency("mid")
        assert benefit(index, "absent") == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            benefit_score_mass_quantile(0.0)


class TestAllocation:
    def test_sums_to_budget(self, index):
        allocation = allocate_budget(index, TERMS, 96 * BITS_PER_POSITION)
        assert sum(allocation.values()) == 96 * BITS_PER_POSITION

    def test_proportional_to_benefit(self, index):
        allocation = allocate_budget(index, TERMS, 128 * BITS_PER_POSITION)
        assert allocation["common"] > allocation["mid"] > allocation["rare"]

    def test_every_term_gets_minimum(self, index):
        allocation = allocate_budget(index, TERMS, 4 * BITS_PER_POSITION)
        assert all(v >= BITS_PER_POSITION for v in allocation.values())

    def test_granularity_respected(self, index):
        allocation = allocate_budget(index, TERMS, 50 * BITS_PER_POSITION)
        assert all(v % BITS_PER_POSITION == 0 for v in allocation.values())

    def test_zero_benefit_terms_get_floor(self, index):
        allocation = allocate_budget(
            index, ["absent1", "absent2"], 10 * BITS_PER_POSITION
        )
        assert all(v == BITS_PER_POSITION for v in allocation.values())

    def test_budget_below_floor_rejected(self, index):
        with pytest.raises(ValueError, match="floor"):
            allocate_budget(index, TERMS, 2 * BITS_PER_POSITION)

    def test_duplicate_terms_rejected(self, index):
        with pytest.raises(ValueError):
            allocate_budget(index, ["a", "a"], 1024)

    def test_empty_terms_rejected(self, index):
        with pytest.raises(ValueError):
            allocate_budget(index, [], 1024)

    def test_deterministic(self, index):
        a = allocate_budget(index, TERMS, 77 * BITS_PER_POSITION)
        b = allocate_budget(index, TERMS, 77 * BITS_PER_POSITION)
        assert a == b


class TestUniform:
    def test_equal_shares(self):
        allocation = uniform_budget(TERMS, 96 * BITS_PER_POSITION)
        assert set(allocation.values()) == {32 * BITS_PER_POSITION}

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            uniform_budget(TERMS, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniform_budget([], 1024)


class TestAdaptivePosts:
    def test_posts_have_allocated_lengths(self, corpus, index):
        peer = Peer("p1", corpus, spec=SynopsisSpec.parse("mips-64"), index=index)
        allocation = allocate_budget(index, TERMS, 64 * BITS_PER_POSITION)
        posts = build_adaptive_posts(peer, allocation)
        assert len(posts) == 3
        for post in posts:
            assert post.synopsis.size_in_bits == allocation[post.term]

    def test_heterogeneous_posts_remain_comparable(self, corpus, index):
        """Long and short MIPs from the allocation still estimate
        resemblance on their common prefix."""
        peer = Peer("p1", corpus, spec=SynopsisSpec.parse("mips-64"), index=index)
        allocation = allocate_budget(index, TERMS, 64 * BITS_PER_POSITION)
        posts = {p.term: p for p in build_adaptive_posts(peer, allocation)}
        r = posts["common"].synopsis.estimate_resemblance(posts["mid"].synopsis)
        assert 0.0 <= r <= 1.0

    def test_non_mips_rejected(self, corpus, index):
        peer = Peer("p1", corpus, spec=SynopsisSpec.parse("bf-1024"), index=index)
        with pytest.raises(ValueError, match="MIPs"):
            build_adaptive_posts(peer, {"common": 512})

    def test_nonpositive_allocation_rejected(self, corpus, index):
        peer = Peer("p1", corpus, spec=SynopsisSpec.parse("mips-64"), index=index)
        with pytest.raises(ValueError):
            build_adaptive_posts(peer, {"common": 0})
