"""Tests for the vectorized + lazy-greedy routing fast path.

The contract is strict: for every supported configuration the fast path
must produce plans *bit-identical* to the naive Select-Best-Peer loop —
same peers in the same order with equal quality and novelty floats —
while performing strictly fewer novelty evaluations.  Unsupported
configurations must fall back to the naive loop transparently.
"""

import random

import pytest

from repro.core.aggregation import PerPeerAggregation, PerTermAggregation
from repro.core.correlations import CorrelationAwarePerTerm
from repro.core.fastpath import FastPathUnsupported, RoutingStats, fast_rank_detailed
from repro.core.histogram_routing import HistogramAggregation
from repro.core.iqn import IQNRouter
from repro.core.stopping import AnyOf, CoverageTarget, MaxPeers, MinimumNoveltyGain
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

SPEC_LABELS = ("mips-32", "bf-1024", "hs-16", "ll-64")
AGGREGATIONS = (PerPeerAggregation, PerTermAggregation)
TERMS = ("apple", "pear")


def make_context(
    seed,
    *,
    spec_label="mips-32",
    conjunctive=False,
    num_peers=30,
    universe=2500,
    terms=TERMS,
):
    """A synthetic directory snapshot with clustered, overlapping peers.

    Peers draw most documents from a per-peer hot region plus a uniform
    tail, so collections overlap heavily — the regime where the
    reference-synopsis discount actually reorders the plan and any
    divergence between the two implementations would surface.
    """
    rng = random.Random(seed)
    spec = SynopsisSpec.parse(spec_label)
    peer_lists = {term: PeerList(term=term) for term in terms}
    for i in range(num_peers):
        peer_id = f"p{i:03d}"
        base = rng.randrange(0, universe)
        size = rng.randrange(10, 200)
        doc_ids = set()
        for _ in range(size):
            if rng.random() < 0.6:
                doc_ids.add((base + rng.randrange(0, 250)) % universe)
            else:
                doc_ids.add(rng.randrange(0, universe))
        for term in terms:
            if rng.random() < 0.85:
                term_ids = {d for d in doc_ids if rng.random() < 0.7}
                if not term_ids:
                    continue
                peer_lists[term].add(
                    Post(
                        peer_id=peer_id,
                        term=term,
                        cdf=len(term_ids),
                        max_score=rng.random(),
                        avg_score=rng.random() / 2,
                        term_space_size=rng.randrange(50, 400),
                        synopsis=spec.build(term_ids),
                    )
                )
    seed_ids = frozenset(rng.randrange(0, universe) for _ in range(80))
    initiator = LocalView(
        peer_id="me",
        result_doc_ids=seed_ids,
        doc_ids_by_term={
            term: frozenset(x for x in seed_ids if rng.random() < 0.6)
            for term in terms
        },
    )
    return RoutingContext(
        query=Query(0, terms),
        peer_lists=peer_lists,
        num_peers=num_peers + 1,
        spec=spec,
        initiator=initiator,
        conjunctive=conjunctive,
    )


def plan_rows(selections):
    return [(s.peer_id, s.quality, s.novelty) for s in selections]


def rank_both(context_args, router_args, max_peers=10):
    """Rank the same scenario with the naive loop and the fast path."""
    naive = IQNRouter(fast_path=False, **router_args)
    fast = IQNRouter(**router_args)
    plan_naive = naive.rank_detailed(make_context(**context_args), max_peers)
    plan_fast = fast.rank_detailed(make_context(**context_args), max_peers)
    return plan_naive, plan_fast, naive.last_stats, fast.last_stats


class TestPlanEquivalence:
    """Fast plans must equal naive plans bit for bit."""

    @pytest.mark.parametrize("spec_label", SPEC_LABELS)
    @pytest.mark.parametrize("aggregation_cls", AGGREGATIONS)
    @pytest.mark.parametrize("conjunctive", (False, True))
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_matrix(self, spec_label, aggregation_cls, conjunctive, seed):
        plan_naive, plan_fast, _, fast_stats = rank_both(
            dict(seed=seed, spec_label=spec_label, conjunctive=conjunctive),
            dict(aggregation=aggregation_cls()),
        )
        assert plan_rows(plan_fast) == plan_rows(plan_naive)
        assert fast_stats.mode in ("celf", "incremental")

    @pytest.mark.parametrize("spec_label", SPEC_LABELS)
    def test_novelty_only_ranking(self, spec_label):
        plan_naive, plan_fast, _, _ = rank_both(
            dict(seed=3, spec_label=spec_label),
            dict(quality_weighted=False),
        )
        assert plan_rows(plan_fast) == plan_rows(plan_naive)

    @pytest.mark.parametrize(
        "stopping",
        [
            CoverageTarget(300.0),
            MinimumNoveltyGain(5.0),
            AnyOf(MaxPeers(4), MinimumNoveltyGain(2.0)),
        ],
        ids=lambda s: type(s).__name__,
    )
    @pytest.mark.parametrize("spec_label", ("bf-1024", "mips-32"))
    def test_stopping_criteria(self, stopping, spec_label):
        plan_naive, plan_fast, _, _ = rank_both(
            dict(seed=4, spec_label=spec_label),
            dict(stopping=stopping),
        )
        assert plan_rows(plan_fast) == plan_rows(plan_naive)

    @pytest.mark.parametrize("spec_label", SPEC_LABELS)
    def test_single_term_query(self, spec_label):
        plan_naive, plan_fast, _, _ = rank_both(
            dict(seed=5, spec_label=spec_label, terms=("apple",)),
            dict(aggregation=PerTermAggregation()),
        )
        assert plan_rows(plan_fast) == plan_rows(plan_naive)

    @pytest.mark.parametrize("max_peers", (1, 3, 30))
    def test_plan_length_sweep(self, max_peers):
        plan_naive, plan_fast, _, _ = rank_both(
            dict(seed=6, spec_label="bf-1024"),
            dict(),
            max_peers=max_peers,
        )
        assert plan_rows(plan_fast) == plan_rows(plan_naive)

    def test_no_initiator(self):
        context_naive = make_context(7)
        context_fast = make_context(7)
        context_naive = RoutingContext(
            query=context_naive.query,
            peer_lists=context_naive.peer_lists,
            num_peers=context_naive.num_peers,
            spec=context_naive.spec,
            initiator=None,
        )
        context_fast = RoutingContext(
            query=context_fast.query,
            peer_lists=context_fast.peer_lists,
            num_peers=context_fast.num_peers,
            spec=context_fast.spec,
            initiator=None,
        )
        naive = IQNRouter(fast_path=False)
        fast = IQNRouter()
        assert plan_rows(fast.rank_detailed(context_fast, 8)) == plan_rows(
            naive.rank_detailed(context_naive, 8)
        )


class TestFallback:
    """Unsupported configurations transparently use the naive loop."""

    def test_unknown_strategy_falls_back(self):
        class ConstantNovelty(PerPeerAggregation):
            # Not PerPeerAggregation *exactly*, so no fast path applies.
            def novelty(self, state, candidate):
                return 1.0

        context = make_context(0, spec_label="mips-32")
        router = IQNRouter(ConstantNovelty())
        plan = router.rank(context, 5)
        assert router.last_stats.mode == "naive"
        assert len(plan) == 5

    def test_correlation_aware_falls_back(self):
        context = make_context(0, spec_label="mips-32")
        router = IQNRouter(CorrelationAwarePerTerm())
        router.rank(context, 5)
        assert router.last_stats.mode == "naive"

    def test_correlation_aware_matches_its_naive_self(self):
        # Subclasses of supported strategies must not silently get the
        # parent's fast path: their overridden novelty would be ignored.
        plan_naive, plan_fast, _, fast_stats = rank_both(
            dict(seed=1, spec_label="mips-32"),
            dict(aggregation=CorrelationAwarePerTerm()),
        )
        assert fast_stats.mode == "naive"
        assert plan_rows(plan_fast) == plan_rows(plan_naive)

    def test_fast_rank_detailed_raises_for_unknown_strategy(self):
        context = make_context(0)
        qualities = {c.peer_id: 1.0 for c in context.candidates()}
        with pytest.raises(FastPathUnsupported):
            fast_rank_detailed(
                context, HistogramAggregation(), qualities, MaxPeers(5), 5
            )

    def test_mixed_synopsis_parameters_fall_back(self):
        context = make_context(8, spec_label="mips-32")
        other_spec = SynopsisSpec.parse("mips-16")
        term = TERMS[0]
        peer_list = context.peer_lists[term]
        post = next(iter(peer_list.posts.values()))
        peer_list.add(
            Post(
                peer_id=post.peer_id,
                term=term,
                cdf=post.cdf,
                max_score=post.max_score,
                avg_score=post.avg_score,
                term_space_size=post.term_space_size,
                synopsis=other_spec.build(range(10)),
            )
        )
        router = IQNRouter()
        plan = router.rank(context, 5)
        assert router.last_stats.mode == "naive"
        assert plan  # the naive loop still ranks the mixed directory

    def test_fast_path_disabled_by_flag(self):
        context = make_context(0, spec_label="bf-1024")
        router = IQNRouter(fast_path=False)
        router.rank(context, 5)
        assert router.last_stats.mode == "naive"


class TestRoutingStats:
    def test_modes_by_family(self):
        for spec_label, expected in [
            ("bf-1024", "celf"),
            ("mips-32", "incremental"),
            ("hs-16", "incremental"),
            ("ll-64", "incremental"),
        ]:
            router = IQNRouter()
            router.rank(make_context(0, spec_label=spec_label), 5)
            assert router.last_stats.mode == expected, spec_label

    def test_empty_candidates(self):
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": PeerList(term="apple")},
            num_peers=3,
            spec=SynopsisSpec.parse("mips-8"),
        )
        router = IQNRouter()
        assert router.rank_detailed(context, 5) == []
        assert router.last_stats.mode == "empty"
        assert router.last_stats.candidates == 0

    def test_bloom_bounds_never_violated(self):
        # Bloom novelty is provably monotone; the defensive full-refresh
        # branch must never fire.
        router = IQNRouter()
        router.rank(make_context(9, spec_label="bf-1024", num_peers=60), 20)
        stats = router.last_stats
        assert stats.mode == "celf"
        assert stats.bound_refreshes == 0

    def test_celf_saves_evaluations(self):
        naive = IQNRouter(fast_path=False)
        fast = IQNRouter()
        args = dict(seed=10, spec_label="bf-1024", num_peers=80, universe=8000)
        naive.rank(make_context(**args), 25)
        fast.rank(make_context(**args), 25)
        assert fast.last_stats.mode == "celf"
        assert (
            fast.last_stats.novelty_evaluations
            < naive.last_stats.novelty_evaluations
        )
        # Both report the same hypothetical naive workload.
        assert (
            fast.last_stats.naive_evaluations
            == naive.last_stats.naive_evaluations
        )
        assert fast.last_stats.evaluation_savings > 1.0

    def test_incremental_counts_touched_rows(self):
        naive = IQNRouter(fast_path=False)
        fast = IQNRouter()
        args = dict(seed=10, spec_label="mips-32", num_peers=80, universe=8000)
        naive.rank(make_context(**args), 25)
        fast.rank(make_context(**args), 25)
        assert fast.last_stats.mode == "incremental"
        assert (
            fast.last_stats.novelty_evaluations
            < naive.last_stats.novelty_evaluations
        )

    def test_naive_stats_shape(self):
        router = IQNRouter(fast_path=False)
        context = make_context(0)
        plan = router.rank_detailed(context, 5)
        stats = router.last_stats
        assert stats.mode == "naive"
        assert stats.candidates == len(context.candidates())
        assert stats.rounds == len(plan)
        assert stats.novelty_evaluations == stats.naive_evaluations
        assert stats.evaluation_savings == 1.0

    def test_savings_defined_without_evaluations(self):
        assert RoutingStats(mode="empty").evaluation_savings == 1.0
