"""Tests for synopsis-based novelty estimation (Section 5.2)."""

import random

import pytest

from repro.core.novelty import estimate_novelty
from repro.synopses.base import IncompatibleSynopsesError
from repro.synopses.factory import SynopsisSpec
from repro.synopses.measures import novelty as exact_novelty

# The Bloom spec is deliberately generous (32k bits for ~2.4k-element
# sets): the Section 5.2 bitwise-difference novelty needs lightly loaded
# filters — its overload collapse is characterized separately below.
SPECS = {
    "mips": SynopsisSpec.parse("mips-64"),
    "bloom": SynopsisSpec.parse("bf-32768"),
    "hash-sketch": SynopsisSpec.parse("hs-32"),
}


def sets_with_overlap(rng, size=1500, shared=600):
    ids = rng.sample(range(1 << 40), 2 * size - shared)
    common = set(ids[:shared])
    ref = common | set(ids[shared:size])
    cand = common | set(ids[size : 2 * size - shared])
    return ref, cand


@pytest.mark.parametrize("kind", list(SPECS))
class TestAllFamilies:
    def test_estimate_close_to_truth(self, kind):
        rng = random.Random(11)
        ref, cand = sets_with_overlap(rng)
        truth = exact_novelty(cand, ref)
        spec = SPECS[kind]
        estimate = estimate_novelty(
            spec.build(cand),
            spec.build(ref),
            candidate_cardinality=len(cand),
            reference_cardinality=len(ref),
        )
        assert estimate == pytest.approx(truth, rel=0.45)

    def test_empty_candidate_is_zero(self, kind):
        spec = SPECS[kind]
        assert (
            estimate_novelty(spec.build([]), spec.build(range(100)))
            == 0.0
        )

    def test_bounded_by_candidate_cardinality(self, kind):
        rng = random.Random(13)
        ref, cand = sets_with_overlap(rng)
        spec = SPECS[kind]
        estimate = estimate_novelty(
            spec.build(cand),
            spec.build(ref),
            candidate_cardinality=len(cand),
            reference_cardinality=len(ref),
        )
        assert 0.0 <= estimate <= len(cand)

    def test_identical_sets_low_novelty(self, kind):
        ids = set(range(2000))
        spec = SPECS[kind]
        estimate = estimate_novelty(
            spec.build(ids),
            spec.build(ids),
            candidate_cardinality=len(ids),
            reference_cardinality=len(ids),
        )
        assert estimate < 0.25 * len(ids)

    def test_disjoint_sets_high_novelty(self, kind):
        a = set(range(2000))
        b = set(range(10_000, 12_000))
        spec = SPECS[kind]
        estimate = estimate_novelty(
            spec.build(b),
            spec.build(a),
            candidate_cardinality=len(b),
            reference_cardinality=len(a),
        )
        assert estimate > 0.6 * len(b)

    def test_empty_reference_novelty_is_candidate_size(self, kind):
        spec = SPECS[kind]
        cand = set(range(1000))
        estimate = estimate_novelty(
            spec.build(cand),
            spec.empty(),
            candidate_cardinality=len(cand),
            reference_cardinality=0.0,
        )
        assert estimate == pytest.approx(len(cand), rel=0.35)


class TestValidation:
    def test_incompatible_synopses_rejected(self):
        mips = SPECS["mips"].build(range(10))
        bloom = SPECS["bloom"].build(range(10))
        with pytest.raises(IncompatibleSynopsesError):
            estimate_novelty(mips, bloom)

    def test_negative_cardinalities_rejected(self):
        spec = SPECS["mips"]
        a, b = spec.build(range(10)), spec.build(range(5))
        with pytest.raises(ValueError):
            estimate_novelty(a, b, candidate_cardinality=-1)
        with pytest.raises(ValueError):
            estimate_novelty(a, b, reference_cardinality=-1)

    def test_cardinalities_fall_back_to_synopsis_estimates(self):
        spec = SPECS["mips"]
        cand = spec.build(range(1000))
        ref = spec.build(range(500, 1500))
        estimate = estimate_novelty(cand, ref)
        assert 0.0 <= estimate <= 2500


class TestBloomOverloadCollapse:
    def test_loaded_filters_underestimate_novelty(self):
        """Characterizes the Section 5.2 caveat: the bitwise set
        difference produces garbage "unless there were already many false
        positives in the operands" — a loaded reference filter clears
        almost every candidate bit, so novelty collapses toward zero.
        This is exactly why IQN-BF-1024 degrades in Figure 3."""
        spec = SynopsisSpec.parse("bf-2048")
        ref = spec.build(range(2000))
        cand = spec.build(range(10_000, 12_000))  # fully disjoint
        estimate = estimate_novelty(
            cand, ref, candidate_cardinality=2000, reference_cardinality=2000
        )
        assert estimate < 0.2 * 2000


class TestSubsetScenario:
    def test_small_subset_gets_near_zero_novelty(self):
        """The Section 3.1 motivating case: a strict subset must score
        ~zero novelty even though its resemblance to the reference is
        low."""
        big = set(range(5000))
        small = set(range(500))  # subset of big
        spec = SPECS["mips"]
        estimate = estimate_novelty(
            spec.build(small),
            spec.build(big),
            candidate_cardinality=len(small),
            reference_cardinality=len(big),
        )
        assert estimate < 0.25 * len(small)
