"""Tests for score-conscious histogram novelty (Section 7.1)."""

import pytest

from repro.core.histogram_routing import (
    HistogramAggregation,
    cell_midpoint_weights,
    per_cell_novelties,
    top_heavy_weights,
    weighted_histogram_novelty,
)
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec
from repro.synopses.histogram import ScoreHistogramSynopsis

SPEC = SynopsisSpec.parse("mips-32")


def hist(scored_ids, num_cells=2):
    return ScoreHistogramSynopsis.from_scored_ids(
        scored_ids, spec=SPEC, num_cells=num_cells
    )


def high_scored(ids):
    return [(i, 0.9) for i in ids]


def low_scored(ids):
    return [(i, 0.1) for i in ids]


class TestPerCellNovelties:
    def test_disjoint_candidate_fully_novel(self):
        ref = hist(high_scored(range(100)))
        cand = hist(high_scored(range(1000, 1100)))
        novelties = per_cell_novelties(cand, ref)
        assert novelties[0] == 0.0
        assert novelties[1] == pytest.approx(100, rel=0.3)

    def test_duplicate_candidate_near_zero(self):
        ref = hist(high_scored(range(100)))
        cand = hist(high_scored(range(100)))
        assert sum(per_cell_novelties(cand, ref)) < 30

    def test_cross_cell_overlap_detected(self):
        """A doc can sit in different cells at different peers (local
        score normalization) — the all-pairs estimation must catch it."""
        ref = hist(low_scored(range(100)))     # docs in low cell
        cand = hist(high_scored(range(100)))   # same docs, high cell
        novelties = per_cell_novelties(cand, ref)
        assert novelties[1] < 30

    def test_empty_reference(self):
        ref = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        cand = hist(high_scored(range(50)))
        assert per_cell_novelties(cand, ref)[1] == pytest.approx(50)


class TestWeightedNovelty:
    def test_high_cell_novelty_weighs_more(self):
        ref = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        top = hist(high_scored(range(100)))
        bottom = hist(low_scored(range(100)))
        assert weighted_histogram_novelty(top, ref) > weighted_histogram_novelty(
            bottom, ref
        )

    def test_top_heavy_weights_amplify(self):
        ref = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=4)
        cand = hist([(i, 0.95) for i in range(100)], num_cells=4)
        linear = weighted_histogram_novelty(
            cand, ref, weights=cell_midpoint_weights
        )
        quadratic = weighted_histogram_novelty(cand, ref, weights=top_heavy_weights)
        # midpoint of top cell = 0.875; squared = 0.766 < 0.875.
        assert quadratic < linear

    def test_weight_function_validation(self):
        ref = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        cand = hist(high_scored(range(10)))
        with pytest.raises(ValueError):
            weighted_histogram_novelty(cand, ref, weights=lambda h: [1.0])
        with pytest.raises(ValueError):
            weighted_histogram_novelty(cand, ref, weights=lambda h: [-1.0, 1.0])


def histogram_context(conjunctive=False, with_histograms=True):
    apple = PeerList(term="apple")

    def post(peer_id, scored_ids):
        histogram = hist(scored_ids) if with_histograms else None
        return Post(
            peer_id=peer_id,
            term="apple",
            cdf=len(scored_ids),
            max_score=1.0,
            avg_score=0.5,
            term_space_size=100,
            synopsis=SPEC.build([i for i, _ in scored_ids]),
            histogram=histogram,
        )

    # 'top' has novel docs in the high-score cell; 'tail' the same number
    # of novel docs in the low-score cell.
    apple.add(post("top", high_scored(range(200, 300))))
    apple.add(post("tail", low_scored(range(400, 500))))
    return RoutingContext(
        query=Query(0, ("apple",)),
        peer_lists={"apple": apple},
        num_peers=4,
        spec=SPEC,
        initiator=LocalView(peer_id="me"),
        conjunctive=conjunctive,
    )


class TestHistogramAggregation:
    def test_prefers_high_scoring_novelty(self):
        strategy = HistogramAggregation()
        context = histogram_context()
        state = strategy.start(context)
        by_id = {c.peer_id: c for c in context.candidates()}
        assert strategy.novelty(state, by_id["top"]) > strategy.novelty(
            state, by_id["tail"]
        )

    def test_absorb_discounts(self):
        strategy = HistogramAggregation()
        context = histogram_context()
        state = strategy.start(context)
        by_id = {c.peer_id: c for c in context.candidates()}
        before = strategy.novelty(state, by_id["top"])
        strategy.absorb(state, by_id["top"])
        assert strategy.novelty(state, by_id["top"]) < 0.3 * before

    def test_coverage_tracks_absorbed_cells(self):
        strategy = HistogramAggregation()
        context = histogram_context()
        state = strategy.start(context)
        by_id = {c.peer_id: c for c in context.candidates()}
        strategy.absorb(state, by_id["top"])
        assert strategy.estimated_coverage(state) == pytest.approx(100, rel=0.3)

    def test_conjunctive_rejected(self):
        with pytest.raises(ValueError, match="disjunctive"):
            HistogramAggregation().start(histogram_context(conjunctive=True))

    def test_requires_histogram_posts(self):
        context = histogram_context(with_histograms=False)
        with pytest.raises(ValueError, match="histogram"):
            HistogramAggregation().start(context)

    def test_candidate_without_histogram_scores_zero(self):
        strategy = HistogramAggregation()
        context = histogram_context()
        # Add a histogram-less post for a new peer.
        context.peer_lists["apple"].add(
            Post(
                peer_id="bare",
                term="apple",
                cdf=10,
                max_score=1.0,
                avg_score=0.5,
                term_space_size=100,
                synopsis=SPEC.build(range(10)),
            )
        )
        state = strategy.start(context)
        by_id = {c.peer_id: c for c in context.candidates()}
        assert strategy.novelty(state, by_id["bare"]) == 0.0
