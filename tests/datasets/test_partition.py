"""Tests for the two fragment-placement strategies (Section 8.1)."""

import math

import pytest

from repro.datasets.corpus import GovCorpusConfig, build_gov_corpus
from repro.datasets.partition import (
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)


@pytest.fixture(scope="module")
def corpus():
    return build_gov_corpus(
        GovCorpusConfig(
            num_docs=200,
            vocabulary_size=500,
            num_topics=4,
            topic_vocabulary_size=40,
            doc_length_mean=30,
            seed=1,
        )
    )


class TestFragmentCorpus:
    def test_disjoint_cover(self, corpus):
        fragments = fragment_corpus(corpus, 6)
        all_ids = [i for f in fragments for i in f]
        assert len(all_ids) == len(corpus)
        assert len(set(all_ids)) == len(corpus)

    def test_near_equal_sizes(self, corpus):
        fragments = fragment_corpus(corpus, 7)
        sizes = [len(f) for f in fragments]
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self, corpus):
        with pytest.raises(ValueError):
            fragment_corpus(corpus, 0)
        with pytest.raises(ValueError):
            fragment_corpus(corpus, len(corpus) + 1)


class TestCombinationStrategy:
    def test_c_6_3_yields_20_collections(self, corpus):
        fragments = fragment_corpus(corpus, 6)
        collections = combination_collections(fragments, 3)
        assert len(collections) == math.comb(6, 3)

    def test_collection_sizes(self, corpus):
        fragments = fragment_corpus(corpus, 4)
        collections = combination_collections(fragments, 2)
        expected = len(corpus) // 2
        assert all(abs(len(c) - expected) <= 2 for c in collections)

    def test_pairwise_overlap_structure(self, corpus):
        """Two C(4,2) collections overlap in 0 or 1 fragments."""
        fragments = fragment_corpus(corpus, 4)
        frag_size = len(fragments[0])
        collections = combination_collections(fragments, 2)
        for i in range(len(collections)):
            for j in range(i + 1, len(collections)):
                shared = len(collections[i] & collections[j])
                assert shared in range(0, frag_size + 2)

    def test_every_doc_replicated(self, corpus):
        """With s of f fragments, each doc is on C(f-1, s-1) peers."""
        fragments = fragment_corpus(corpus, 5)
        collections = combination_collections(fragments, 2)
        doc = next(iter(fragments[0]))
        holders = sum(1 for c in collections if doc in c)
        assert holders == math.comb(4, 1)

    def test_validation(self, corpus):
        fragments = fragment_corpus(corpus, 4)
        with pytest.raises(ValueError):
            combination_collections(fragments, 0)
        with pytest.raises(ValueError):
            combination_collections(fragments, 5)


class TestSlidingWindowStrategy:
    def test_peer_count(self, corpus):
        fragments = fragment_corpus(corpus, 20)
        collections = sliding_window_collections(fragments, window=4, offset=2)
        assert len(collections) == 10

    def test_paper_configuration_shape(self, corpus):
        """100 fragments, r=10, offset=2 -> 50 peers (checked scaled-down)."""
        fragments = fragment_corpus(corpus, 10)
        collections = sliding_window_collections(fragments, window=4, offset=2)
        assert len(collections) == 5

    def test_adjacent_overlap_is_window_minus_offset(self, corpus):
        fragments = fragment_corpus(corpus, 10)
        frag_size = len(fragments[0])
        collections = sliding_window_collections(fragments, window=4, offset=2)
        shared = len(collections[0] & collections[1])
        assert abs(shared - 2 * frag_size) <= 4

    def test_distant_peers_disjoint(self, corpus):
        fragments = fragment_corpus(corpus, 10)
        collections = sliding_window_collections(fragments, window=2, offset=2)
        assert not (collections[0] & collections[2])

    def test_wraparound_gives_full_windows(self, corpus):
        fragments = fragment_corpus(corpus, 10)
        collections = sliding_window_collections(fragments, window=4, offset=2)
        sizes = {len(c) for c in collections}
        assert max(sizes) - min(sizes) <= 4

    def test_validation(self, corpus):
        fragments = fragment_corpus(corpus, 10)
        with pytest.raises(ValueError):
            sliding_window_collections(fragments, window=0, offset=2)
        with pytest.raises(ValueError):
            sliding_window_collections(fragments, window=4, offset=0)
        with pytest.raises(ValueError):
            sliding_window_collections(fragments, window=4, offset=3)


class TestCorporaMaterialization:
    def test_documents_shared_by_reference(self, corpus):
        fragments = fragment_corpus(corpus, 4)
        collections = combination_collections(fragments, 2)
        corpora = corpora_from_doc_id_sets(corpus, collections[:2])
        doc_id = next(iter(collections[0] & collections[1]))
        assert corpora[0].get(doc_id) is corpora[1].get(doc_id)

    def test_sizes_match(self, corpus):
        fragments = fragment_corpus(corpus, 4)
        collections = combination_collections(fragments, 2)
        corpora = corpora_from_doc_id_sets(corpus, collections)
        assert all(len(c) == len(s) for c, s in zip(corpora, collections))
