"""Tests for raw-text corpus ingestion."""

import pytest

from repro.datasets.ingest import corpus_from_texts, document_from_text


class TestDocumentFromText:
    def test_tokenizes_and_counts(self):
        doc = document_from_text(1, "Forest fire! Forest rangers fight the fire.")
        assert doc.frequency("forest") == 2
        assert doc.frequency("fire") == 2
        assert doc.frequency("the") == 0  # stopword

    def test_keep_stopwords(self):
        doc = document_from_text(1, "the the fire", drop_stopwords=False)
        assert doc.frequency("the") == 2

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError, match="no indexable tokens"):
            document_from_text(1, "the of and")


class TestCorpusFromTexts:
    TEXTS = {
        0: "Forest fire safety guidelines for national parks.",
        1: "Pest control and safety in commercial agriculture.",
        2: "Fire department response times in rural areas.",
    }

    def test_builds_corpus(self):
        corpus = corpus_from_texts(self.TEXTS)
        assert len(corpus) == 3
        assert corpus.document_frequency("safety") == 2
        assert corpus.document_frequency("fire") == 2

    def test_accepts_pairs(self):
        corpus = corpus_from_texts([(5, "alpha beta"), (6, "beta gamma")])
        assert corpus.doc_ids == {5, 6}

    def test_skips_empty_by_default(self):
        corpus = corpus_from_texts({1: "real words here", 2: "the of"})
        assert corpus.doc_ids == {1}

    def test_strict_mode_raises_on_empty(self):
        with pytest.raises(ValueError):
            corpus_from_texts({1: "the of"}, skip_empty=False)

    def test_full_pipeline_over_real_text(self):
        """Text in -> index -> query -> results out."""
        from repro.ir.index import InvertedIndex
        from repro.ir.topk import execute_query

        index = InvertedIndex(corpus_from_texts(self.TEXTS))
        results = execute_query(index, ("fire", "safety"), k=5)
        assert results[0].doc_id == 0  # the only doc with both terms
