"""Tests for the synthetic GOV-like corpus generator."""

import pytest

from repro.datasets.corpus import GovCorpusConfig, build_gov_corpus, topic_vocabulary

SMALL = GovCorpusConfig(
    num_docs=300,
    vocabulary_size=1000,
    num_topics=5,
    topic_vocabulary_size=60,
    doc_length_mean=50,
    seed=3,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        GovCorpusConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_docs": 0},
            {"vocabulary_size": 0},
            {"num_topics": 0},
            {"topic_vocabulary_size": 10_000_000},
            {"doc_length_mean": 0},
            {"topic_mix": 1.5},
            {"zipf_exponent": 0.0},
            {"topic_assignment": "sorted"},
            {"topic_smear": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            GovCorpusConfig(**kwargs)


class TestGeneration:
    def test_doc_count_and_ids(self):
        corpus = build_gov_corpus(SMALL)
        assert len(corpus) == 300
        assert corpus.doc_ids == frozenset(range(300))

    def test_reproducible(self):
        a = build_gov_corpus(SMALL)
        b = build_gov_corpus(SMALL)
        for doc_id in (0, 150, 299):
            assert a.get(doc_id) == b.get(doc_id)

    def test_different_seed_differs(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=4)
        a = build_gov_corpus(SMALL)
        b = build_gov_corpus(other)
        assert any(a.get(i) != b.get(i) for i in range(20))

    def test_document_lengths_near_mean(self):
        corpus = build_gov_corpus(SMALL)
        mean_len = sum(d.length for d in corpus) / len(corpus)
        assert mean_len == pytest.approx(SMALL.doc_length_mean, rel=0.15)

    def test_df_skew_is_zipfian(self):
        """A few terms are very frequent, most are rare."""
        corpus = build_gov_corpus(SMALL)
        dfs = sorted(
            (corpus.document_frequency(t) for t in corpus.vocabulary),
            reverse=True,
        )
        assert dfs[0] > 10 * dfs[len(dfs) // 2]

    def test_topic_terms_cluster(self):
        """Topic-0 docs use topic-0 terms far more than topic-1 docs do."""
        corpus = build_gov_corpus(SMALL)
        topic0_terms = set(topic_vocabulary(SMALL, 0)[:20])
        by_topic = {0: 0, 1: 0}
        counts = {0: 0, 1: 0}
        for doc in corpus:
            topic = doc.doc_id % SMALL.num_topics
            if topic in by_topic:
                counts[topic] += 1
                by_topic[topic] += sum(
                    doc.frequency(t) for t in topic0_terms
                )
        rate0 = by_topic[0] / counts[0]
        rate1 = by_topic[1] / counts[1]
        assert rate0 > 3 * rate1


class TestTopicAssignment:
    def test_blocked_assignment_localizes_topics(self):
        import dataclasses

        cfg = dataclasses.replace(SMALL, topic_assignment="blocked")
        corpus = build_gov_corpus(cfg)
        topic0_terms = set(topic_vocabulary(cfg, 0)[:20])
        first_block = sum(
            sum(corpus.get(i).frequency(t) for t in topic0_terms)
            for i in range(60)
        )
        last_block = sum(
            sum(corpus.get(i).frequency(t) for t in topic0_terms)
            for i in range(240, 300)
        )
        assert first_block > 3 * max(1, last_block)

    def test_smear_spreads_topics(self):
        import dataclasses

        blocked = dataclasses.replace(SMALL, topic_assignment="blocked")
        smeared = dataclasses.replace(
            SMALL, topic_assignment="blocked", topic_smear=1.5
        )
        t0 = set(topic_vocabulary(SMALL, 0)[:20])

        def mid_block_mass(corpus):
            return sum(
                sum(corpus.get(i).frequency(t) for t in t0)
                for i in range(120, 180)
            )

        assert mid_block_mass(build_gov_corpus(smeared)) > mid_block_mass(
            build_gov_corpus(blocked)
        )


class TestTopicVocabulary:
    def test_deterministic(self):
        assert topic_vocabulary(SMALL, 2) == topic_vocabulary(SMALL, 2)

    def test_size(self):
        assert len(topic_vocabulary(SMALL, 0)) == SMALL.topic_vocabulary_size

    def test_topics_differ(self):
        a = set(topic_vocabulary(SMALL, 0))
        b = set(topic_vocabulary(SMALL, 1))
        assert len(a & b) < len(a) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            topic_vocabulary(SMALL, -1)
        with pytest.raises(ValueError):
            topic_vocabulary(SMALL, SMALL.num_topics)
