"""Tests for controlled-overlap synthetic set generation."""

import random

import pytest

from repro.datasets.synthetic import (
    collections_with_pairwise_overlap,
    distinct_ids,
    overlapping_pair,
    pair_with_overlap_fraction,
    resemblance_of_overlap_fraction,
    split_into_fragments,
)
from repro.synopses.measures import resemblance


@pytest.fixture
def rng():
    return random.Random(7)


class TestDistinctIds:
    def test_count_and_distinctness(self, rng):
        ids = distinct_ids(1000, rng=rng)
        assert len(ids) == 1000
        assert len(set(ids)) == 1000

    def test_zero(self, rng):
        assert distinct_ids(0, rng=rng) == []

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            distinct_ids(-1, rng=rng)
        with pytest.raises(ValueError):
            distinct_ids(10, rng=rng, id_bits=3)

    def test_reproducible(self):
        a = distinct_ids(50, rng=random.Random(3))
        b = distinct_ids(50, rng=random.Random(3))
        assert a == b


class TestOverlappingPair:
    def test_exact_cardinalities_and_overlap(self, rng):
        a, b = overlapping_pair(500, 300, 100, rng=rng)
        assert len(a) == 500
        assert len(b) == 300
        assert len(a & b) == 100

    def test_disjoint(self, rng):
        a, b = overlapping_pair(100, 100, 0, rng=rng)
        assert not (a & b)

    def test_full_containment(self, rng):
        a, b = overlapping_pair(200, 100, 100, rng=rng)
        assert b <= a

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            overlapping_pair(10, 10, 11, rng=rng)
        with pytest.raises(ValueError):
            overlapping_pair(10, 10, -1, rng=rng)


class TestOverlapFraction:
    def test_shared_fraction(self, rng):
        a, b = pair_with_overlap_fraction(900, 1 / 3, rng=rng)
        assert len(a) == len(b) == 900
        assert len(a & b) == 300

    def test_resemblance_formula(self, rng):
        q = 1 / 3
        a, b = pair_with_overlap_fraction(600, q, rng=rng)
        assert resemblance(a, b) == pytest.approx(
            resemblance_of_overlap_fraction(q), abs=0.01
        )

    def test_formula_endpoints(self):
        assert resemblance_of_overlap_fraction(0.0) == 0.0
        assert resemblance_of_overlap_fraction(1.0) == 1.0
        assert resemblance_of_overlap_fraction(0.5) == pytest.approx(1 / 3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            pair_with_overlap_fraction(10, 1.5, rng=rng)
        with pytest.raises(ValueError):
            resemblance_of_overlap_fraction(-0.1)


class TestSharedCoreCollections:
    def test_common_core(self, rng):
        collections = collections_with_pairwise_overlap(4, 100, 0.4, rng=rng)
        assert len(collections) == 4
        assert all(len(c) == 100 for c in collections)
        core = set.intersection(*collections)
        assert len(core) == 40

    def test_pairwise_overlap_is_exactly_core(self, rng):
        collections = collections_with_pairwise_overlap(3, 50, 0.2, rng=rng)
        for i in range(3):
            for j in range(i + 1, 3):
                assert len(collections[i] & collections[j]) == 10

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            collections_with_pairwise_overlap(0, 10, 0.5, rng=rng)
        with pytest.raises(ValueError):
            collections_with_pairwise_overlap(2, 10, 2.0, rng=rng)


class TestSplitIntoFragments:
    def test_partition(self):
        fragments = split_into_fragments(list(range(10)), 3)
        assert [len(f) for f in fragments] == [4, 3, 3]
        assert sorted(sum(fragments, [])) == list(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            split_into_fragments([1, 2], 3)
        with pytest.raises(ValueError):
            split_into_fragments([1, 2], 0)
