"""Tests for the query workload generator."""

import pytest

from repro.datasets.corpus import GovCorpusConfig, topic_vocabulary
from repro.datasets.queries import Query, make_query_log, make_workload

CFG = GovCorpusConfig(
    num_docs=100,
    vocabulary_size=600,
    num_topics=4,
    topic_vocabulary_size=50,
    doc_length_mean=20,
    seed=2,
)


class TestQuery:
    def test_str(self):
        assert str(Query(0, ("forest", "fire"))) == "forest fire"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Query(0, ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Query(0, ("fire", "fire"))


class TestWorkload:
    def test_count_and_ids(self):
        queries = make_workload(CFG, num_queries=7)
        assert len(queries) == 7
        assert [q.query_id for q in queries] == list(range(7))

    def test_term_counts_in_range(self):
        queries = make_workload(CFG, num_queries=20, min_terms=2, max_terms=3)
        assert all(2 <= len(q.terms) <= 3 for q in queries)

    def test_terms_from_topic_pool(self):
        queries = make_workload(
            CFG, num_queries=10, pool_size=10, pool_offset=5
        )
        for q in queries:
            pool = set(topic_vocabulary(CFG, q.topic)[5:15])
            assert set(q.terms) <= pool

    def test_reproducible(self):
        assert make_workload(CFG, seed=9) == make_workload(CFG, seed=9)

    def test_seed_changes_workload(self):
        assert make_workload(CFG, seed=1) != make_workload(CFG, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_workload(CFG, num_queries=0)
        with pytest.raises(ValueError):
            make_workload(CFG, min_terms=3, max_terms=2)
        with pytest.raises(ValueError):
            make_workload(CFG, pool_size=1, max_terms=3)
        with pytest.raises(ValueError):
            make_workload(CFG, pool_offset=-1)

    def test_pool_beyond_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            make_workload(CFG, pool_offset=49, pool_size=3, max_terms=3)


class TestMakeQueryLog:
    BASE = [Query(i, (f"term{i}", "shared")) for i in range(8)]

    def test_events_are_the_same_query_objects(self):
        log = make_query_log(self.BASE, num_events=30, seed=4)
        assert len(log) == 30
        assert all(any(q is base for base in self.BASE) for q in log)

    def test_reproducible(self):
        first = make_query_log(self.BASE, num_events=50, zipf_s=1.1, seed=4)
        second = make_query_log(self.BASE, num_events=50, zipf_s=1.1, seed=4)
        assert first == second

    def test_seed_changes_the_log(self):
        assert make_query_log(self.BASE, num_events=50, seed=1) != make_query_log(
            self.BASE, num_events=50, seed=2
        )

    def test_skew_concentrates_on_the_head(self):
        def head_share(zipf_s):
            log = make_query_log(
                self.BASE, num_events=400, zipf_s=zipf_s, seed=4
            )
            return sum(1 for q in log if q is self.BASE[0]) / len(log)

        assert head_share(2.0) > head_share(1.0) > head_share(0.0)

    def test_zero_skew_is_roughly_uniform(self):
        log = make_query_log(self.BASE, num_events=800, zipf_s=0.0, seed=4)
        share = sum(1 for q in log if q is self.BASE[0]) / len(log)
        assert share == pytest.approx(1 / len(self.BASE), abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_query_log([], num_events=10)
        with pytest.raises(ValueError):
            make_query_log(self.BASE, num_events=0)
        with pytest.raises(ValueError):
            make_query_log(self.BASE, num_events=10, zipf_s=-0.1)
