"""Tests for the query workload generator."""

import pytest

from repro.datasets.corpus import GovCorpusConfig, topic_vocabulary
from repro.datasets.queries import Query, make_workload

CFG = GovCorpusConfig(
    num_docs=100,
    vocabulary_size=600,
    num_topics=4,
    topic_vocabulary_size=50,
    doc_length_mean=20,
    seed=2,
)


class TestQuery:
    def test_str(self):
        assert str(Query(0, ("forest", "fire"))) == "forest fire"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Query(0, ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Query(0, ("fire", "fire"))


class TestWorkload:
    def test_count_and_ids(self):
        queries = make_workload(CFG, num_queries=7)
        assert len(queries) == 7
        assert [q.query_id for q in queries] == list(range(7))

    def test_term_counts_in_range(self):
        queries = make_workload(CFG, num_queries=20, min_terms=2, max_terms=3)
        assert all(2 <= len(q.terms) <= 3 for q in queries)

    def test_terms_from_topic_pool(self):
        queries = make_workload(
            CFG, num_queries=10, pool_size=10, pool_offset=5
        )
        for q in queries:
            pool = set(topic_vocabulary(CFG, q.topic)[5:15])
            assert set(q.terms) <= pool

    def test_reproducible(self):
        assert make_workload(CFG, seed=9) == make_workload(CFG, seed=9)

    def test_seed_changes_workload(self):
        assert make_workload(CFG, seed=1) != make_workload(CFG, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_workload(CFG, num_queries=0)
        with pytest.raises(ValueError):
            make_workload(CFG, min_terms=3, max_terms=2)
        with pytest.raises(ValueError):
            make_workload(CFG, pool_size=1, max_terms=3)
        with pytest.raises(ValueError):
            make_workload(CFG, pool_offset=-1)

    def test_pool_beyond_vocabulary_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            make_workload(CFG, pool_offset=49, pool_size=3, max_terms=3)
