"""Tests for the scaled synthetic testbed (datasets.scale)."""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.scale import ScaledTestbed, ScaledTestbedConfig
from repro.synopses.factory import SynopsisSpec
from repro.topology import FlatTopology, SuperPeerTopology

SPEC = SynopsisSpec.parse("mips-16")
CONFIG = ScaledTestbedConfig(num_peers=120, num_topics=6, seed=5)


@pytest.fixture(scope="module")
def testbed():
    return ScaledTestbed(CONFIG, spec=SPEC)


class TestConfigValidation:
    def test_rejects_nonpositive_peers(self):
        with pytest.raises(ValueError):
            ScaledTestbedConfig(num_peers=0)

    def test_rejects_bad_doc_range(self):
        with pytest.raises(ValueError):
            ScaledTestbedConfig(num_peers=10, docs_per_term=(5, 3))
        with pytest.raises(ValueError):
            ScaledTestbedConfig(num_peers=10, docs_per_term=(0, 3))

    def test_rejects_pool_smaller_than_max_docs(self):
        with pytest.raises(ValueError):
            ScaledTestbedConfig(
                num_peers=10, docs_per_term=(5, 50), topic_pool=40
            )


class TestGenerativeModel:
    def test_topic_assignment_is_balanced(self, testbed):
        counts = [0] * CONFIG.num_topics
        for index in range(CONFIG.num_peers):
            counts[testbed.topic_of_peer(index)] += 1
        assert max(counts) - min(counts) <= 1

    def test_doc_ids_live_in_the_terms_topic_slice(self, testbed):
        term = testbed.topic_terms(2)[0]
        ids = testbed.doc_ids(0, term)
        low, high = CONFIG.docs_per_term
        assert low <= len(ids) <= high
        assert all(
            2 * CONFIG.topic_pool <= i < 3 * CONFIG.topic_pool for i in ids
        )

    def test_doc_ids_recomputable(self, testbed):
        other = ScaledTestbed(CONFIG, spec=SPEC)
        term = testbed.peer_terms(7)[0]
        assert testbed.doc_ids(7, term) == other.doc_ids(7, term)

    def test_peer_terms_include_own_topic(self, testbed):
        for index in (0, 17, 119):
            topic = testbed.topic_of_peer(index)
            held = set(testbed.peer_terms(index))
            assert set(testbed.topic_terms(topic)) <= held
            assert len(held) == CONFIG.terms_per_topic + CONFIG.noise_terms

    def test_directory_has_one_post_per_peer_term(self, testbed):
        term = testbed.topic_terms(0)[0]
        stored = testbed.directory.stored_list(term)
        posters = set(stored.posts)
        expected = {
            testbed.peer_id(i)
            for i in range(CONFIG.num_peers)
            if term in testbed.peer_terms(i)
        }
        assert posters == expected


class TestMeasurement:
    def test_reference_is_union_over_posters(self, testbed):
        term = testbed.topic_terms(1)[0]
        expected = set()
        for index in range(CONFIG.num_peers):
            if term in testbed.peer_terms(index):
                expected |= testbed.doc_ids(index, term)
        assert testbed.reference_ids((term,)) == expected

    def test_full_selection_reaches_full_recall(self, testbed):
        query = testbed.queries(1)[0]
        everyone = tuple(
            testbed.peer_id(i) for i in range(CONFIG.num_peers)
        )
        assert testbed.coverage_recall(everyone, query) == 1.0

    def test_empty_selection_has_zero_recall(self, testbed):
        query = testbed.queries(1)[0]
        assert testbed.coverage_recall((), query) == 0.0

    def test_local_view_unions_term_doc_sets(self, testbed):
        query = testbed.queries(1)[0]
        view = testbed.local_view(query)
        index = testbed.peer_index(view.peer_id)
        assert testbed.topic_of_peer(index) == testbed.topic_of_term(
            query.terms[0]
        )
        expected = set()
        for term in query.terms:
            if term in testbed.peer_terms(index):
                expected |= testbed.doc_ids(index, term)
        assert view.result_doc_ids == expected

    def test_queries_cycle_topics(self, testbed):
        queries = testbed.queries(CONFIG.num_topics + 1, terms_per_query=2)
        assert queries[0].terms == queries[CONFIG.num_topics].terms
        assert all(len(q.terms) == 2 for q in queries)


class TestTopologyHost:
    def test_flat_topology_routes_over_the_testbed(self, testbed):
        topology = FlatTopology()
        topology.bind(testbed)
        query = testbed.queries(1)[0]
        view = testbed.local_view(query)
        plan = topology.route(
            query, IQNRouter(), 5, requester=view.peer_id, initiator=view
        )
        assert 0 < len(plan.selected) <= 5
        assert view.peer_id not in plan.selected

    def test_super_peer_topology_routes_over_the_testbed(self, testbed):
        topology = SuperPeerTopology(num_clusters=6, seed=2)
        topology.bind(testbed)
        query = testbed.queries(1)[0]
        view = testbed.local_view(query)
        plan = topology.route(
            query, IQNRouter(), 5, requester=view.peer_id, initiator=view
        )
        assert plan.selected
        assert plan.clusters_ranked
        assert plan.super_fetches == 1 + len(plan.clusters_ranked)
