"""Tests for ChurnService's DirectoryEvent subscription feed:
unsubscribe semantics, multiple listeners, deterministic ordering, and
super-peer re-election events under churn."""

from __future__ import annotations

import pytest

from repro.churn import (
    ChurnSchedule,
    ChurnService,
    MaintenanceConfig,
    MembershipConfig,
)
from repro.churn.membership import MembershipEvent
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec
from repro.topology import SuperPeerTopology

HORIZON_MS = 20_000.0
MAINTENANCE = MaintenanceConfig.for_repost_interval(
    4_000.0, stabilize_interval_ms=2_000.0
)
QUERIES = [Query(i, ("apple", "banana")) for i in range(3)]


def make_engine(topology=None) -> MinervaEngine:
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(24)
    }
    collections = [
        Corpus.from_documents(docs[i % 24] for i in range(p * 4, p * 4 + 8))
        for p in range(6)
    ]
    engine = MinervaEngine(
        collections,
        spec=SynopsisSpec.parse("mips-16"),
        replicas=2,
        topology=topology,
    )
    engine.publish({"apple", "banana"})
    return engine


def make_service(
    engine: MinervaEngine | None = None,
    *,
    schedule: ChurnSchedule | None = None,
    seed: int = 3,
) -> ChurnService:
    engine = engine or make_engine()
    if schedule is None:
        schedule = ChurnSchedule.generate(
            sorted(engine.peers),
            MembershipConfig.for_rate(8.0, horizon_ms=HORIZON_MS),
            seed=seed,
        )
    return ChurnService(engine, schedule, maintenance=MAINTENANCE, seed=seed)


def run_service(service: ChurnService) -> None:
    service.run_workload(
        QUERIES,
        IQNRouter(),
        interarrival_ms=HORIZON_MS / (len(QUERIES) + 1),
        arrivals="uniform",
        max_peers=2,
        k=10,
    )


def event_fingerprint(event):
    return (event.kind, event.at_ms, event.peer_id, event.terms, event.members)


class TestSubscribe:
    def test_multiple_subscribers_see_the_same_stream(self):
        service = make_service()
        first, second = [], []
        service.subscribe(first.append)
        service.subscribe(second.append)
        run_service(service)
        assert first  # the seeded trace produces events
        assert [event_fingerprint(e) for e in first] == [
            event_fingerprint(e) for e in second
        ]

    def test_listeners_run_in_subscription_order(self):
        service = make_service()
        order = []
        service.subscribe(lambda e: order.append("first"))
        service.subscribe(lambda e: order.append("second"))
        run_service(service)
        assert order
        assert order[::2] == ["first"] * (len(order) // 2)
        assert order[1::2] == ["second"] * (len(order) // 2)

    def test_event_stream_deterministic_for_a_seed(self):
        streams = []
        for _ in range(2):
            service = make_service()
            events = []
            service.subscribe(events.append)
            run_service(service)
            streams.append([event_fingerprint(e) for e in events])
        assert streams[0] == streams[1]


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        service = make_service()
        muted, active = [], []
        muted_listener = muted.append
        service.subscribe(muted_listener)
        service.subscribe(active.append)
        service.unsubscribe(muted_listener)
        run_service(service)
        assert active
        assert muted == []

    def test_unsubscribe_unknown_listener_raises(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.unsubscribe(lambda e: None)

    def test_double_unsubscribe_raises(self):
        service = make_service()
        listener = lambda e: None  # noqa: E731
        service.subscribe(listener)
        service.unsubscribe(listener)
        with pytest.raises(ValueError):
            service.unsubscribe(listener)

    def test_listener_may_unsubscribe_itself_mid_event(self):
        service = make_service()
        heard = []

        def one_shot(event):
            heard.append(event)
            service.unsubscribe(one_shot)

        service.subscribe(one_shot)
        run_service(service)
        assert len(heard) == 1


class TestReElectionEvents:
    def _super_crash_service(self, kind: str):
        engine = make_engine(SuperPeerTopology(num_clusters=2, seed=0))
        topology = engine.topology
        topology.ensure_clusters()
        label = topology.clusters[0].label
        super_peer = topology.super_of_cluster(label)
        schedule = ChurnSchedule(
            [MembershipEvent(at_ms=1_000.0, peer_id=super_peer, kind=kind)],
            horizon_ms=HORIZON_MS,
        )
        return make_service(engine, schedule=schedule), label, super_peer

    def test_super_crash_emits_reelect_after_detection(self):
        service, label, old_super = self._super_crash_service("crash")
        events = []
        service.subscribe(events.append)
        run_service(service)
        reelects = [e for e in events if e.kind == "reelect"]
        assert len(reelects) == 1
        (event,) = reelects
        # Crash re-election waits for the next stabilize tick (failure
        # detection latency); the crash itself lands at 1000 ms.
        assert event.at_ms >= 1_000.0
        assert event.peer_id != old_super
        assert old_super not in event.members
        assert event.peer_id in event.members
        assert event.terms

    def test_super_leave_reelects_immediately(self):
        service, label, old_super = self._super_crash_service("leave")
        events = []
        service.subscribe(events.append)
        run_service(service)
        reelects = [e for e in events if e.kind == "reelect"]
        assert len(reelects) == 1
        assert reelects[0].at_ms == 1_000.0

    def test_reelection_is_deterministic(self):
        fingerprints = []
        for _ in range(2):
            service, _, _ = self._super_crash_service("crash")
            events = []
            service.subscribe(events.append)
            run_service(service)
            fingerprints.append(
                [event_fingerprint(e) for e in events if e.kind == "reelect"]
            )
        assert fingerprints[0] == fingerprints[1]

    def test_flat_topology_never_emits_reelect(self):
        service = make_service()
        events = []
        service.subscribe(events.append)
        run_service(service)
        assert not [e for e in events if e.kind == "reelect"]
