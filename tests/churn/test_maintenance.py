"""Tests for directory maintenance: reposts, TTL sweeps, ring repair.

All operations take the current virtual time explicitly, so the tests
drive them directly with hand-picked timestamps — no clock needed.
"""

from __future__ import annotations

import pytest

from repro.churn import DirectoryMaintainer, MaintenanceConfig
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")
TERMS = {"apple", "banana"}


def make_engine(num_peers: int = 6, *, replicas: int = 2) -> MinervaEngine:
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(4 * num_peers)
    }
    collections = [
        Corpus.from_documents(
            docs[i % len(docs)] for i in range(p * 4, p * 4 + 8)
        )
        for p in range(num_peers)
    ]
    engine = MinervaEngine(collections, spec=SPEC, replicas=replicas)
    engine.publish(TERMS)
    return engine


@pytest.fixture
def engine():
    return make_engine()


@pytest.fixture
def maintainer(engine):
    return DirectoryMaintainer(
        engine,
        MaintenanceConfig(
            repost_interval_ms=10_000.0,
            post_ttl_ms=25_000.0,
            stabilize_interval_ms=5_000.0,
            replicas=2,
        ),
    )


class TestMaintenanceConfig:
    def test_ttl_must_exceed_repost_interval(self):
        with pytest.raises(ValueError, match="post_ttl_ms must exceed"):
            MaintenanceConfig(repost_interval_ms=10.0, post_ttl_ms=10.0)

    def test_for_repost_interval_scales_ttl(self):
        config = MaintenanceConfig.for_repost_interval(8_000.0)
        assert config.post_ttl_ms == pytest.approx(20_000.0)

    def test_for_repost_interval_rejects_small_ttl_factor(self):
        with pytest.raises(ValueError, match="ttl_factor"):
            MaintenanceConfig.for_repost_interval(8_000.0, ttl_factor=1.0)

    def test_rejects_nonpositive_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            MaintenanceConfig(replicas=0)


class TestFreshness:
    def test_existing_posts_start_stamped_at_zero(self, maintainer):
        assert maintainer.posted_at("apple", "p00") == 0.0

    def test_record_publish_updates_stamp(self, maintainer):
        maintainer.record_publish("apple", "p00", 42.0)
        assert maintainer.posted_at("apple", "p00") == 42.0

    def test_forget_peer_drops_all_of_its_stamps(self, maintainer):
        maintainer.forget_peer("p00")
        assert maintainer.posted_at("apple", "p00") is None
        assert maintainer.posted_at("banana", "p00") is None
        assert maintainer.posted_at("apple", "p01") is not None


class TestRepost:
    def test_repost_stamps_every_published_term(self, maintainer):
        count = maintainer.repost("p00", 1_000.0)
        assert count == 2  # apple and banana
        assert maintainer.posted_at("apple", "p00") == 1_000.0
        assert maintainer.posted_at("banana", "p00") == 1_000.0

    def test_repost_is_charged_to_the_cost_model(self, engine, maintainer):
        before = engine.cost.total_messages
        maintainer.repost("p00", 1_000.0)
        assert engine.cost.total_messages > before


class TestSweep:
    def test_stale_posts_expire_and_leave_the_peer_list(
        self, engine, maintainer
    ):
        # All posts were stamped 0.0; keep p00's fresh, age the rest.
        maintainer.record_publish("apple", "p00", 28_000.0)
        maintainer.record_publish("banana", "p00", 28_000.0)
        expired = maintainer.sweep(30_000.0)
        assert expired > 0
        assert engine.directory.peer_list("apple").peer_ids == {"p00"}

    def test_fresh_posts_survive(self, engine, maintainer):
        before = engine.directory.peer_list("apple").peer_ids
        assert maintainer.sweep(10_000.0) == 0  # TTL is 25s, posts are 10s old
        assert engine.directory.peer_list("apple").peer_ids == before

    def test_unknown_posts_are_stamped_not_guessed_stale(
        self, engine, maintainer
    ):
        # A post published behind the maintainer's back has no stamp;
        # the sweep adopts it instead of expiring it.
        maintainer._posted_at.pop(("apple", "p01"))
        assert maintainer.sweep(40_000.0) > 0  # everything else expires
        assert "p01" in engine.directory.peer_list("apple").peer_ids
        assert maintainer.posted_at("apple", "p01") == 40_000.0

    def test_repost_restores_an_expired_post(self, engine, maintainer):
        maintainer.sweep(30_000.0)  # everything stamped 0.0 expires
        assert engine.directory.peer_list("apple").peer_ids == frozenset()
        maintainer.repost("p00", 31_000.0)
        assert "p00" in engine.directory.peer_list("apple").peer_ids


class TestRingRepair:
    def test_evict_crashed_removes_node_and_restores_replicas(
        self, engine, maintainer
    ):
        node_of_peer = engine.directory._node_of_peer
        before = dict(engine.directory.peer_list("apple").posts)
        evicted, copied = maintainer.evict_crashed(["p01"])
        assert evicted == 1
        assert "p01" not in node_of_peer
        assert copied >= 0
        # With 2 replicas a single crash loses nothing: every term's
        # PeerList is still resolvable with the same posts.
        assert dict(engine.directory.peer_list("apple").posts) == before

    def test_evict_unknown_peer_is_a_noop(self, engine, maintainer):
        assert maintainer.evict_crashed(["nobody"]) == (0, 0)

    def test_rejoin_restores_node_and_reposts(self, engine, maintainer):
        maintainer.evict_crashed(["p01"])
        count = maintainer.rejoin("p01", 12_000.0)
        assert count == 2
        assert "p01" in engine.directory._node_of_peer
        assert "p01" in engine.directory.peer_list("apple").peer_ids
        assert maintainer.posted_at("apple", "p01") == 12_000.0

    def test_rejoin_without_prior_eviction_just_reposts(
        self, engine, maintainer
    ):
        node_id = engine.directory._node_of_peer["p02"]
        assert maintainer.rejoin("p02", 5_000.0) == 2
        assert engine.directory._node_of_peer["p02"] == node_id
