"""Tests for ChurnService: events applied, maintenance run, queries
raced against failures — all deterministic for a fixed seed."""

from __future__ import annotations

import pytest

from repro.churn import (
    ChurnSchedule,
    ChurnService,
    ChurnStats,
    MaintenanceConfig,
    MembershipConfig,
)
from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")
HORIZON_MS = 20_000.0
QUERIES = [Query(i, ("apple", "banana")) for i in range(6)]
MAINTENANCE = MaintenanceConfig.for_repost_interval(
    4_000.0, stabilize_interval_ms=2_000.0
)


def make_engine(num_peers: int = 6) -> MinervaEngine:
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(4 * num_peers)
    }
    collections = [
        Corpus.from_documents(
            docs[i % len(docs)] for i in range(p * 4, p * 4 + 8)
        )
        for p in range(num_peers)
    ]
    engine = MinervaEngine(collections, spec=SPEC, replicas=2)
    engine.publish({"apple", "banana"})
    return engine


def make_service(seed: int = 3, rate: float = 6.0) -> ChurnService:
    engine = make_engine()
    schedule = ChurnSchedule.generate(
        sorted(engine.peers),
        MembershipConfig.for_rate(rate, horizon_ms=HORIZON_MS),
        seed=seed,
    )
    return ChurnService(
        engine, schedule, maintenance=MAINTENANCE, seed=seed
    )


def run_service(service: ChurnService):
    return service.run_workload(
        QUERIES,
        IQNRouter(),
        interarrival_ms=HORIZON_MS / (len(QUERIES) + 1),
        arrivals="uniform",
        max_peers=2,
        k=10,
        fallback_spares=2,
    )


def fingerprint(outcome):
    return (
        outcome.query.query_id,
        outcome.started_ms,
        outcome.latency_ms,
        round(outcome.final_recall, 12),
        outcome.selected,
        outcome.substituted_peers,
        outcome.stale_routes,
        outcome.fallback_attempts,
        outcome.directory_fallbacks,
    )


class TestMembershipApplication:
    def test_events_drive_the_stats(self):
        service = make_service()
        run_service(service)
        stats = service.stats
        assert stats.crashes + stats.leaves > 0
        assert stats.reposts > 0
        assert stats.maintenance_messages > 0

    def test_crashed_nodes_get_evicted_by_stabilization(self):
        service = make_service()
        run_service(service)
        if service.stats.crashes:
            assert service.stats.nodes_evicted > 0

    def test_live_peers_tracks_the_transport(self):
        service = make_service()
        assert service.live_peers() == sorted(service.engine.peers)
        service.executor.transport.crash("p00")
        assert "p00" not in service.live_peers()


class TestWorkload:
    def test_every_query_completes(self):
        outcomes = run_service(make_service())
        assert len(outcomes) == len(QUERIES)
        for outcome in outcomes:
            assert 0.0 <= outcome.final_recall <= 1.0
            assert outcome.latency_ms >= 0.0

    def test_fallback_counters_are_consistent(self):
        outcomes = run_service(make_service())
        for outcome in outcomes:
            assert outcome.fallback_successes == len(outcome.substituted_peers)
            assert outcome.fallback_attempts >= outcome.fallback_successes
            # A substitution only happens because a selected peer's
            # forward failed.
            assert outcome.stale_routes >= len(outcome.substituted_peers)

    def test_deterministic_for_fixed_seed(self):
        first = run_service(make_service(seed=3))
        second = run_service(make_service(seed=3))
        assert [fingerprint(o) for o in first] == [
            fingerprint(o) for o in second
        ]

    def test_outcomes_vary_with_seed(self):
        first = run_service(make_service(seed=3))
        second = run_service(make_service(seed=4))
        assert [fingerprint(o) for o in first] != [
            fingerprint(o) for o in second
        ]

    def test_stats_deterministic_for_fixed_seed(self):
        a, b = make_service(seed=3), make_service(seed=3)
        run_service(a)
        run_service(b)
        assert a.stats == b.stats
        assert isinstance(a.stats, ChurnStats)

    def test_rejects_nonpositive_interarrival(self):
        with pytest.raises(ValueError, match="interarrival_ms"):
            make_service().run_workload(
                QUERIES, IQNRouter(), interarrival_ms=0.0
            )

    def test_rejects_unknown_arrival_process(self):
        with pytest.raises(ValueError, match="arrivals"):
            make_service().run_workload(
                QUERIES, IQNRouter(), arrivals="bursty"
            )

    def test_no_churn_schedule_means_clean_outcomes(self):
        engine = make_engine()
        schedule = ChurnSchedule([], horizon_ms=HORIZON_MS)
        service = ChurnService(
            engine, schedule, maintenance=MAINTENANCE, seed=3
        )
        outcomes = run_service(service)
        assert service.stats.crashes == service.stats.leaves == 0
        for outcome in outcomes:
            assert outcome.stale_routes == 0
            assert outcome.substituted_peers == ()


class TestDirectoryEvents:
    """The subscribe() feed the serving layer's caches invalidate off."""

    def collect(self, service):
        events = []
        service.subscribe(events.append)
        return events

    def test_membership_changes_are_emitted(self):
        service = make_service()
        events = self.collect(service)
        run_service(service)
        kinds = {event.kind for event in events}
        stats = service.stats
        if stats.crashes:
            assert "crash" in kinds
        if stats.leaves:
            assert "leave" in kinds
        if stats.recoveries:
            assert "recover" in kinds
        if stats.nodes_evicted:
            assert "evict" in kinds

    def test_events_carry_virtual_timestamps_in_order(self):
        service = make_service()
        events = self.collect(service)
        run_service(service)
        assert events
        times = [event.at_ms for event in events]
        assert times == sorted(times)
        assert all(0.0 <= t <= HORIZON_MS for t in times)

    def test_crash_then_evict_for_the_same_peer(self):
        """A crash's eviction arrives as a separate later event — the
        crash-detection latency the serving caches must ride out."""
        service = make_service()
        events = self.collect(service)
        run_service(service)
        for evict in (e for e in events if e.kind == "evict"):
            # Stabilization only evicts peers whose crash it detected
            # — strictly after the crash fired (detection latency).
            assert any(
                crash.kind == "crash"
                and crash.peer_id == evict.peer_id
                and crash.at_ms < evict.at_ms
                for crash in events
            )

    def test_recover_reports_the_reposted_terms(self):
        service = make_service()
        events = self.collect(service)
        run_service(service)
        for event in events:
            if event.kind == "recover":
                assert set(event.terms) <= {"apple", "banana"}
                assert event.terms == tuple(sorted(event.terms))

    def test_unchanged_reposts_are_not_reported(self):
        """Pure TTL refreshes must not spam listeners: with no churn at
        all, repost ticks re-publish identical statistics and the feed
        stays silent."""
        engine = make_engine()
        schedule = ChurnSchedule([], horizon_ms=HORIZON_MS)
        service = ChurnService(
            engine, schedule, maintenance=MAINTENANCE, seed=3
        )
        events = self.collect(service)
        service.run_workload(
            QUERIES[:2],
            IQNRouter(),
            interarrival_ms=HORIZON_MS / 3,
            arrivals="uniform",
            max_peers=2,
            k=10,
        )
        assert service.stats.reposts > 0
        assert events == []
