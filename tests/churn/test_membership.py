"""Tests for seeded membership schedules.

The property that everything downstream leans on: a churn trace is a
pure function of ``(sorted peer ids, config, seed)`` — independent of
peer-list order, of other RNG activity in the process, and (pinned via
``ExperimentRunner.map`` below) of the worker count the surrounding
experiment fans out with.
"""

from __future__ import annotations

import random

import pytest

from repro.churn import ChurnSchedule, MembershipConfig, MembershipEvent
from repro.parallel import ExperimentRunner

PEERS = [f"p{i:02d}" for i in range(8)]
CONFIG = MembershipConfig.for_rate(2.0, horizon_ms=60_000.0)


def schedule_digest_task(task, seed):
    """Worker entrypoint: generate a schedule purely from the task.

    The pool-derived ``seed`` is deliberately unused — the schedule's
    seed travels inside the task, so the digest cannot depend on task
    position or worker count.
    """
    del seed
    config = MembershipConfig.for_rate(
        task["rate"], horizon_ms=task["horizon_ms"]
    )
    schedule = ChurnSchedule.generate(
        task["peer_ids"], config, seed=task["seed"]
    )
    return schedule.trace_digest()


class TestMembershipEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="at_ms"):
            MembershipEvent(at_ms=-1.0, peer_id="p00", kind="crash")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            MembershipEvent(at_ms=0.0, peer_id="p00", kind="explode")

    def test_rejects_empty_peer(self):
        with pytest.raises(ValueError, match="peer_id"):
            MembershipEvent(at_ms=0.0, peer_id="", kind="leave")


class TestMembershipConfig:
    def test_for_rate_matches_departure_rate(self):
        config = MembershipConfig.for_rate(2.0, horizon_ms=60_000.0)
        assert config.mean_session_ms == pytest.approx(30_000.0)
        assert config.mean_downtime_ms == pytest.approx(7_500.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="churn rate"):
            MembershipConfig.for_rate(0.0)

    def test_rejects_nonpositive_sessions(self):
        with pytest.raises(ValueError, match="positive"):
            MembershipConfig(mean_session_ms=0.0)

    def test_rejects_crash_fraction_out_of_range(self):
        with pytest.raises(ValueError, match="crash_fraction"):
            MembershipConfig(crash_fraction=1.5)


class TestGenerate:
    def test_same_inputs_same_trace(self):
        first = ChurnSchedule.generate(PEERS, CONFIG, seed=7)
        second = ChurnSchedule.generate(PEERS, CONFIG, seed=7)
        assert first.events == second.events
        assert first.trace_digest() == second.trace_digest()

    def test_trace_independent_of_peer_order(self):
        shuffled = list(PEERS)
        random.Random(99).shuffle(shuffled)
        assert (
            ChurnSchedule.generate(PEERS, CONFIG, seed=7).trace_digest()
            == ChurnSchedule.generate(shuffled, CONFIG, seed=7).trace_digest()
        )

    def test_trace_varies_with_seed(self):
        assert (
            ChurnSchedule.generate(PEERS, CONFIG, seed=7).trace_digest()
            != ChurnSchedule.generate(PEERS, CONFIG, seed=8).trace_digest()
        )

    def test_events_alternate_departure_and_recovery_per_peer(self):
        schedule = ChurnSchedule.generate(PEERS, CONFIG, seed=7)
        assert len(schedule) > 0
        for peer_id in PEERS:
            kinds = [event.kind for event in schedule.events_for(peer_id)]
            for index, kind in enumerate(kinds):
                if index % 2 == 0:
                    assert kind in ("crash", "leave")
                else:
                    assert kind == "recover"

    def test_all_events_inside_horizon_and_time_ordered(self):
        schedule = ChurnSchedule.generate(PEERS, CONFIG, seed=7)
        times = [event.at_ms for event in schedule]
        assert times == sorted(times)
        assert all(0 <= t < CONFIG.horizon_ms for t in times)

    def test_rejects_event_past_horizon(self):
        event = MembershipEvent(at_ms=10.0, peer_id="p00", kind="crash")
        with pytest.raises(ValueError, match="past the horizon"):
            ChurnSchedule(
                [event], horizon_ms=5.0
            )


class TestWorkerCountInvariance:
    """Fixed seed -> bit-identical churn trace at any ``--workers``."""

    TASKS = [
        {"peer_ids": PEERS, "rate": rate, "horizon_ms": 45_000.0, "seed": 23}
        for rate in (0.5, 1.0, 2.0, 4.0)
    ]

    def test_digests_identical_at_any_worker_count(self):
        serial = ExperimentRunner(workers=1).map(
            schedule_digest_task, self.TASKS
        )
        pooled = ExperimentRunner(workers=2, use_cache=False).map(
            schedule_digest_task, self.TASKS
        )
        adaptive_runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=3600.0
        )
        adaptive = adaptive_runner.map(schedule_digest_task, self.TASKS)
        assert serial == pooled == adaptive
        assert adaptive_runner.last_map_mode == "adaptive-serial"

    def test_digest_depends_on_task_not_position(self):
        reversed_results = ExperimentRunner(workers=1).map(
            schedule_digest_task, list(reversed(self.TASKS))
        )
        forward_results = ExperimentRunner(workers=1).map(
            schedule_digest_task, self.TASKS
        )
        assert reversed_results == list(reversed(forward_results))
