"""Tests for the network cost model."""

import pytest

from repro.net.cost import CostModel, MessageKinds


class TestRecord:
    def test_accumulates(self):
        cost = CostModel()
        cost.record(MessageKinds.POST, bits=100)
        cost.record(MessageKinds.POST, bits=50)
        snap = cost.snapshot()
        assert snap.messages(MessageKinds.POST) == 2
        assert snap.bits(MessageKinds.POST) == 150

    def test_multi_count(self):
        cost = CostModel()
        cost.record(MessageKinds.DHT_HOP, count=5)
        assert cost.snapshot().messages(MessageKinds.DHT_HOP) == 5

    def test_zero_count_allowed(self):
        cost = CostModel()
        cost.record(MessageKinds.DHT_HOP, count=0)
        assert cost.total_messages == 0

    def test_validation(self):
        cost = CostModel()
        with pytest.raises(ValueError):
            cost.record("x", bits=-1)
        with pytest.raises(ValueError):
            cost.record("x", count=-1)

    def test_custom_kinds_accepted(self):
        cost = CostModel()
        cost.record("gossip", bits=8)
        assert cost.snapshot().messages("gossip") == 1


class TestSnapshot:
    def test_snapshot_is_immutable_view(self):
        cost = CostModel()
        cost.record(MessageKinds.POST, bits=10)
        snap = cost.snapshot()
        cost.record(MessageKinds.POST, bits=10)
        assert snap.messages(MessageKinds.POST) == 1

    def test_totals(self):
        cost = CostModel()
        cost.record("a", bits=16)
        cost.record("b", bits=24)
        snap = cost.snapshot()
        assert snap.total_messages == 2
        assert snap.total_bits == 40
        assert snap.total_bytes == 5.0

    def test_delta(self):
        cost = CostModel()
        cost.record("a", bits=16)
        before = cost.snapshot()
        cost.record("a", bits=4)
        cost.record("b", bits=8)
        delta = cost.snapshot() - before
        assert delta.messages("a") == 1
        assert delta.bits("a") == 4
        assert delta.messages("b") == 1

    def test_missing_kind_is_zero(self):
        snap = CostModel().snapshot()
        assert snap.messages("nothing") == 0
        assert snap.bits("nothing") == 0


class TestReset:
    def test_reset_clears(self):
        cost = CostModel()
        cost.record("a", bits=16)
        cost.reset()
        assert cost.total_messages == 0
        assert cost.total_bits == 0
