"""Tests for latency estimation."""

import pytest

from repro.net.cost import CostModel
from repro.net.latency import LatencyProfile, mm1_response_time


def snapshot_with(messages_bits):
    cost = CostModel()
    for kind, (count, bits) in messages_bits.items():
        cost.record(kind, bits=bits, count=count)
    return cost.snapshot()


class TestLatencyProfile:
    def test_linear_model(self):
        profile = LatencyProfile(per_message_ms=10.0, per_kilobit_ms=2.0)
        snap = snapshot_with({"post": (3, 5000)})
        # 3 messages * 10 ms + 5 kbit * 2 ms.
        assert profile.estimate_ms(snap) == pytest.approx(40.0)

    def test_empty_snapshot(self):
        profile = LatencyProfile()
        assert profile.estimate_ms(CostModel().snapshot()) == 0.0

    def test_breakdown_sums_to_total(self):
        profile = LatencyProfile()
        snap = snapshot_with({"post": (2, 1000), "dht_hop": (5, 0)})
        by_kind = profile.estimate_ms_by_kind(snap)
        assert sum(by_kind.values()) == pytest.approx(profile.estimate_ms(snap))

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyProfile(per_message_ms=-1)
        with pytest.raises(ValueError):
            LatencyProfile(per_kilobit_ms=-0.5)
        with pytest.raises(ValueError):
            LatencyProfile(per_message_ms=-1, per_kilobit_ms=-1)

    def test_zero_cost_profile_is_legal(self):
        profile = LatencyProfile(per_message_ms=0.0, per_kilobit_ms=0.0)
        snap = snapshot_with({"post": (10, 50_000)})
        assert profile.estimate_ms(snap) == 0.0
        assert profile.estimate_ms_by_kind(snap) == {"post": 0.0}

    def test_real_query_estimate(self, tiny_engine, tiny_queries):
        from repro.core.iqn import IQNRouter

        outcome = tiny_engine.run_query(
            tiny_queries[0], IQNRouter(), max_peers=3, k=20
        )
        estimate = LatencyProfile().estimate_ms(outcome.cost)
        assert estimate > 0.0


class TestMm1:
    def test_idle_system(self):
        assert mm1_response_time(10.0, 0.0) == 10.0

    def test_superlinear_growth(self):
        """The paper's 'highly superlinear' remark: 50% load doubles,
        90% load tenfolds."""
        assert mm1_response_time(10.0, 0.5) == pytest.approx(20.0)
        assert mm1_response_time(10.0, 0.9) == pytest.approx(100.0)

    def test_halving_load_saves_superlinearly(self):
        """Why fewer contacted peers matters more than linearly."""
        at_90 = mm1_response_time(10.0, 0.9)
        at_45 = mm1_response_time(10.0, 0.45)
        assert at_90 / at_45 > 2.0

    def test_diverges_as_utilization_approaches_one(self):
        """T = S/(1-rho) blows up smoothly: each step toward rho=1 costs
        strictly more than the last."""
        times = [
            mm1_response_time(10.0, rho)
            for rho in (0.0, 0.5, 0.9, 0.99, 0.999, 0.999999)
        ]
        assert times == sorted(times)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert deltas == sorted(deltas)
        assert times[-1] == pytest.approx(10.0 / (1.0 - 0.999999))
        assert times[-1] > 1e6  # milliseconds: effectively unbounded

    def test_rejects_saturated_or_negative_utilization(self):
        for utilization in (1.0, 1.0 + 1e-12, 1.5, 100.0, -0.1, -1.0):
            with pytest.raises(ValueError):
                mm1_response_time(10.0, utilization)

    def test_rejects_nonpositive_service_time(self):
        with pytest.raises(ValueError):
            mm1_response_time(0.0, 0.5)
        with pytest.raises(ValueError):
            mm1_response_time(-10.0, 0.5)
