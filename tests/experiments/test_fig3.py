"""Tests for the Figure 3 harness (tiny scale — structure and sanity)."""

import pytest

from repro.datasets.corpus import GovCorpusConfig
from repro.experiments.fig3 import (
    FIG3_SPEC_LABELS,
    build_combination_testbed,
    build_sliding_window_testbed,
    default_selectors,
    run_recall_experiment,
)

TINY = GovCorpusConfig(
    num_docs=360,
    vocabulary_size=900,
    num_topics=4,
    topic_vocabulary_size=60,
    doc_length_mean=50,
    topic_assignment="blocked",
    topic_smear=0.8,
    seed=17,
)


@pytest.fixture(scope="module")
def testbed():
    return build_combination_testbed(
        TINY,
        num_fragments=4,
        subset_size=2,
        spec_labels=("mips-16", "bf-256"),
        num_queries=3,
        query_pool_size=12,
        query_pool_offset=0,
    )


class TestTestbedConstruction:
    def test_engine_per_spec(self, testbed):
        assert set(testbed.engines) == {"mips-16", "bf-256"}

    def test_peer_count(self, testbed):
        assert testbed.num_peers == 6  # C(4, 2)

    def test_engines_share_collections(self, testbed):
        engines = list(testbed.engines.values())
        assert engines[0].peers.keys() == engines[1].peers.keys()
        # Indexes are shared objects, not rebuilt per engine.
        assert (
            engines[0].peers["p00"].index is engines[1].peers["p00"].index
        )

    def test_queries_published(self, testbed):
        engine = testbed.engines["mips-16"]
        for query in testbed.queries:
            engine.run_query(query, default_selectors(("mips-16",))["CORI"][1],
                             max_peers=1, k=5)

    def test_engine_for_unknown_label(self, testbed):
        with pytest.raises(KeyError, match="no engine"):
            testbed.engine_for("bf-9999")

    def test_sliding_window_builder(self):
        tb = build_sliding_window_testbed(
            TINY,
            num_fragments=12,
            window=3,
            offset=2,
            spec_labels=("mips-16",),
            num_queries=2,
            query_pool_size=12,
            query_pool_offset=0,
        )
        assert tb.num_peers == 6


class TestDefaultSelectors:
    def test_method_set_matches_paper_legend(self):
        methods = default_selectors(FIG3_SPEC_LABELS)
        assert set(methods) == {
            "CORI",
            "IQN MIPs 32",
            "IQN BF 1024",
            "IQN MIPs 64",
            "IQN BF 2048",
        }


class TestRecallExperiment:
    @pytest.fixture(scope="class")
    def curves(self, testbed):
        return run_recall_experiment(testbed, max_peers=3, k=20, peer_k=10)

    def test_one_curve_per_method(self, curves, testbed):
        assert len(curves) == 1 + len(testbed.engines)

    def test_curves_monotone(self, curves):
        for curve in curves:
            for earlier, later in zip(curve.recall_at, curve.recall_at[1:]):
                assert later >= earlier - 1e-9

    def test_curves_bounded(self, curves):
        for curve in curves:
            assert all(0.0 <= r <= 1.0 for r in curve.recall_at)

    def test_depth(self, curves):
        assert all(len(c.recall_at) == 4 for c in curves)

    def test_at_accessor(self, curves):
        assert curves[0].at(0) == curves[0].recall_at[0]

    def test_custom_methods(self, testbed):
        from repro.core.iqn import IQNRouter

        curves = run_recall_experiment(
            testbed,
            max_peers=2,
            k=10,
            peer_k=5,
            methods={"only-iqn": ("mips-16", IQNRouter())},
        )
        assert [c.method for c in curves] == ["only-iqn"]
