"""Tests for the offered-load / loss-rate sweep harness."""

import pytest

from repro.core.iqn import IQNRouter
from repro.experiments.netload import NetLoadPoint, simnet_load_sweep


@pytest.fixture(scope="module")
def sweep_points(tiny_engine, tiny_queries):
    return simnet_load_sweep(
        tiny_engine,
        tiny_queries,
        IQNRouter,
        offered_qps=(2.0, 200.0),
        loss_rates=(0.0, 0.25),
        max_peers=3,
        k=20,
        seed=9,
    )


class TestSweep:
    def test_one_point_per_cell_in_sweep_order(self, sweep_points):
        cells = [(p.loss_rate, p.offered_qps) for p in sweep_points]
        assert cells == [(0.0, 2.0), (0.0, 200.0), (0.25, 2.0), (0.25, 200.0)]
        assert all(p.num_queries == 4 for p in sweep_points)

    def test_lossless_cells_are_clean(self, sweep_points):
        for point in sweep_points:
            if point.loss_rate == 0.0:
                assert point.forward_retries == 0
                assert point.timed_out_contacts == 0
                assert point.degraded_queries == 0

    def test_loss_costs_retries_or_degradation(self, sweep_points):
        lossy = [p for p in sweep_points if p.loss_rate > 0]
        assert any(
            p.forward_retries > 0 or p.degraded_queries > 0 for p in lossy
        )
        clean_mean = min(
            p.mean_latency_ms for p in sweep_points if p.loss_rate == 0.0
        )
        assert max(p.mean_latency_ms for p in lossy) > clean_mean

    def test_latency_stats_are_ordered(self, sweep_points):
        for point in sweep_points:
            assert 0 < point.mean_latency_ms <= point.max_latency_ms
            assert point.p95_latency_ms <= point.max_latency_ms
            assert 0.0 <= point.mean_recall <= 1.0

    def test_sweep_is_reproducible(self, tiny_engine, tiny_queries, sweep_points):
        again = simnet_load_sweep(
            tiny_engine,
            tiny_queries,
            IQNRouter,
            offered_qps=(2.0, 200.0),
            loss_rates=(0.0, 0.25),
            max_peers=3,
            k=20,
            seed=9,
        )
        assert again == list(sweep_points)

    def test_validation(self, tiny_engine, tiny_queries):
        with pytest.raises(ValueError):
            simnet_load_sweep(tiny_engine, [], IQNRouter)
        with pytest.raises(ValueError):
            simnet_load_sweep(
                tiny_engine, tiny_queries, IQNRouter, offered_qps=(0.0,)
            )
        with pytest.raises(ValueError):
            NetLoadPoint.from_outcomes(1.0, 0.0, [])
