"""Tests for the ablation harnesses (tiny scale)."""

import pytest

from repro.datasets.corpus import GovCorpusConfig, build_gov_corpus
from repro.datasets.partition import (
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from repro.datasets.queries import make_workload
from repro.experiments.ablations import (
    BudgetTrial,
    aggregation_ablation,
    budget_ablation,
    histogram_ablation,
    quality_novelty_ablation,
)
from repro.experiments.fig3 import build_combination_testbed
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec
from repro.synopses.mips import BITS_PER_POSITION

TINY = GovCorpusConfig(
    num_docs=360,
    vocabulary_size=900,
    num_topics=4,
    topic_vocabulary_size=60,
    doc_length_mean=50,
    topic_assignment="blocked",
    topic_smear=0.8,
    seed=17,
)


@pytest.fixture(scope="module")
def testbed():
    return build_combination_testbed(
        TINY,
        num_fragments=4,
        subset_size=2,
        spec_labels=("mips-16",),
        num_queries=3,
        query_pool_size=12,
        query_pool_offset=0,
    )


class TestAggregationAblation:
    def test_all_strategies_run(self, testbed):
        curves = aggregation_ablation(
            testbed, spec_label="mips-16", max_peers=3, k=20
        )
        assert {c.method for c in curves} == {
            "IQN per-peer",
            "IQN per-term",
            "IQN per-term+corr",
        }
        assert all(len(c.recall_at) == 4 for c in curves)


class TestPeerListFetchAblation:
    def test_modes_compared(self, testbed):
        from repro.experiments.ablations import peerlist_fetch_ablation

        trials = peerlist_fetch_ablation(
            testbed,
            spec_label="mips-16",
            max_peers=3,
            k=20,
            peer_k=10,
            peer_list_limits=(None, 3),
        )
        assert [t.mode for t in trials] == ["full", "top-3"]
        assert all(0.0 <= t.mean_final_recall <= 1.0 for t in trials)
        assert all(t.mean_peerlist_bits >= 0 for t in trials)


class TestQualityNoveltyAblation:
    def test_three_variants(self, testbed):
        curves = quality_novelty_ablation(
            testbed, spec_label="mips-16", max_peers=3, k=20
        )
        assert len(curves) == 3
        names = {c.method for c in curves}
        assert "quality * novelty (IQN)" in names


class TestHistogramAblation:
    def test_flat_vs_histogram(self, tiny_flat_and_hist_engines):
        engine_flat, engine_hist, queries = tiny_flat_and_hist_engines
        curves = histogram_ablation(
            engine_flat, engine_hist, queries, max_peers=2, k=20
        )
        assert {c.method for c in curves} == {"IQN flat", "IQN histogram"}

    @pytest.fixture(scope="class")
    def tiny_flat_and_hist_engines(self):
        corpus = build_gov_corpus(TINY)
        fragments = fragment_corpus(corpus, 8)
        collections = corpora_from_doc_id_sets(
            corpus, sliding_window_collections(fragments, 2, 2)
        )
        queries = make_workload(
            TINY, num_queries=2, pool_size=12, pool_offset=0, seed=3
        )
        terms = {t for q in queries for t in q.terms}
        spec = SynopsisSpec.parse("mips-16")
        flat = MinervaEngine(collections, spec=spec)
        flat.publish(terms)
        hist = MinervaEngine(collections, spec=spec, histogram_cells=2)
        hist.publish(terms, with_histogram=True)
        return flat, hist, queries


class TestBudgetAblation:
    def test_policies_compared(self, testbed):
        engine = testbed.engines["mips-16"]
        trials = budget_ablation(
            engine,
            testbed.queries,
            total_bits=len(
                {t for q in testbed.queries for t in q.terms}
            )
            * 8
            * BITS_PER_POSITION,
        )
        assert {t.policy for t in trials} == {"uniform", "benefit-proportional"}
        assert all(isinstance(t, BudgetTrial) for t in trials)
        assert all(t.mean_absolute_error >= 0.0 for t in trials)


class TestLoadMeasurement:
    def test_reports_structure(self, testbed):
        from repro.core.iqn import IQNRouter
        from repro.experiments.load import measure_load
        from repro.routing.cori import CoriSelector

        engine = testbed.engines["mips-16"]
        reports = measure_load(
            engine,
            testbed.queries[:2],
            {"CORI": CoriSelector(), "IQN": IQNRouter()},
            max_peers=2,
            k=20,
            peer_k=10,
            initiators_per_query=2,
        )
        assert {r.method for r in reports} == {"CORI", "IQN"}
        for report in reports:
            assert report.total_forwards == 2 * 2 * 2  # queries*inits*peers
            assert sum(report.forwards_per_peer.values()) == report.total_forwards
            assert 0.0 < report.busiest_peer_share <= 1.0
            assert report.imbalance() >= 1.0
            assert report.hottest_response_time_ms() > 0

    def test_validation(self, testbed):
        from repro.core.iqn import IQNRouter
        from repro.experiments.load import measure_load

        engine = testbed.engines["mips-16"]
        import pytest as _pytest

        with _pytest.raises(ValueError):
            measure_load(
                engine,
                testbed.queries[:1],
                {"IQN": IQNRouter()},
                max_peers=2,
                initiators_per_query=0,
            )
