"""Determinism of the experiment harnesses on the parallel engine.

The acceptance contract of :mod:`repro.parallel`: every harness produces
**byte-identical** results whether it runs serially in process
(``runner=None`` / ``--workers 1``), fanned out over a process pool
(``--workers 4``), or against a warm vs cold :class:`SetupCache`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.corpus import GovCorpusConfig
from repro.experiments.ablations import quality_novelty_ablation
from repro.experiments.fig2 import error_vs_collection_size
from repro.experiments.fig3 import cached_testbed, run_recall_experiment
from repro.experiments.load import measure_load
from repro.experiments.netload import simnet_load_sweep
from repro.parallel import ExperimentRunner
from repro.routing.cori import CoriSelector
from repro.synopses.factory import SynopsisSpec

TINY = GovCorpusConfig(
    num_docs=360,
    vocabulary_size=900,
    num_topics=4,
    topic_vocabulary_size=60,
    doc_length_mean=50,
    topic_assignment="blocked",
    topic_smear=0.8,
    seed=17,
)
TESTBED_PARAMS = dict(
    num_fragments=4,
    subset_size=2,
    spec_labels=("mips-16", "bf-256"),
    num_queries=3,
    query_pool_size=12,
    query_pool_offset=0,
)
MAX_PEERS, K, PEER_K = 3, 20, 10


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("setup-cache")


def make_runner(workers: int, cache_dir) -> ExperimentRunner:
    return ExperimentRunner(workers=workers, cache_dir=cache_dir)


def fig3_curves(runner: ExperimentRunner):
    handle = cached_testbed(runner, "combination", TINY, **TESTBED_PARAMS)
    return run_recall_experiment(
        handle.value,
        max_peers=MAX_PEERS,
        k=K,
        peer_k=PEER_K,
        runner=runner,
        testbed_handle=handle,
    )


class TestWorkerCountInvariance:
    """`--workers 1` vs `--workers 4` must be byte-for-byte identical."""

    def test_fig3_recall(self, cache_dir):
        serial = fig3_curves(make_runner(1, cache_dir))
        pooled = fig3_curves(make_runner(4, cache_dir))
        assert pickle.dumps(serial) == pickle.dumps(pooled)

    def test_fig2_error_sweep(self):
        kwargs = dict(
            sizes=(200, 400),
            specs=(SynopsisSpec.parse("mips-16"),),
            runs=3,
            seed=11,
        )
        serial = error_vs_collection_size(**kwargs)
        pooled = error_vs_collection_size(
            runner=ExperimentRunner(workers=4), **kwargs
        )
        assert pickle.dumps(serial) == pickle.dumps(pooled)

    def test_load_tally(self, cache_dir):
        serial_runner = make_runner(1, cache_dir)
        pooled_runner = make_runner(4, cache_dir)
        reports = []
        for runner in (serial_runner, pooled_runner):
            handle = cached_testbed(
                runner, "combination", TINY, **TESTBED_PARAMS
            )
            engine = handle.value.engines["mips-16"]
            reports.append(
                measure_load(
                    engine,
                    handle.value.queries,
                    {"CORI": CoriSelector(), "IQN": IQNRouter()},
                    max_peers=MAX_PEERS,
                    k=K,
                    peer_k=PEER_K,
                    initiators_per_query=2,
                    runner=runner,
                )
            )
        assert pickle.dumps(reports[0]) == pickle.dumps(reports[1])

    def test_netload_sweep(self, cache_dir):
        points = []
        for workers in (1, 4):
            runner = make_runner(workers, cache_dir)
            handle = cached_testbed(
                runner, "combination", TINY, **TESTBED_PARAMS
            )
            points.append(
                simnet_load_sweep(
                    handle.value.engines["mips-16"],
                    handle.value.queries,
                    IQNRouter,
                    offered_qps=(2.0, 50.0),
                    loss_rates=(0.0, 0.2),
                    seed=9,
                    max_peers=MAX_PEERS,
                    k=K,
                    runner=runner,
                )
            )
        assert pickle.dumps(points[0]) == pickle.dumps(points[1])

    def test_quality_novelty_ablation(self, cache_dir):
        curves = []
        for workers in (1, 4):
            runner = make_runner(workers, cache_dir)
            handle = cached_testbed(
                runner, "combination", TINY, **TESTBED_PARAMS
            )
            curves.append(
                quality_novelty_ablation(
                    handle.value,
                    spec_label="mips-16",
                    max_peers=MAX_PEERS,
                    k=K,
                    runner=runner,
                    testbed_handle=handle,
                )
            )
        assert pickle.dumps(curves[0]) == pickle.dumps(curves[1])


class TestCacheInvariance:
    """A warm cache must change wall-clock only, never the bytes."""

    def test_cold_vs_warm_setup_cache(self, tmp_path):
        cold_runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        cold = fig3_curves(cold_runner)
        assert cold_runner.cache.stats.misses == 1

        warm_runner = ExperimentRunner(workers=1, cache_dir=tmp_path)
        warm = fig3_curves(warm_runner)
        assert warm_runner.cache.stats.as_dict() == {"hits": 1, "misses": 0}
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_cache_disabled_matches_cached(self, tmp_path):
        cached = fig3_curves(ExperimentRunner(workers=1, cache_dir=tmp_path))
        uncached = fig3_curves(
            ExperimentRunner(workers=1, cache_dir=tmp_path, use_cache=False)
        )
        assert pickle.dumps(cached) == pickle.dumps(uncached)

    def test_pooled_warm_cache_matches_serial_cold(self, tmp_path):
        serial_cold = fig3_curves(
            ExperimentRunner(workers=1, cache_dir=tmp_path / "a")
        )
        pooled_cold = fig3_curves(
            ExperimentRunner(workers=4, cache_dir=tmp_path / "b")
        )
        pooled_warm = fig3_curves(
            ExperimentRunner(workers=4, cache_dir=tmp_path / "b")
        )
        reference = pickle.dumps(serial_cold)
        assert pickle.dumps(pooled_cold) == reference
        assert pickle.dumps(pooled_warm) == reference
