"""Tests for the re-posting experiment and engine.grow_peer."""

import pytest

from repro.datasets.corpus import GovCorpusConfig
from repro.experiments.reposting import (
    DEFAULT_POLICIES,
    reposting_experiment,
)
from repro.ir.documents import Document
from repro.net.cost import MessageKinds

TINY = GovCorpusConfig(
    num_docs=600,
    vocabulary_size=1500,
    num_topics=4,
    topic_vocabulary_size=80,
    doc_length_mean=60,
    topic_assignment="blocked",
    topic_smear=0.8,
    seed=41,
)


class TestGrowPeer:
    def test_collection_and_reference_updated(self, tiny_engine):
        peer_id = sorted(tiny_engine.peers)[0]
        before = tiny_engine.peers[peer_id].collection_size
        tiny_engine.grow_peer(
            peer_id,
            [Document.from_terms(900_001, ["zzznew"])],
            republish_terms=set(),
        )
        assert tiny_engine.peers[peer_id].collection_size == before + 1
        assert 900_001 in tiny_engine.reference_index.corpus

    def test_republish_charges_posts(self, tiny_engine, tiny_queries):
        peer_id = sorted(tiny_engine.peers)[1]
        term = tiny_queries[0].terms[0]
        before = tiny_engine.cost.snapshot()
        tiny_engine.grow_peer(
            peer_id,
            [Document.from_terms(900_002, [term])],
            republish_terms={term},
        )
        delta = tiny_engine.cost.snapshot() - before
        assert delta.messages(MessageKinds.POST) == 1

    def test_drifted_terms_returned(self, tiny_engine):
        peer_id = sorted(tiny_engine.peers)[2]
        drifted = tiny_engine.grow_peer(
            peer_id,
            [Document.from_terms(900_003 + i, ["freshterm"]) for i in range(3)],
            republish_terms=set(),
        )
        assert "freshterm" in drifted


class TestRepostingExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return reposting_experiment(
            TINY,
            policies={"always": 1.0, "never": None},
            rounds=2,
            num_peers=5,
            num_queries=2,
            query_pool_size=12,
            max_peers=2,
            k=15,
            peer_k=8,
        )

    def test_grid_complete(self, rows):
        assert len(rows) == 2 * 2  # policies x rounds
        assert {r.policy for r in rows} == {"always", "never"}

    def test_bits_monotone_within_policy(self, rows):
        for policy in ("always", "never"):
            bits = [
                r.cumulative_post_bits
                for r in rows
                if r.policy == policy
            ]
            assert bits == sorted(bits)

    def test_always_posts_more(self, rows):
        final = {
            r.policy: r.cumulative_post_bits
            for r in rows
            if r.round_index == 1
        }
        assert final["always"] > final["never"]

    def test_recalls_valid(self, rows):
        assert all(0.0 <= r.mean_recall <= 1.0 for r in rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            reposting_experiment(TINY, rounds=0, num_peers=4)
        with pytest.raises(ValueError):
            reposting_experiment(TINY, initial_fraction=1.5, num_peers=4)
        with pytest.raises(ValueError):
            reposting_experiment(TINY, growing_fraction=0.0, num_peers=4)
        with pytest.raises(ValueError):
            reposting_experiment(
                TINY, policies={"bad": 0.5}, num_peers=4
            )

    def test_default_policies_shape(self):
        assert set(DEFAULT_POLICIES) == {
            "always",
            "threshold-1.5",
            "threshold-2.5",
            "never",
        }
