"""Tests for the Figure 2 harness (small-scale, shape-checking)."""

import pytest

from repro.experiments.fig2 import (
    DEFAULT_SPECS,
    FIG2_LEFT_SIZES,
    FIG2_RIGHT_OVERLAPS,
    ErrorPoint,
    error_vs_collection_size,
    error_vs_overlap,
    resemblance_error,
)
from repro.synopses.factory import SynopsisSpec


class TestDefaults:
    def test_paper_legend_specs(self):
        assert [s.label for s in DEFAULT_SPECS] == ["MIPs 64", "HSs 32", "BF 2048"]

    def test_equal_bit_budget(self):
        assert len({s.size_in_bits for s in DEFAULT_SPECS}) == 1

    def test_axis_ranges(self):
        assert FIG2_LEFT_SIZES[0] >= 1000
        assert FIG2_LEFT_SIZES[-1] == 60_000
        assert FIG2_RIGHT_OVERLAPS[0] == pytest.approx(0.5)
        assert FIG2_RIGHT_OVERLAPS[-1] == pytest.approx(1 / 9)


class TestResemblanceError:
    def test_zero_error_for_exact_estimator(self):
        # With many permutations and identical sets, error ~ 0.
        spec = SynopsisSpec.parse("mips-256")
        ids = set(range(1000))
        assert resemblance_error(spec, ids, ids) == pytest.approx(0.0)

    def test_rejects_disjoint_sets(self):
        spec = SynopsisSpec.parse("mips-16")
        with pytest.raises(ValueError, match="positive"):
            resemblance_error(spec, {1, 2}, {3, 4})


class TestSweeps:
    @pytest.fixture(scope="class")
    def size_points(self):
        return error_vs_collection_size(
            sizes=(500, 4000), runs=6, seed=1
        )

    def test_grid_complete(self, size_points):
        assert len(size_points) == len(DEFAULT_SPECS) * 2
        assert all(isinstance(p, ErrorPoint) for p in size_points)
        assert all(p.runs == 6 for p in size_points)

    def test_errors_nonnegative(self, size_points):
        assert all(p.mean_relative_error >= 0.0 for p in size_points)

    def test_bloom_overload_shape(self, size_points):
        """The paper's key Figure 2 finding: once collections outgrow the
        2048-bit filter, BF error explodes while MIPs stays low."""
        at_4000 = {p.spec_label: p for p in size_points if p.x_value == 4000}
        assert at_4000["BF 2048"].mean_relative_error > 5 * at_4000[
            "MIPs 64"
        ].mean_relative_error

    def test_mips_size_independence(self, size_points):
        """MIPs error must not grow materially with collection size."""
        mips = {p.x_value: p for p in size_points if p.spec_label == "MIPs 64"}
        assert mips[4000].mean_relative_error < mips[500].mean_relative_error + 0.25

    def test_overlap_sweep(self):
        points = error_vs_overlap(
            overlaps=(0.5, 0.2), collection_size=3000, runs=6, seed=2
        )
        assert len(points) == len(DEFAULT_SPECS) * 2
        mips = [p for p in points if p.spec_label == "MIPs 64"]
        assert all(p.mean_relative_error < 1.0 for p in mips)

    def test_reproducible(self):
        a = error_vs_collection_size(sizes=(500,), runs=3, seed=9)
        b = error_vs_collection_size(sizes=(500,), runs=3, seed=9)
        assert a == b
