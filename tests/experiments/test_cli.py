"""Tests for the figure-regeneration CLI."""

import pytest

from repro.experiments.__main__ import TARGETS, main, run_target


class TestRunTarget:
    def test_matrix(self):
        text = run_target("matrix")
        assert "MIPs" in text

    def test_fig2_left_quick(self):
        text = run_target("fig2-left", quick=True)
        assert "MIPs 64" in text
        assert "docs/collection" in text

    def test_fig2_right_quick(self):
        text = run_target("fig2-right", quick=True)
        assert "mutual overlap" in text

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            run_target("fig9")


class TestMain:
    def test_prints_output(self, capsys):
        assert main(["matrix"]) == 0
        captured = capsys.readouterr()
        assert "Bloom filter" in captured.out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_all_targets_declared(self):
        assert set(TARGETS) == {
            "fig2-left",
            "fig2-right",
            "fig3-left",
            "fig3-right",
            "matrix",
            "load",
            "netload",
            "reposting",
            "churn",
            "serve",
            "hierarchy",
        }

    def test_reposting_quick(self):
        text = run_target("reposting", quick=True)
        assert "always" in text and "never" in text

    def test_load_quick(self):
        text = run_target("load", quick=True)
        assert "CORI" in text and "IQN" in text

    def test_netload_quick(self):
        text = run_target("netload", quick=True)
        assert "qps" in text and "recall" in text

    def test_serve_quick(self):
        text = run_target("serve", quick=True)
        assert "hit rate" in text and "identical" in text

    def test_churn_quick(self):
        text = run_target("churn", quick=True)
        assert "churn/min" in text and "maint msgs" in text
        assert "rescued" in text

    def test_hierarchy_quick(self):
        text = run_target("hierarchy", quick=True)
        assert "flat" in text and "super-peer" in text
        assert "msgs/q" in text

    def test_workers_flag_parses(self, capsys):
        assert main(["matrix", "--workers", "2", "--no-cache"]) == 0
        assert "Bloom filter" in capsys.readouterr().out
