"""Tests for the plain-text result formatting."""

import pytest

from repro.experiments.fig2 import ErrorPoint
from repro.experiments.fig3 import RecallCurve
from repro.experiments.report import (
    format_capability_matrix,
    format_error_points,
    format_recall_curves,
    format_table,
)


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatErrorPoints:
    def test_grid_layout(self):
        points = [
            ErrorPoint("MIPs 64", 1000, 0.1, 0.01, 5),
            ErrorPoint("BF 2048", 1000, 0.4, 0.02, 5),
            ErrorPoint("MIPs 64", 2000, 0.2, 0.01, 5),
            ErrorPoint("BF 2048", 2000, 0.5, 0.02, 5),
        ]
        text = format_error_points(points, x_name="docs")
        assert "docs" in text
        assert "MIPs 64" in text and "BF 2048" in text
        assert "1000" in text and "2000" in text

    def test_missing_cell_rendered_as_dash(self):
        points = [
            ErrorPoint("MIPs 64", 1000, 0.1, 0.01, 5),
            ErrorPoint("BF 2048", 2000, 0.5, 0.02, 5),
        ]
        text = format_error_points(points, x_name="docs")
        assert "-" in text


class TestFormatRecallCurves:
    def test_one_row_per_method(self):
        curves = [
            RecallCurve("CORI", (0.1, 0.2, 0.3)),
            RecallCurve("IQN", (0.1, 0.4, 0.6)),
        ]
        text = format_recall_curves(curves)
        assert "CORI" in text and "IQN" in text
        assert "@0" in text and "@2" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_recall_curves([])


class TestCapabilityMatrix:
    def test_section_3_4_content(self):
        text = format_capability_matrix()
        assert "Bloom filter" in text
        assert "Hash sketch" in text
        assert "MIPs" in text
        assert "heterogeneous sizes" in text
