"""Shared fixtures: small corpora, engines, and deterministic RNGs.

Everything here is sized for speed (whole-suite runtime, not realism);
the benchmarks run the paper-scale configurations.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.corpus import GovCorpusConfig, build_gov_corpus
from repro.datasets.partition import (
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
)
from repro.datasets.queries import make_workload
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def tiny_config() -> GovCorpusConfig:
    return GovCorpusConfig(
        num_docs=400,
        vocabulary_size=1200,
        num_topics=4,
        topic_vocabulary_size=80,
        doc_length_mean=60,
        topic_assignment="blocked",
        topic_smear=0.8,
        seed=99,
    )


@pytest.fixture(scope="session")
def tiny_corpus(tiny_config):
    return build_gov_corpus(tiny_config)


@pytest.fixture(scope="session")
def tiny_queries(tiny_config):
    return make_workload(
        tiny_config, num_queries=4, pool_size=12, pool_offset=0, seed=5
    )


@pytest.fixture(scope="session")
def tiny_engine(tiny_corpus, tiny_queries):
    """A published 10-peer engine over C(5, 2) collections."""
    fragments = fragment_corpus(tiny_corpus, 5)
    collections = corpora_from_doc_id_sets(
        tiny_corpus, combination_collections(fragments, 2)
    )
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-32"))
    engine.publish({t for q in tiny_queries for t in q.terms})
    return engine
