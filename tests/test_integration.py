"""End-to-end integration tests over the full stack.

These exercise the complete pipeline — corpus generation, placement,
directory publication over the Chord ring, routing, execution, merging,
recall — and assert the paper's *qualitative* claims at miniature scale.
"""

import pytest

from repro import (
    CoriSelector,
    IQNRouter,
    OneShotOverlapSelector,
    RandomSelector,
)
from repro.ir.metrics import micro_average
from repro.net.cost import MessageKinds


class TestFullPipeline:
    def test_engine_answers_all_queries(self, tiny_engine, tiny_queries):
        for query in tiny_queries:
            outcome = tiny_engine.run_query(
                query, IQNRouter(), max_peers=3, k=20, peer_k=10
            )
            assert 0.0 <= outcome.final_recall <= 1.0
            assert len(outcome.selected) <= 3

    def test_selected_peers_are_real_and_distinct(self, tiny_engine, tiny_queries):
        outcome = tiny_engine.run_query(
            tiny_queries[0], IQNRouter(), max_peers=4, k=20
        )
        assert len(set(outcome.selected)) == len(outcome.selected)
        assert set(outcome.selected) <= set(tiny_engine.peers)

    def test_initiator_never_selected(self, tiny_engine, tiny_queries):
        outcome = tiny_engine.run_query(
            tiny_queries[0], IQNRouter(), initiator_id="p00", max_peers=5, k=20
        )
        assert "p00" not in outcome.selected

    def test_routing_decision_costs_no_query_forwards(
        self, tiny_engine, tiny_queries
    ):
        """Section 1.2: IQN's decision process contacts no remote peers —
        only DHT directory lookups.  Forwards equal selected peers."""
        outcome = tiny_engine.run_query(
            tiny_queries[0], IQNRouter(), max_peers=3, k=20
        )
        assert outcome.cost.messages(MessageKinds.QUERY_FORWARD) == len(
            outcome.selected
        )
        assert outcome.cost.messages(MessageKinds.PEERLIST_FETCH) == len(
            set(tiny_queries[0].terms)
        )

    def test_merged_results_deduplicated(self, tiny_engine, tiny_queries):
        outcome = tiny_engine.run_query(
            tiny_queries[0], CoriSelector(), max_peers=4, k=20
        )
        doc_ids = [r.doc_id for r in outcome.merged]
        assert len(doc_ids) == len(set(doc_ids))


class TestPaperClaims:
    @pytest.fixture(scope="class")
    def recall_by_method(self, tiny_engine, tiny_queries):
        methods = {
            "iqn": IQNRouter(),
            "oneshot": OneShotOverlapSelector(),
            "cori": CoriSelector(),
            "random": RandomSelector(seed=4),
        }
        recalls = {}
        for name, selector in methods.items():
            recalls[name] = micro_average(
                [
                    tiny_engine.run_query(
                        q, selector, max_peers=3, k=30, peer_k=10
                    ).final_recall
                    for q in tiny_queries
                ]
            )
        return recalls

    def test_overlap_awareness_beats_quality_only(self, recall_by_method):
        """Every novelty-aware method should match or beat CORI at a
        small peer budget on overlapping collections."""
        assert recall_by_method["iqn"] >= recall_by_method["cori"] - 0.02

    def test_iqn_at_least_one_shot(self, recall_by_method):
        assert recall_by_method["iqn"] >= recall_by_method["oneshot"] - 0.05

    def test_everything_beats_nothing(self, recall_by_method):
        assert all(v > 0.0 for v in recall_by_method.values())


class TestDeterminism:
    def test_identical_runs_identical_outcomes(self, tiny_engine, tiny_queries):
        a = tiny_engine.run_query(tiny_queries[1], IQNRouter(), max_peers=3, k=20)
        b = tiny_engine.run_query(tiny_queries[1], IQNRouter(), max_peers=3, k=20)
        assert a.selected == b.selected
        assert a.recall_at == b.recall_at
