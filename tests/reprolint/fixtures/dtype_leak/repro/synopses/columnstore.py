"""Known-bad column store: inferred dtypes and an unannotated boundary fn."""

import numpy as np


def pack(values):
    # Unannotated, and the dtype is whatever numpy infers from `values`
    # (an int list packs int64; a mixed list silently packs object).
    return np.asarray(values)


def neutral_rows(count: int) -> np.ndarray:
    return np.zeros(count)  # float64 by inference, not by declaration


def boxed(values: list) -> np.ndarray:
    # The per-file rule (RPRL008) is suppressed so the repo-wide file-mode
    # gate stays clean; project mode still reports this line as RPRL102.
    return np.array(values, dtype=object)  # reprolint: disable=RPRL008
