"""Known-bad columnar view: crosses the boundary into an unannotated fn."""

import numpy as np

from ..synopses.columnstore import pack


def gather_scores(raw: list) -> np.ndarray:
    packed = pack(raw)  # cross-module call into an undeclared signature
    return packed.astype(np.float32)  # narrows the scoring dtype
