"""Known-bad experiment cell: its result inherits cross-module RNG taint."""

from ..util import jitter, stable_offset


def run_cell(config: dict, seed: int) -> dict:
    base = float(len(config))
    noisy = base + jitter()  # taints the returned result
    return {"score": noisy}


def run_cell_seeded(config: dict, seed: int) -> dict:
    base = float(len(config))
    return {"score": base + stable_offset(seed)}
