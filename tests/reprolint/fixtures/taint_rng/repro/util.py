"""Known-bad helper: draws from the process-global RNG.

Per-file linting of ``repro/experiments/cells.py`` cannot see this —
the nondeterminism lives one module away and flows through a return.
"""

import random


def jitter() -> float:
    return random.random()


def stable_offset(seed: int) -> float:
    """Compliant twin: explicit seeded generator."""
    return random.Random(seed).random()
