"""Compliant columnar view: annotated cross-boundary call, wide dtype."""

import numpy as np

from ..synopses.columnstore import pack


def gather_scores(raw: list) -> np.ndarray:
    packed = pack(raw)
    return packed.astype(np.float64)
