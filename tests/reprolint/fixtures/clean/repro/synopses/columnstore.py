"""Compliant column store: declared dtypes, fully annotated boundary."""

import numpy as np


def pack(values: list) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


def neutral_rows(count: int) -> np.ndarray:
    return np.zeros(count, dtype=np.float64)
