"""Compliant grid sweep: module-level entrypoint, plain-data payload."""

from ..parallel.pool import TaskPool


def eval_point(task: tuple) -> float:
    point, seed = task
    return float(point) + seed


def sweep(points: list, seed: int) -> list:
    pool = TaskPool(workers=4)
    tasks = [(point, seed) for point in points]
    return pool.map(eval_point, tasks)
