"""Compliant experiment cell: result is a pure function of (config, seed)."""

from ..util import stable_offset


def run_cell(config: dict, seed: int) -> dict:
    base = float(len(config))
    return {"score": base + stable_offset(seed)}
