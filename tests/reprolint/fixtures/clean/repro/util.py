"""Compliant helper: all randomness flows through an explicit seed."""

import random


def stable_offset(seed: int) -> float:
    return random.Random(seed).random()
