"""Known-bad grid sweep: unpicklable entrypoint and payload."""

from ..parallel.pool import TaskPool
from ..simnet.clock import SimClock


def sweep(points: list) -> list:
    pool = TaskPool(workers=4)
    clock = SimClock()
    tasks = [(point, clock) for point in points]  # SimClock in the payload
    return pool.map(lambda task: task[0], tasks)  # lambda entrypoint
