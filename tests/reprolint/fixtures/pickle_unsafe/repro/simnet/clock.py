"""Simulated clock: process-local state, never valid in a pickled payload."""


class SimClock:
    def __init__(self) -> None:
        self.now_ms = 0.0

    def advance(self, delta_ms: float) -> None:
        self.now_ms += delta_ms
