"""Minimal stand-in for the real TaskPool dispatch surface."""


class TaskPool:
    def __init__(self, workers: int = 2) -> None:
        self.workers = workers

    def map(self, fn, tasks):
        # Real pool pickles fn and every task for worker processes.
        return [fn(task) for task in tasks]
