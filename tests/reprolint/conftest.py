"""Make the uninstalled ``tools/reprolint`` package importable.

The linter lives in ``tools/`` (it is development tooling, not part of
the ``repro`` distribution), so its tests add that directory to
``sys.path`` the same way the CLI invocation does with
``PYTHONPATH=tools``.
"""

import sys
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
