"""End-to-end CLI tests: ``python -m reprolint`` as CI runs it.

Each test shells out with ``PYTHONPATH=tools`` from the repo root —
the exact invocation documented in the README — and asserts on exit
codes, text output, and the JSON report schema.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN_MODULE = 'GREETING = "hello"\n'

# RPRL001 is scope-free, so it fires even on files under pytest's
# tmp_path (the scoped rules only match repo-layout fragments such as
# ``src/repro``).
DIRTY_MODULE = '''\
class Sketch:
    __slots__ = ("_registers", "_cardinality")

    def merge(self, other):
        self._registers = other._registers
'''


def run_reprolint(*args, cwd=REPO_ROOT):
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "tools")}
    return subprocess.run(
        [sys.executable, "-m", "reprolint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_MODULE, encoding="utf-8")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_MODULE, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file):
        result = run_reprolint(str(clean_file))
        assert result.returncode == 0
        assert "1 file checked, no findings" in result.stdout

    def test_findings_exit_one(self, dirty_file):
        result = run_reprolint(str(dirty_file))
        assert result.returncode == 1
        assert "RPRL001" in result.stdout
        assert "1 active finding" in result.stdout

    def test_no_paths_is_a_usage_error(self):
        result = run_reprolint()
        assert result.returncode == 2
        assert "no input paths" in result.stderr

    def test_missing_path_is_a_usage_error(self, tmp_path):
        result = run_reprolint(str(tmp_path / "does_not_exist"))
        assert result.returncode == 2
        assert "no such file or directory" in result.stderr

    def test_unknown_select_id_is_a_usage_error(self, clean_file):
        result = run_reprolint("--select", "RPRL999", str(clean_file))
        assert result.returncode == 2
        assert "unknown rule id" in result.stderr


class TestTextOutput:
    def test_finding_line_has_path_location_and_rule(self, dirty_file):
        result = run_reprolint(str(dirty_file))
        first = result.stdout.splitlines()[0]
        assert first.startswith(f"{dirty_file}:4:")
        assert " RPRL001 " in first

    def test_select_filters_rules(self, dirty_file):
        result = run_reprolint("--select", "RPRL004", str(dirty_file))
        assert result.returncode == 0
        assert "no findings" in result.stdout

    def test_select_is_case_insensitive(self, dirty_file):
        result = run_reprolint("--select", "rprl001", str(dirty_file))
        assert result.returncode == 1


class TestJsonOutput:
    def test_clean_report_schema(self, clean_file):
        result = run_reprolint("--format", "json", str(clean_file))
        assert result.returncode == 0
        report = json.loads(result.stdout)
        assert report == {
            "schema_version": 2,
            "files_checked": 1,
            "findings": [],
            "summary": {"active": 0, "baselined": 0},
        }

    def test_finding_schema(self, dirty_file):
        result = run_reprolint("--format", "json", str(dirty_file))
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["schema_version"] == 2
        assert report["files_checked"] == 1
        assert report["summary"] == {"active": 1, "baselined": 0}
        (finding,) = report["findings"]
        assert finding["rule"] == "RPRL001"
        assert finding["path"] == str(dirty_file)
        assert finding["line"] == 4
        assert isinstance(finding["col"], int)
        assert finding["status"] == "active"
        assert "_cardinality" in finding["message"]

    def test_directory_walk_counts_every_file(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(CLEAN_MODULE, encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text(DIRTY_MODULE, encoding="utf-8")
        (tmp_path / "pkg" / "notes.txt").write_text("not python", encoding="utf-8")
        result = run_reprolint("--format", "json", str(tmp_path))
        report = json.loads(result.stdout)
        assert report["files_checked"] == 2
        assert len(report["findings"]) == 1


class TestListRules:
    def test_lists_all_rules_and_exits_zero(self):
        result = run_reprolint("--list-rules")
        assert result.returncode == 0
        for rule_id in ("RPRL001", "RPRL002", "RPRL003", "RPRL004", "RPRL005"):
            assert rule_id in result.stdout


class TestRepoIsClean:
    def test_src_and_tests_have_no_findings(self):
        """The acceptance gate: the shipped tree lints clean."""
        result = run_reprolint("src", "tests")
        assert result.returncode == 0, result.stdout + result.stderr
