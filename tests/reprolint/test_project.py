"""Project-mode tests: resolver, call graph, rule families, baseline.

The fixture corpus under ``tests/reprolint/fixtures/`` holds four
miniature ``repro`` packages:

- ``taint_rng`` — an experiment result inherits unseeded-RNG taint from
  a helper one module away (RPRL101);
- ``dtype_leak`` — inferred/object dtypes and an unannotated function
  called across the columnar boundary (RPRL102);
- ``pickle_unsafe`` — a lambda entrypoint and a SimClock-bearing
  payload handed to ``TaskPool.map`` (RPRL103);
- ``clean`` — compliant twins of all three, which must produce zero
  findings.

The fixtures deliberately use the package name ``repro`` so the default
:class:`~reprolint.project.base.ProjectContracts` patterns apply
without test-only configuration.
"""

import json
import subprocess
from pathlib import Path

import pytest

from reprolint.engine import REPORT_SCHEMA_VERSION
from reprolint.project import check_project
from reprolint.project.baseline import Baseline
from reprolint.project.callgraph import CallGraph
from reprolint.project.resolver import ProjectIndex

from .test_cli import run_reprolint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture(case: str) -> Path:
    return FIXTURES / case / "repro"


class TestProjectIndex:
    def test_discovers_modules_and_functions(self):
        index = ProjectIndex.build([fixture("taint_rng")])
        assert "repro.util" in index.modules
        assert "repro.experiments.cells" in index.modules
        assert "repro.util.jitter" in index.functions
        assert "repro.experiments.cells.run_cell" in index.functions

    def test_relative_imports_resolve_cross_module(self):
        index = ProjectIndex.build([fixture("taint_rng")])
        cells = index.modules["repro.experiments.cells"]
        # ``from ..util import jitter`` binds the local name to the
        # fully qualified target.
        assert cells.imports["jitter"] == "repro.util.jitter"
        assert index.canonicalize("repro.util.jitter") == "repro.util.jitter"

    def test_methods_register_under_class_qualname(self):
        index = ProjectIndex.build([fixture("pickle_unsafe")])
        assert "repro.parallel.pool.TaskPool.map" in index.functions
        info = index.functions["repro.parallel.pool.TaskPool.map"]
        assert info.cls == "repro.parallel.pool.TaskPool"

    def test_missing_package_init_is_rejected(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("X = 1\n", encoding="utf-8")
        with pytest.raises(FileNotFoundError):
            ProjectIndex.build([tmp_path / "pkg"])


class TestCallGraph:
    def test_cross_module_function_edge(self):
        index = ProjectIndex.build([fixture("taint_rng")])
        graph = CallGraph.build(index)
        edges = graph.by_caller["repro.experiments.cells.run_cell"]
        assert any(
            site.callee == "repro.util.jitter" and not site.external
            for site in edges
        )

    def test_method_edge_via_constructor_inference(self):
        # ``pool = TaskPool(...)`` then ``pool.map(...)`` must resolve
        # the receiver type and produce a method edge.
        index = ProjectIndex.build([fixture("pickle_unsafe")])
        graph = CallGraph.build(index)
        edges = graph.by_caller["repro.experiments.grid.sweep"]
        assert any(
            site.callee == "repro.parallel.pool.TaskPool.map" for site in edges
        )

    def test_external_calls_keep_canonical_names(self):
        index = ProjectIndex.build([fixture("taint_rng")])
        graph = CallGraph.build(index)
        edges = graph.by_caller["repro.util.jitter"]
        assert any(
            site.callee == "random.random" and site.external for site in edges
        )

    def test_resolves_src_repro_without_errors(self):
        """Acceptance: the analyzer covers the whole real tree."""
        index = ProjectIndex.build([REPO_ROOT / "src" / "repro"])
        graph = CallGraph.build(index)
        assert len(index.modules) > 50
        assert len(index.functions) > 300
        internal = [s for s in graph.sites if not s.external]
        assert len(internal) > 300


class TestDeterminismTaint:
    def test_cross_module_rng_reaches_experiment_result(self):
        report = check_project([fixture("taint_rng")])
        (finding,) = report.findings
        assert finding.rule_id == "RPRL101"
        assert finding.path.endswith("experiments/cells.py")
        assert "repro.util.jitter" in finding.message
        assert "random.random" in finding.message

    def test_seeded_twin_is_clean(self):
        report = check_project([fixture("taint_rng")])
        assert not any(
            "run_cell_seeded" in f.message for f in report.findings
        )


class TestColumnarDtypeContract:
    def test_fixture_findings(self):
        report = check_project([fixture("dtype_leak")])
        rules = {f.rule_id for f in report.findings}
        assert rules == {"RPRL102"}
        messages = " | ".join(f.message for f in report.findings)
        assert "without an explicit dtype" in messages
        assert "object-dtype" in messages
        assert "narrowed-float" in messages
        assert "lacks full parameter/return annotations" in messages


class TestPickleSafety:
    def test_lambda_entrypoint_and_clock_payload(self):
        report = check_project([fixture("pickle_unsafe")])
        rules = [f.rule_id for f in report.findings]
        assert rules == ["RPRL103", "RPRL103"]
        messages = " | ".join(f.message for f in report.findings)
        assert "lambda" in messages
        assert "SimClock" in messages


class TestCleanFixture:
    def test_compliant_twins_produce_no_findings(self):
        report = check_project([fixture("clean")])
        assert report.findings == []
        assert report.ok

    def test_src_repro_is_clean(self):
        """Acceptance: the fixed tree passes with an empty baseline."""
        report = check_project([REPO_ROOT / "src" / "repro"])
        assert report.findings == [], [f.format_text() for f in report.findings]


class TestSelectIgnore:
    def test_select_limits_project_rules(self):
        report = check_project([fixture("dtype_leak")], select=["RPRL101"])
        assert report.findings == []

    def test_ignore_drops_a_rule(self):
        report = check_project([fixture("dtype_leak")], ignore=["RPRL102"])
        assert report.findings == []


class TestBaseline:
    def test_roundtrip_marks_findings_baselined(self, tmp_path):
        report = check_project([fixture("taint_rng")])
        assert report.findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings).save(path)

        fresh = check_project([fixture("taint_rng")])
        applied = Baseline.load(path).apply(fresh.findings)
        assert all(f.status == "baselined" for f in applied)
        fresh.findings = applied
        assert fresh.ok  # baselined findings never fail the run

    def test_baseline_keys_ignore_line_numbers(self, tmp_path):
        # Moving a finding within its file must not invalidate the
        # baseline entry — keys are (rule, path, message), not lines.
        report = check_project([fixture("taint_rng")])
        (finding,) = report.findings
        key = Baseline.key_for(finding)
        assert finding.line not in key
        assert key[0] == "RPRL101"

    def test_unrelated_finding_stays_active(self, tmp_path):
        path = tmp_path / "baseline.json"
        taint = check_project([fixture("taint_rng")])
        Baseline.from_findings(taint.findings).save(path)
        dtype = check_project([fixture("dtype_leak")])
        applied = Baseline.load(path).apply(dtype.findings)
        assert all(f.status == "active" for f in applied)


class TestProjectCli:
    def test_json_report_schema(self):
        result = run_reprolint(
            "--project", "--format", "json", str(fixture("taint_rng"))
        )
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["summary"] == {"active": 1, "baselined": 0}
        assert set(report["project"]) == {
            "modules",
            "functions",
            "call_edges",
            "resolved_edges",
        }
        (finding,) = report["findings"]
        assert finding["rule"] == "RPRL101"
        assert finding["status"] == "active"
        assert finding["path"].endswith("cells.py")
        assert isinstance(finding["line"], int)
        assert isinstance(finding["col"], int)

    def test_clean_fixture_exits_zero(self):
        result = run_reprolint("--project", str(fixture("clean")))
        assert result.returncode == 0
        assert "no findings" in result.stdout

    def test_default_package_is_src_repro(self):
        result = run_reprolint("--project", "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["findings"] == []
        assert report["project"]["modules"] > 50

    def test_write_baseline_then_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_reprolint(
            "--project",
            "--baseline",
            str(baseline),
            "--write-baseline",
            str(fixture("pickle_unsafe")),
        )
        assert wrote.returncode == 0
        assert "wrote 2 baseline entries" in wrote.stdout

        rerun = run_reprolint(
            "--project", "--baseline", str(baseline), str(fixture("pickle_unsafe"))
        )
        assert rerun.returncode == 0
        assert "2 baselined" in rerun.stdout

    def test_missing_baseline_is_a_usage_error(self, tmp_path):
        result = run_reprolint(
            "--project",
            "--baseline",
            str(tmp_path / "nope.json"),
            str(fixture("clean")),
        )
        assert result.returncode == 2
        assert "baseline file not found" in result.stderr

    def test_write_baseline_requires_baseline_flag(self):
        result = run_reprolint("--project", "--write-baseline", str(fixture("clean")))
        assert result.returncode == 2
        assert "--write-baseline requires --baseline" in result.stderr

    def test_output_writes_json_next_to_text(self, tmp_path):
        out = tmp_path / "report.json"
        result = run_reprolint(
            "--project", "--output", str(out), str(fixture("clean"))
        )
        assert result.returncode == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["findings"] == []
        assert report["schema_version"] == REPORT_SCHEMA_VERSION

    def test_list_rules_includes_project_rules(self):
        result = run_reprolint("--list-rules")
        assert result.returncode == 0
        for rule_id in ("RPRL101", "RPRL102", "RPRL103"):
            assert rule_id in result.stdout
