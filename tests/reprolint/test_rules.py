"""Per-rule tests: each rule fires on a minimal violation, stays quiet
on the compliant twin, and honors inline suppressions.

All fixtures go through :func:`reprolint.engine.check_source` with a
fake path chosen to match (or miss) the rule's scope fragments, so the
tests also pin the scoping behavior.
"""

import textwrap

from reprolint.engine import PARSE_ERROR_ID, check_source
from reprolint.registry import all_rules, get_rule, rule_ids


def lint(source, path, only=None):
    """Lint dedented ``source`` at ``path``, optionally with one rule.

    Restricting to the rule under test keeps fixtures minimal (a
    ``src/repro`` fixture without ``__all__`` would otherwise drag
    RPRL005 into every assertion); scoping still applies because
    ``check_source`` filters the explicit rule list through
    ``applies_to``.
    """
    rules = None if only is None else [get_rule(only)]
    return check_source(textwrap.dedent(source), path, rules=rules)


def ids(findings):
    return [f.rule_id for f in findings]


IN_SCOPE = {
    "RPRL001": "scripts/anywhere.py",
    "RPRL002": "src/repro/experiments/run.py",
    "RPRL003": "src/repro/simnet/clock.py",
    "RPRL004": "src/repro/synopses/estimator.py",
    "RPRL005": "src/repro/util.py",
    "RPRL006": "src/repro/experiments/sweep.py",
    "RPRL007": "src/repro/churn/membership.py",
    "RPRL008": "src/repro/synopses/columnstore.py",
}


class TestRegistry:
    def test_eight_rules_plus_stable_ids(self):
        assert rule_ids() == [
            "RPRL001",
            "RPRL002",
            "RPRL003",
            "RPRL004",
            "RPRL005",
            "RPRL006",
            "RPRL007",
            "RPRL008",
        ]

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.name
            assert rule.rationale

    def test_scope_matching_uses_path_fragments(self):
        rule = get_rule("RPRL004")
        assert rule.applies_to("src/repro/synopses/bloom.py")
        assert rule.applies_to("src/repro/core/iqn.py")
        assert not rule.applies_to("src/repro/simnet/node.py")
        assert not rule.applies_to("tests/synopses/test_bloom.py")


class TestMutatingMethodMustInvalidateCache:
    """RPRL001 — applies to every file (scope-free)."""

    VIOLATION = """
        class Sketch:
            __slots__ = ("_registers", "_cardinality")

            def __init__(self, registers):
                self._registers = registers
                self._cardinality = None

            def merge(self, other):
                self._registers = [max(a, b) for a, b in zip(self._registers, other._registers)]
        """

    def test_mutation_without_reset_fires(self):
        findings = lint(self.VIOLATION, IN_SCOPE["RPRL001"])
        assert ids(findings) == ["RPRL001"]
        assert "Sketch.merge" in findings[0].message
        assert "_cardinality" in findings[0].message

    COMPLIANT = """
        class Sketch:
            __slots__ = ("_registers", "_cardinality")

            def __init__(self, registers):
                self._registers = registers
                self._cardinality = None

            def merge(self, other):
                self._registers = [max(a, b) for a, b in zip(self._registers, other._registers)]
                self._cardinality = None
        """

    def test_mutation_with_reset_is_clean(self):
        assert lint(self.COMPLIANT, IN_SCOPE["RPRL001"]) == []

    def test_memo_slot_detected_from_init_without_slots(self):
        source = """
            class Counter:
                def __init__(self):
                    self._buckets = []
                    self._cardinality = None

                def absorb(self, other):
                    self._buckets = other._buckets
            """
        assert ids(lint(source, IN_SCOPE["RPRL001"])) == ["RPRL001"]

    def test_subscript_store_counts_as_mutation(self):
        source = """
            class Counter:
                __slots__ = ("_buckets", "_cardinality")

                def bump(self, index):
                    self._buckets[index] += 1
            """
        assert ids(lint(source, IN_SCOPE["RPRL001"])) == ["RPRL001"]

    def test_construction_methods_are_exempt(self):
        source = """
            class Counter:
                __slots__ = ("_buckets", "_cardinality")

                def __init__(self, buckets):
                    self._buckets = buckets
                    self._cardinality = None

                def __setstate__(self, state):
                    self._buckets = state["buckets"]
                    self._cardinality = state["cardinality"]
            """
        assert lint(source, IN_SCOPE["RPRL001"]) == []

    def test_class_without_memo_slots_is_ignored(self):
        source = """
            class Plain:
                def update(self, value):
                    self.value = value
            """
        assert lint(source, IN_SCOPE["RPRL001"]) == []


class TestNoUnseededRandomness:
    """RPRL002 — scope src/repro."""

    def test_global_rng_call_fires(self):
        source = """
            import random

            def jitter():
                return random.random()
            """
        findings = lint(source, IN_SCOPE["RPRL002"], only="RPRL002")
        assert ids(findings) == ["RPRL002"]
        assert "random.random" in findings[0].message

    def test_unseeded_constructor_fires(self):
        source = """
            import random

            rng = random.Random()
            """
        assert ids(lint(source, IN_SCOPE["RPRL002"], only="RPRL002")) == ["RPRL002"]

    def test_seeded_constructor_is_clean(self):
        source = """
            import random

            rng = random.Random(7)
            """
        assert lint(source, IN_SCOPE["RPRL002"], only="RPRL002") == []

    def test_numpy_alias_is_resolved(self):
        source = """
            import numpy as np

            unseeded = np.random.default_rng()
            seeded = np.random.default_rng(1234)
            globals_call = np.random.rand(3)
            """
        findings = lint(source, IN_SCOPE["RPRL002"], only="RPRL002")
        assert ids(findings) == ["RPRL002", "RPRL002"]
        assert {f.line for f in findings} == {4, 6}

    def test_from_import_binding_is_resolved(self):
        source = """
            from random import Random

            rng = Random()
            """
        assert ids(lint(source, IN_SCOPE["RPRL002"], only="RPRL002")) == ["RPRL002"]

    def test_out_of_scope_path_is_ignored(self):
        source = """
            import random

            value = random.random()
            """
        assert lint(source, "benchmarks/bench_setup.py", only="RPRL002") == []


class TestNoWallClockInSimnet:
    """RPRL003 — scope repro/simnet."""

    def test_time_call_fires(self):
        source = """
            import time

            def stamp():
                return time.monotonic()
            """
        findings = lint(source, IN_SCOPE["RPRL003"], only="RPRL003")
        assert ids(findings) == ["RPRL003"]
        assert "time.monotonic" in findings[0].message

    def test_bare_reference_fires_without_a_call(self):
        source = """
            import time

            CLOCK_SOURCE = time.perf_counter
            """
        assert ids(lint(source, IN_SCOPE["RPRL003"], only="RPRL003")) == ["RPRL003"]

    def test_from_import_flagged_at_import_site(self):
        source = """
            from time import sleep
            """
        findings = lint(source, IN_SCOPE["RPRL003"], only="RPRL003")
        assert ids(findings) == ["RPRL003"]
        assert findings[0].line == 2
        assert "from time import sleep" in findings[0].message

    def test_datetime_now_fires(self):
        source = """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        assert ids(lint(source, IN_SCOPE["RPRL003"], only="RPRL003")) == ["RPRL003"]

    def test_virtual_time_is_clean(self):
        source = """
            def stamp(clock):
                return clock.now()
            """
        assert lint(source, IN_SCOPE["RPRL003"], only="RPRL003") == []

    def test_out_of_scope_path_is_ignored(self):
        source = """
            import time

            started = time.time()
            """
        assert lint(source, "src/repro/experiments/harness.py", only="RPRL003") == []


class TestNoFloatEquality:
    """RPRL004 — scope repro/synopses + repro/core."""

    def test_float_equality_fires(self):
        source = """
            def is_quarter(x):
                return x == 0.25
            """
        findings = lint(source, IN_SCOPE["RPRL004"], only="RPRL004")
        assert ids(findings) == ["RPRL004"]
        assert "0.25" in findings[0].message

    def test_float_inequality_operator_fires(self):
        source = """
            def differs(x):
                return x != 1.0
            """
        assert ids(lint(source, IN_SCOPE["RPRL004"], only="RPRL004")) == ["RPRL004"]

    def test_negative_literal_fires(self):
        source = """
            def check(x):
                return -1.0 == x
            """
        assert ids(lint(source, IN_SCOPE["RPRL004"], only="RPRL004")) == ["RPRL004"]

    def test_ordering_comparisons_are_clean(self):
        source = """
            def clamp(x):
                if x <= 0.0:
                    return 0.0
                return min(x, 1.0)
            """
        assert lint(source, IN_SCOPE["RPRL004"], only="RPRL004") == []

    def test_integer_equality_is_clean(self):
        source = """
            def is_empty(count):
                return count == 0
            """
        assert lint(source, IN_SCOPE["RPRL004"], only="RPRL004") == []

    def test_out_of_scope_path_is_ignored(self):
        source = """
            def is_quarter(x):
                return x == 0.25
            """
        assert lint(source, "src/repro/routing/greedy.py", only="RPRL004") == []


class TestPublicApiHygiene:
    """RPRL005 — scope src/repro."""

    def test_missing_dunder_all_fires(self):
        source = """
            def helper():
                return 1
            """
        findings = lint(source, IN_SCOPE["RPRL005"], only="RPRL005")
        assert ids(findings) == ["RPRL005"]
        assert "__all__" in findings[0].message

    def test_declared_and_defined_is_clean(self):
        source = """
            __all__ = ["helper"]

            def helper():
                return 1
            """
        assert lint(source, IN_SCOPE["RPRL005"], only="RPRL005") == []

    def test_ghost_entry_fires_with_its_name(self):
        source = """
            __all__ = ["helper", "ghost"]

            def helper():
                return 1
            """
        findings = lint(source, IN_SCOPE["RPRL005"], only="RPRL005")
        assert ids(findings) == ["RPRL005"]
        assert "'ghost'" in findings[0].message

    def test_reexported_import_satisfies_entry(self):
        source = """
            from math import isclose

            __all__ = ["isclose"]
            """
        assert lint(source, IN_SCOPE["RPRL005"], only="RPRL005") == []

    def test_dynamic_dunder_all_is_not_guessed_at(self):
        source = """
            import math

            __all__ = sorted(["helper"])

            def helper():
                return 1
            """
        assert lint(source, IN_SCOPE["RPRL005"], only="RPRL005") == []

    def test_out_of_scope_path_is_ignored(self):
        source = """
            def helper():
                return 1
            """
        assert lint(source, "tools/reprolint/helper.py", only="RPRL005") == []


class TestWorkerEntrypointsTakeSeed:
    """RPRL006 — scope src/repro, pool-importing modules only."""

    def test_seedless_entrypoint_fires(self):
        source = """
            from ..parallel import ExperimentRunner

            __all__ = ["recall_task"]

            def recall_task(task):
                return task
            """
        findings = lint(source, IN_SCOPE["RPRL006"], only="RPRL006")
        assert ids(findings) == ["RPRL006"]
        assert "'recall_task'" in findings[0].message
        assert "seed" in findings[0].message

    def test_entrypoint_with_seed_is_clean(self):
        source = """
            from repro.parallel import TaskPool

            def recall_task(task, seed):
                del seed
                return task
            """
        assert lint(source, IN_SCOPE["RPRL006"], only="RPRL006") == []

    def test_absolute_multiprocessing_import_counts(self):
        source = """
            import multiprocessing.pool

            def fan_out_task(item):
                return item
            """
        assert ids(lint(source, IN_SCOPE["RPRL006"], only="RPRL006")) == [
            "RPRL006"
        ]

    def test_concurrent_futures_import_counts(self):
        source = """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out_task(item):
                return item
            """
        assert ids(lint(source, IN_SCOPE["RPRL006"], only="RPRL006")) == [
            "RPRL006"
        ]

    def test_module_without_pool_imports_is_ignored(self):
        source = """
            def cleanup_task(item):
                return item
            """
        assert lint(source, IN_SCOPE["RPRL006"], only="RPRL006") == []

    def test_private_helpers_and_non_task_names_are_ignored(self):
        source = """
            import multiprocessing

            def _run_packed_task(packed):
                return packed

            def build_testbed(config):
                return config
            """
        assert lint(source, IN_SCOPE["RPRL006"], only="RPRL006") == []

    def test_nested_functions_are_not_entrypoints(self):
        source = """
            from ..parallel import TaskPool

            def launch(pool):
                def local_task(item):
                    return item
                return local_task
            """
        assert lint(source, IN_SCOPE["RPRL006"], only="RPRL006") == []

    def test_out_of_scope_path_is_ignored(self):
        source = """
            import multiprocessing

            def orphan_task(item):
                return item
            """
        assert lint(source, "benchmarks/bench_pool.py", only="RPRL006") == []


class TestChurnOnVirtualClock:
    """RPRL007 — scope repro/churn."""

    def test_wall_clock_read_fires(self):
        source = """
            import time

            def repost_tick():
                return time.monotonic()
            """
        findings = lint(source, IN_SCOPE["RPRL007"], only="RPRL007")
        assert ids(findings) == ["RPRL007"]
        assert "time.monotonic" in findings[0].message
        assert "SimClock" in findings[0].message

    def test_from_import_flagged_at_import_site(self):
        source = """
            from time import sleep
            """
        findings = lint(source, IN_SCOPE["RPRL007"], only="RPRL007")
        assert ids(findings) == ["RPRL007"]
        assert "from time import sleep" in findings[0].message

    def test_datetime_now_fires(self):
        source = """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        assert ids(lint(source, IN_SCOPE["RPRL007"], only="RPRL007")) == [
            "RPRL007"
        ]

    def test_seedless_event_stream_fires(self):
        source = """
            class ChurnSchedule:
                @classmethod
                def generate(cls, peer_ids, config):
                    return cls()
            """
        findings = lint(source, IN_SCOPE["RPRL007"], only="RPRL007")
        assert ids(findings) == ["RPRL007"]
        assert "'generate'" in findings[0].message
        assert "seed" in findings[0].message

    def test_seedless_events_suffix_fires(self):
        source = """
            def membership_events(peer_ids, rate):
                return []
            """
        assert ids(lint(source, IN_SCOPE["RPRL007"], only="RPRL007")) == [
            "RPRL007"
        ]

    def test_seeded_event_stream_is_clean(self):
        source = """
            class ChurnSchedule:
                @classmethod
                def generate(cls, peer_ids, config, *, seed):
                    return cls()

            def membership_events(peer_ids, rate, seed):
                return []
            """
        assert lint(source, IN_SCOPE["RPRL007"], only="RPRL007") == []

    def test_private_and_unrelated_names_are_ignored(self):
        source = """
            def _generate_internal(rng):
                return []

            def sweep(now_ms):
                return []
            """
        assert lint(source, IN_SCOPE["RPRL007"], only="RPRL007") == []

    def test_virtual_clock_scheduling_is_clean(self):
        source = """
            def schedule_ticks(clock, interval_ms, horizon_ms):
                at = interval_ms
                while at <= horizon_ms:
                    clock.call_at(at, lambda: None)
                    at += interval_ms
            """
        assert lint(source, IN_SCOPE["RPRL007"], only="RPRL007") == []

    def test_out_of_scope_path_is_ignored(self):
        source = """
            import time

            def membership_events(peer_ids):
                return time.time()
            """
        assert (
            lint(source, "src/repro/parallel/runner.py", only="RPRL007") == []
        )


class TestColumnarStaysPacked:
    """RPRL008 — scope repro/synopses/columnstore + repro/core/fastpath."""

    def test_object_dtype_keyword_fires(self):
        source = """
            import numpy as np

            def make_rows(count):
                return np.empty(count, dtype=object)
            """
        findings = lint(source, IN_SCOPE["RPRL008"], only="RPRL008")
        assert ids(findings) == ["RPRL008"]
        assert "dtype=object" in findings[0].message

    def test_np_object_attribute_fires(self):
        source = """
            import numpy as np

            def make_rows(count):
                return np.zeros(count, dtype=np.object_)
            """
        assert ids(lint(source, IN_SCOPE["RPRL008"], only="RPRL008")) == [
            "RPRL008"
        ]

    def test_string_object_dtype_fires(self):
        source = """
            import numpy as np

            def make_rows(count):
                return np.zeros(count, dtype="object")
            """
        assert ids(lint(source, IN_SCOPE["RPRL008"], only="RPRL008")) == [
            "RPRL008"
        ]

    def test_loop_over_column_attribute_fires(self):
        source = """
            class Column:
                def total(self):
                    acc = 0.0
                    for card in self._cards:
                        acc += card
                    return acc
            """
        findings = lint(source, IN_SCOPE["RPRL008"], only="RPRL008")
        assert ids(findings) == ["RPRL008"]
        assert "'_cards'" in findings[0].message

    def test_loop_over_sliced_column_fires(self):
        source = """
            class Column:
                def scan(self):
                    return [int(row) for row in self._rows[:10]]
            """
        assert ids(lint(source, IN_SCOPE["RPRL008"], only="RPRL008")) == [
            "RPRL008"
        ]

    def test_loop_over_tolist_of_column_fires(self):
        source = """
            class Column:
                def names(self):
                    out = []
                    for value in self._peer_ids.tolist():
                        out.append(value)
                    return out
            """
        assert ids(lint(source, IN_SCOPE["RPRL008"], only="RPRL008")) == [
            "RPRL008"
        ]

    def test_numeric_dtypes_and_vector_ops_are_clean(self):
        source = """
            import numpy as np

            class Column:
                def __init__(self, count):
                    self._cards = np.zeros(count, dtype=np.float64)
                    self._rows = np.zeros((count, 4), dtype=np.uint64)

                def total(self):
                    return float(self._cards.sum())
            """
        assert lint(source, IN_SCOPE["RPRL008"], only="RPRL008") == []

    def test_ingest_loop_over_objects_is_clean(self):
        source = """
            def pack(synopses, matrix):
                for index, synopsis in enumerate(synopses):
                    matrix[index] = synopsis.raw_bits
            """
        assert lint(source, IN_SCOPE["RPRL008"], only="RPRL008") == []

    def test_fastpath_is_in_scope(self):
        source = """
            class Kernel:
                def rescore(self):
                    return [float(c) for c in self._cards]
            """
        assert ids(
            lint(source, "src/repro/core/fastpath.py", only="RPRL008")
        ) == ["RPRL008"]

    def test_out_of_scope_path_is_ignored(self):
        source = """
            import numpy as np

            def make_rows(count):
                return np.empty(count, dtype=object)
            """
        assert (
            lint(source, "src/repro/synopses/bloom.py", only="RPRL008") == []
        )


class TestSuppressions:
    def test_line_directive_suppresses_that_line_only(self):
        source = """
            def check(x, y):
                first = x == 0.25  # reprolint: disable=RPRL004
                second = y == 0.5
                return first or second
            """
        findings = lint(source, IN_SCOPE["RPRL004"], only="RPRL004")
        assert ids(findings) == ["RPRL004"]
        assert findings[0].line == 4

    def test_line_directive_with_all_keyword(self):
        source = """
            def check(x):
                return x == 0.25  # reprolint: disable=all
            """
        assert lint(source, IN_SCOPE["RPRL004"], only="RPRL004") == []

    def test_file_directive_suppresses_whole_file(self):
        source = """
            # reprolint: disable-file=RPRL005

            def helper():
                return 1
            """
        assert lint(source, IN_SCOPE["RPRL005"], only="RPRL005") == []

    def test_directive_for_other_rule_does_not_suppress(self):
        source = """
            def check(x):
                return x == 0.25  # reprolint: disable=RPRL001
            """
        assert ids(lint(source, IN_SCOPE["RPRL004"], only="RPRL004")) == ["RPRL004"]


class TestMultipleRules:
    def test_findings_from_several_rules_sort_by_location(self):
        source = """
            def check(x):
                return x == 0.25
            """
        findings = lint(source, "src/repro/core/combined.py")
        assert ids(findings) == ["RPRL005", "RPRL004"]
        assert findings[0].line <= findings[1].line


class TestParseErrors:
    def test_syntax_error_yields_rprl000(self):
        findings = lint("def broken(:\n    pass\n", "src/repro/broken.py")
        assert ids(findings) == [PARSE_ERROR_ID]
        assert "syntax error" in findings[0].message

    def test_rprl000_is_not_suppressible(self):
        source = "# reprolint: disable-file=all\ndef broken(:\n    pass\n"
        assert ids(lint(source, "src/repro/broken.py")) == [PARSE_ERROR_ID]


class TestFindingFormat:
    def test_text_and_dict_round_trip_the_location(self):
        source = """
            def check(x):
                return x == 0.25
            """
        (finding,) = lint(source, IN_SCOPE["RPRL004"], only="RPRL004")
        assert finding.format_text().startswith(
            f"{IN_SCOPE['RPRL004']}:{finding.line}:{finding.col}: RPRL004 "
        )
        payload = finding.as_dict()
        assert payload["rule"] == "RPRL004"
        assert payload["path"] == IN_SCOPE["RPRL004"]
        assert payload["line"] == finding.line
