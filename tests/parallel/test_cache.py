"""Tests for the content-addressed SetupCache and its fingerprints."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.parallel import SetupCache, fingerprint_parts
from repro.parallel.cache import SETUP_SCHEMA_VERSION


@dataclasses.dataclass(frozen=True)
class FakeConfig:
    vocab: int
    smear: float


class TestFingerprint:
    def test_stable_across_calls(self):
        parts = {"config": FakeConfig(100, 0.5), "seed": 7}
        assert fingerprint_parts(parts) == fingerprint_parts(parts)

    def test_key_order_is_irrelevant(self):
        assert fingerprint_parts({"a": 1, "b": 2}) == fingerprint_parts(
            {"b": 2, "a": 1}
        )

    def test_any_ingredient_change_changes_the_digest(self):
        base = {"config": FakeConfig(100, 0.5), "seed": 7, "k": 30}
        digest = fingerprint_parts(base)
        for variant in (
            {**base, "seed": 8},
            {**base, "k": 31},
            {**base, "config": FakeConfig(100, 0.6)},
            {**base, "config": FakeConfig(101, 0.5)},
        ):
            assert fingerprint_parts(variant) != digest

    def test_dataclass_type_is_part_of_the_key(self):
        @dataclasses.dataclass(frozen=True)
        class OtherConfig:
            vocab: int
            smear: float

        assert fingerprint_parts(
            {"config": FakeConfig(1, 0.0)}
        ) != fingerprint_parts({"config": OtherConfig(1, 0.0)})

    def test_containers_and_types_fingerprint(self):
        parts = {
            "sizes": (1, 2, 3),
            "labels": {"b", "a"},
            "selector": FakeConfig,
            "nested": {"x": [1.5, None, True]},
        }
        assert fingerprint_parts(parts) == fingerprint_parts(dict(parts))

    def test_floats_distinguish_close_values(self):
        # 0.1 + 0.2 != 0.3; a %.6g-style canonicalization would collide.
        assert fingerprint_parts({"x": 0.1 + 0.2}) != fingerprint_parts(
            {"x": 0.3}
        )

    def test_unfingerprintable_ingredient_is_rejected(self):
        with pytest.raises(TypeError, match="fingerprint"):
            fingerprint_parts({"fn": lambda: None})

    def test_schema_version_is_mixed_in(self):
        # The digest must change if SETUP_SCHEMA_VERSION is bumped; pin
        # the mechanism by checking the version is part of the canonical
        # payload (a direct bump test would mutate module state).
        assert isinstance(SETUP_SCHEMA_VERSION, int)
        assert fingerprint_parts({}) != fingerprint_parts(
            {"__schema__": SETUP_SCHEMA_VERSION + 1}
        )


class TestSetupCache:
    def test_builds_once_then_hits(self, tmp_path):
        cache = SetupCache(tmp_path)
        builds = []

        def builder():
            builds.append(1)
            return {"built": len(builds)}

        parts = {"seed": 1}
        first, path = cache.get_or_build("testbed", parts, builder)
        second, path_again = cache.get_or_build("testbed", parts, builder)
        assert builds == [1]
        assert first == second == {"built": 1}
        assert path == path_again
        assert path.exists()
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1}

    def test_distinct_parts_build_distinct_artifacts(self, tmp_path):
        cache = SetupCache(tmp_path)
        _, path_a = cache.get_or_build("t", {"seed": 1}, lambda: "a")
        _, path_b = cache.get_or_build("t", {"seed": 2}, lambda: "b")
        assert path_a != path_b
        assert cache.stats.misses == 2

    def test_persists_across_cache_instances(self, tmp_path):
        SetupCache(tmp_path).get_or_build("t", {"s": 1}, lambda: "warm me")
        fresh = SetupCache(tmp_path)
        value, _ = fresh.get_or_build(
            "t", {"s": 1}, lambda: pytest.fail("must not rebuild")
        )
        assert value == "warm me"
        assert fresh.stats.as_dict() == {"hits": 1, "misses": 0}

    def test_corrupt_artifact_is_rebuilt(self, tmp_path):
        cache = SetupCache(tmp_path)
        _, path = cache.get_or_build("t", {"s": 1}, lambda: "good")
        path.write_bytes(b"not a pickle")
        fresh = SetupCache(tmp_path)
        value, _ = fresh.get_or_build("t", {"s": 1}, lambda: "rebuilt")
        assert value == "rebuilt"
        assert fresh.stats.as_dict() == {"hits": 0, "misses": 1}
        assert pickle.loads(path.read_bytes()) == "rebuilt"

    def test_disabled_cache_always_rebuilds_but_still_writes(self, tmp_path):
        cache = SetupCache(tmp_path, enabled=False)
        builds = []

        def builder():
            builds.append(1)
            return len(builds)

        first, path = cache.get_or_build("t", {"s": 1}, builder)
        second, _ = cache.get_or_build("t", {"s": 1}, builder)
        assert (first, second) == (1, 2)
        assert builds == [1, 1]
        # Workers attach by unpickling the artifact, so it must exist
        # even when reuse is off.
        assert path.exists()

    def test_memo_serves_the_same_object_without_reloading(self, tmp_path):
        cache = SetupCache(tmp_path)
        built, _ = cache.get_or_build("t", {"s": 1}, lambda: {"big": True})
        again, _ = cache.get_or_build(
            "t", {"s": 1}, lambda: pytest.fail("must not rebuild")
        )
        assert again is built  # memo hit, not an unpickled copy

    def test_memo_evicts_beyond_capacity(self, tmp_path):
        cache = SetupCache(tmp_path)
        for index in range(SetupCache.MEMO_SIZE + 1):
            cache.get_or_build("t", {"s": index}, lambda index=index: index)
        evicted, _ = cache.get_or_build(
            "t", {"s": 0}, lambda: pytest.fail("artifact hit, not rebuild")
        )
        assert evicted == 0
        assert cache.stats.misses == SetupCache.MEMO_SIZE + 1

    def test_spill_dedupes_identical_objects(self, tmp_path):
        cache = SetupCache(tmp_path)
        value = {"engine": [1, 2, 3]}
        path_a = cache.spill("engine", value)
        path_b = cache.spill("engine", {"engine": [1, 2, 3]})
        path_c = cache.spill("engine", {"engine": [1, 2, 4]})
        assert path_a == path_b
        assert path_a != path_c
        assert pickle.loads(path_a.read_bytes()) == value

    def test_default_cache_dir_is_ephemeral_temp(self):
        cache = SetupCache()
        assert cache.cache_dir.exists()
        assert "repro-setup-cache-" in cache.cache_dir.name

    def test_invalid_kind_is_rejected(self, tmp_path):
        cache = SetupCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("", "abc")
        with pytest.raises(ValueError):
            cache.path_for("../escape", "abc")
