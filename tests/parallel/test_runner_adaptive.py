"""Tests for ExperimentRunner's adaptive serial fallback.

With ``adaptive_serial_s`` set, a ``map`` over a cheap grid stays
in-process (pool startup would dominate) while an expensive grid still
fans out — and either way the results are bit-identical to the plain
serial run, because per-task seeds derive from grid position
(``TaskPool.map(start_index=...)``), never from execution mode.
"""

from __future__ import annotations

import logging
import time

import pytest

from repro.parallel import ExperimentRunner, TaskPool, derive_seed


def seed_echo_task(task, seed):
    return (task, seed)


def slow_seed_echo_task(task, seed):
    time.sleep(0.05)
    return (task, seed)


TASKS = [f"t{i}" for i in range(6)]
EXPECTED = [(task, derive_seed(0, i)) for i, task in enumerate(TASKS)]


class TestStartIndex:
    """The pool-level primitive the adaptive path is built on."""

    def test_default_matches_position_zero(self):
        assert TaskPool(1).map(seed_echo_task, TASKS) == EXPECTED

    def test_start_index_shifts_the_derived_seeds(self):
        tail = TaskPool(1).map(seed_echo_task, TASKS[2:], start_index=2)
        assert tail == EXPECTED[2:]

    def test_rejects_negative_start_index(self):
        with pytest.raises(ValueError, match="start_index"):
            TaskPool(1).map(seed_echo_task, TASKS, start_index=-1)


class TestModeSelection:
    def test_serial_runner_reports_serial(self):
        runner = ExperimentRunner(workers=1)
        runner.map(seed_echo_task, TASKS)
        assert runner.last_map_mode == "serial"

    def test_pooled_without_threshold(self):
        runner = ExperimentRunner(workers=2, use_cache=False)
        runner.map(seed_echo_task, TASKS)
        assert runner.last_map_mode == "pooled"

    def test_cheap_grid_stays_in_process(self):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=3600.0
        )
        runner.map(seed_echo_task, TASKS)
        assert runner.last_map_mode == "adaptive-serial"

    def test_expensive_grid_fans_out(self):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=1e-6
        )
        runner.map(slow_seed_echo_task, TASKS)
        assert runner.last_map_mode == "pooled"

    def test_single_task_skips_the_probe(self):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=3600.0
        )
        runner.map(seed_echo_task, TASKS[:1])
        assert runner.last_map_mode == "pooled"

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError, match="adaptive_serial_s"):
            ExperimentRunner(workers=2, adaptive_serial_s=0.0)

    def test_mode_is_logged(self, caplog):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=3600.0
        )
        with caplog.at_level(logging.INFO, logger="repro.parallel"):
            runner.map(seed_echo_task, TASKS)
        assert any("staying in-process" in r.message for r in caplog.records)


class TestResultIdentity:
    """Every mode produces the serial run's exact (task, seed) pairs."""

    def test_adaptive_serial_matches_serial(self):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=3600.0
        )
        assert runner.map(seed_echo_task, TASKS) == EXPECTED

    def test_adaptive_pooled_matches_serial(self):
        runner = ExperimentRunner(
            workers=2, use_cache=False, adaptive_serial_s=1e-6
        )
        assert runner.map(slow_seed_echo_task, TASKS) == [
            (task, seed) for task, seed in EXPECTED
        ]

    def test_plain_pooled_matches_serial(self):
        runner = ExperimentRunner(workers=2, use_cache=False)
        assert runner.map(seed_echo_task, TASKS) == EXPECTED
