"""Tests for TaskPool: ordering, determinism, failure surfacing."""

from __future__ import annotations

import os
import pickle
import random
import time

import pytest

from repro.parallel import (
    TaskFailureError,
    TaskPool,
    TaskTimeoutError,
    WorkerCrashError,
    current_setup,
)


def echo_task(task, seed):
    return task


def seeded_draw_task(task, seed):
    """Result depends only on (task, derived seed) — the determinism
    contract every real worker entrypoint must satisfy."""
    rng = random.Random(seed)
    return (task, seed, rng.random())


def setup_reader_task(task, seed):
    return (current_setup()["name"], task)


def failing_task(task, seed):
    if task == 3:
        raise ValueError("task three is cursed")
    return task


def sleeping_task(task, seed):
    time.sleep(30)
    return task


def crashing_task(task, seed):
    os._exit(13)


class TestOrderingAndDeterminism:
    def test_results_in_task_order(self):
        tasks = list(range(20))
        assert TaskPool(2).map(echo_task, tasks) == tasks

    def test_empty_task_list(self):
        assert TaskPool(4).map(echo_task, []) == []

    def test_serial_and_pooled_results_are_bit_identical(self):
        tasks = [f"t{i}" for i in range(12)]
        serial = TaskPool(1, root_seed=9).map(seeded_draw_task, tasks)
        pooled = TaskPool(3, root_seed=9).map(seeded_draw_task, tasks)
        assert pickle.dumps(serial) == pickle.dumps(pooled)

    def test_identical_across_worker_counts(self):
        tasks = list(range(15))
        results = [
            TaskPool(workers, root_seed=5).map(seeded_draw_task, tasks)
            for workers in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]

    def test_root_seed_changes_derived_seeds(self):
        first = TaskPool(1, root_seed=1).map(seeded_draw_task, ["a"])
        second = TaskPool(1, root_seed=2).map(seeded_draw_task, ["a"])
        assert first != second


class TestSetupAttachment:
    def test_serial_setup_object(self):
        pool = TaskPool(1, setup={"name": "direct"})
        assert pool.map(setup_reader_task, [0, 1]) == [
            ("direct", 0),
            ("direct", 1),
        ]

    def test_pooled_setup_via_artifact(self, tmp_path):
        path = tmp_path / "setup.pkl"
        path.write_bytes(pickle.dumps({"name": "artifact"}))
        pool = TaskPool(2, setup_path=path)
        assert pool.map(setup_reader_task, [0, 1]) == [
            ("artifact", 0),
            ("artifact", 1),
        ]

    def test_fork_inheritance_matches_artifact_load(self, tmp_path):
        path = tmp_path / "setup.pkl"
        setup = {"name": "inherited"}
        path.write_bytes(pickle.dumps(setup))
        # Passing both lets fork-start workers adopt the parent's object.
        pool = TaskPool(2, setup=setup, setup_path=path)
        assert pool.map(setup_reader_task, [7]) == [("inherited", 7)]

    def test_pooled_setup_object_without_path_is_rejected(self):
        pool = TaskPool(2, setup={"name": "no-path"})
        with pytest.raises(ValueError, match="setup_path"):
            pool.map(setup_reader_task, [0])

    def test_serial_restores_previous_setup(self):
        TaskPool(1, setup={"name": "scoped"}).map(setup_reader_task, [0])
        assert current_setup() is None


class TestFailureSurfacing:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_exception_carries_traceback_and_index(self, workers):
        with pytest.raises(TaskFailureError) as excinfo:
            TaskPool(workers).map(failing_task, list(range(6)))
        assert excinfo.value.task_index == 3
        assert "task three is cursed" in excinfo.value.remote_traceback

    def test_timeout_is_surfaced(self):
        pool = TaskPool(2, task_timeout_s=0.5)
        with pytest.raises(TaskTimeoutError):
            pool.map(sleeping_task, [0])

    def test_worker_crash_is_surfaced(self):
        with pytest.raises(WorkerCrashError):
            TaskPool(2).map(crashing_task, [0, 1])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TaskPool(-1)
        with pytest.raises(ValueError):
            TaskPool(2, task_timeout_s=0.0)
