"""Tests for deterministic per-task seed derivation."""

from repro.parallel import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_varies_with_task_id(self):
        seeds = {derive_seed(42, task_id) for task_id in range(1000)}
        assert len(seeds) == 1000

    def test_varies_with_root_seed(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_consecutive_roots_are_uncorrelated_in_low_bits(self):
        # A hash derivation (unlike root_seed + task_id arithmetic) must
        # not map (1, 1) and (2, 0) to related seeds.
        assert derive_seed(1, 1) != derive_seed(2, 0)

    def test_string_task_ids(self):
        assert derive_seed(0, "cell:3") == derive_seed(0, "cell:3")
        assert derive_seed(0, "cell:3") != derive_seed(0, "cell:4")

    def test_fits_in_63_bits_and_positive(self):
        for task_id in range(100):
            seed = derive_seed(123, task_id)
            assert 0 <= seed < 2**63

    def test_known_value_is_platform_stable(self):
        # Pinned so a platform/bit-width regression cannot silently
        # change every experiment's derived seeds.
        assert derive_seed(0, 0) == derive_seed(0, "0")
