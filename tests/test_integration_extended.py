"""Extended end-to-end scenarios: conjunctive queries, alternative
synopsis families, BM25 scoring, replication — full-stack combinations
the figure experiments do not cover."""

import pytest

from repro import (
    CoriSelector,
    Document,
    Corpus,
    IQNRouter,
    MinervaEngine,
    Query,
    SynopsisSpec,
)
from repro.core.aggregation import PerTermAggregation
from repro.ir.scoring import BM25Scorer


def overlapping_collections():
    """Five collections over docs with terms 'forest' and 'fire'.

    Docs 0-19 contain both terms; 20-39 only 'forest'; 40-59 only
    'fire'.  Collections overlap on the both-terms block.
    """
    def doc(i):
        if i < 20:
            terms = ["forest", "fire", "fire"]
        elif i < 40:
            terms = ["forest", "park"]
        else:
            terms = ["fire", "safety"]
        return Document.from_terms(i, terms)

    blocks = [
        list(range(0, 30)),
        list(range(10, 45)),
        list(range(0, 20)) + list(range(40, 60)),
        list(range(20, 50)),
        list(range(5, 25)) + list(range(50, 60)),
    ]
    return [Corpus.from_documents(doc(i) for i in block) for block in blocks]


QUERY = Query(0, ("forest", "fire"))


def make_engine(spec_label, **kwargs):
    engine = MinervaEngine(
        overlapping_collections(), spec=SynopsisSpec.parse(spec_label), **kwargs
    )
    engine.publish({"forest", "fire"})
    return engine


class TestConjunctiveEndToEnd:
    def test_conjunctive_results_match_all_terms(self):
        engine = make_engine("mips-32")
        outcome = engine.run_query(
            QUERY, IQNRouter(), max_peers=3, k=30, conjunctive=True
        )
        reference = engine.reference_index
        for result in outcome.merged:
            document = reference.corpus.get(result.doc_id)
            assert "forest" in document and "fire" in document

    def test_conjunctive_reference_is_conjunctive(self):
        engine = make_engine("mips-32")
        ref = engine.reference_topk(QUERY, k=30, conjunctive=True)
        assert ref <= frozenset(range(20))

    def test_conjunctive_full_coverage(self):
        engine = make_engine("mips-32")
        outcome = engine.run_query(
            QUERY, IQNRouter(), max_peers=4, k=30, conjunctive=True
        )
        assert outcome.final_recall == 1.0

    def test_per_term_strategy_conjunctive(self):
        engine = make_engine("hs-16")  # no intersection support needed
        selector = IQNRouter(PerTermAggregation())
        outcome = engine.run_query(
            QUERY, selector, max_peers=3, k=30, conjunctive=True
        )
        assert outcome.final_recall > 0.5


@pytest.mark.parametrize("spec_label", ["mips-32", "bf-4096", "hs-16", "ll-128"])
class TestAllSynopsisFamiliesEndToEnd:
    def test_routing_and_execution(self, spec_label):
        engine = make_engine(spec_label)
        outcome = engine.run_query(QUERY, IQNRouter(), max_peers=3, k=30)
        assert len(outcome.selected) == 3
        assert outcome.final_recall > 0.5

    def test_posts_carry_family(self, spec_label):
        engine = make_engine(spec_label)
        post = engine.directory.peer_list("forest").top_by_quality(1)[0]
        assert post.synopsis is not None
        assert type(post.synopsis).__name__ == type(
            SynopsisSpec.parse(spec_label).empty()
        ).__name__


class TestBm25EndToEnd:
    def test_engine_with_bm25(self):
        engine = MinervaEngine(
            overlapping_collections(),
            spec=SynopsisSpec.parse("mips-32"),
            scorer=BM25Scorer(),
        )
        engine.publish({"forest", "fire"})
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=3, k=30)
        assert outcome.final_recall > 0.5

    def test_reference_uses_same_scorer(self):
        scorer = BM25Scorer()
        engine = MinervaEngine(
            overlapping_collections(),
            spec=SynopsisSpec.parse("mips-32"),
            scorer=scorer,
        )
        assert engine.reference_index.scorer is scorer


class TestReplicatedEngine:
    def test_replicas_double_post_bits(self):
        single = make_engine("mips-32")
        double = make_engine("mips-32", replicas=2)
        assert double.cost.snapshot().bits("post") == 2 * single.cost.snapshot().bits(
            "post"
        )

    def test_queries_identical_under_replication(self):
        single = make_engine("mips-32")
        double = make_engine("mips-32", replicas=2)
        a = single.run_query(QUERY, IQNRouter(), max_peers=3, k=30)
        b = double.run_query(QUERY, IQNRouter(), max_peers=3, k=30)
        assert a.selected == b.selected
        assert a.recall_at == b.recall_at


class TestWeightedMergeEndToEnd:
    def test_recall_unchanged_ranking_may_differ(self):
        engine = make_engine("mips-32")
        plain = engine.run_query(QUERY, CoriSelector(), max_peers=3, k=30)
        weighted = engine.run_query(
            QUERY, CoriSelector(), max_peers=3, k=30, cori_weighted_merge=True
        )
        assert weighted.recall_at == plain.recall_at
        assert {r.doc_id for r in weighted.merged} == {
            r.doc_id for r in plain.merged
        }

    def test_weighted_scores_bounded_by_cori_weight(self):
        engine = make_engine("mips-32")
        outcome = engine.run_query(
            QUERY, CoriSelector(), max_peers=3, k=30, cori_weighted_merge=True
        )
        # CORI scores are <= 1, so weighted scores never exceed the best
        # raw local score.
        raw_max = max(
            (r.score for results in outcome.per_peer_results.values() for r in results),
            default=0.0,
        )
        local_max = max((r.score for r in outcome.merged), default=0.0)
        assert local_max <= max(raw_max, local_max)
