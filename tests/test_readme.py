"""Guard against README drift: the quickstart block must actually run."""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"


def test_quickstart_block_executes(capsys):
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README lost its python quickstart block"
    code = blocks[0]
    # Shrink the corpus so the doc test stays fast; everything else runs
    # exactly as documented.
    code = code.replace("num_docs=2000", "num_docs=400")
    namespace: dict = {}
    exec(compile(code, str(README), "exec"), namespace)  # noqa: S102
    captured = capsys.readouterr()
    assert "recall" in captured.out or "p0" in captured.out or captured.out


def test_readme_mentions_all_deliverables():
    text = README.read_text()
    for anchor in ("DESIGN.md", "EXPERIMENTS.md", "benchmarks", "examples"):
        assert anchor in text
