"""Tests for the discrete-event clock and coroutine primitives."""

import pytest

from repro.simnet.clock import SimClock, SimFuture, gather, spawn


class TestSimClock:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(30.0, lambda: fired.append("c"))
        clock.schedule(10.0, lambda: fired.append("a"))
        clock.schedule(20.0, lambda: fired.append("b"))
        clock.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 30.0

    def test_ties_break_by_insertion_order(self):
        clock = SimClock()
        fired = []
        for label in "abcde":
            clock.schedule(5.0, lambda label=label: fired.append(label))
        clock.run()
        assert fired == list("abcde")

    def test_events_can_schedule_events(self):
        clock = SimClock()
        times = []

        def first():
            times.append(clock.now)
            clock.schedule(7.0, lambda: times.append(clock.now))

        clock.schedule(3.0, first)
        clock.run()
        assert times == [3.0, 10.0]

    def test_cancel(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(5.0, lambda: fired.append("cancelled"))
        clock.schedule(6.0, lambda: fired.append("kept"))
        clock.cancel(handle)
        clock.run()
        assert fired == ["kept"]

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.schedule(10.0, lambda: fired.append(1))
        clock.schedule(100.0, lambda: fired.append(2))
        clock.run(until_ms=50.0)
        assert fired == [1]
        assert clock.now == 50.0
        clock.run()
        assert fired == [1, 2]

    def test_negative_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        clock = SimClock()
        clock.schedule(10.0, lambda: None)
        clock.run()
        with pytest.raises(ValueError):
            clock.schedule_at(5.0, lambda: None)

    def test_runaway_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(1.0, forever)

        clock.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            clock.run(max_events=100)


class TestSimFuture:
    def test_resolve_once(self):
        future = SimFuture()
        assert not future.done
        future.resolve(42)
        assert future.done and future.value == 42
        with pytest.raises(RuntimeError):
            future.resolve(43)

    def test_value_before_resolve_raises(self):
        with pytest.raises(RuntimeError):
            SimFuture().value

    def test_callback_after_resolution_fires_immediately(self):
        future = SimFuture()
        future.resolve("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.value))
        assert seen == ["x"]


class TestCoroutines:
    def test_spawn_returns_final_value(self):
        clock = SimClock()

        def sleep(delay):
            future = SimFuture()
            clock.schedule(delay, future.resolve)
            return future

        def flow():
            yield sleep(5.0)
            yield sleep(5.0)
            return clock.now

        result = spawn(flow())
        clock.run()
        assert result.value == 10.0

    def test_gather_preserves_order(self):
        clock = SimClock()
        futures = [SimFuture() for _ in range(3)]
        # Resolve out of order.
        clock.schedule(3.0, lambda: futures[0].resolve("a"))
        clock.schedule(1.0, lambda: futures[1].resolve("b"))
        clock.schedule(2.0, lambda: futures[2].resolve("c"))
        everything = gather(futures)
        clock.run()
        assert everything.value == ["a", "b", "c"]

    def test_gather_empty_resolves_immediately(self):
        assert gather([]).value == []
