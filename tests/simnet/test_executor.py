"""End-to-end tests for networked query execution.

The acceptance bar: no-fault networked runs return exactly what the
in-process engine returns; faulted runs degrade to partial results with
timed-out peers reported instead of raising; and everything is
deterministic under a fixed seed.
"""

import pytest

from repro.core.iqn import IQNRouter
from repro.ir.metrics import result_ids
from repro.simnet.executor import SimNetExecutor
from repro.simnet.faults import ChurnEvent, FaultPlan
from repro.simnet.rpc import RetryPolicy


class TestParity:
    def test_matches_in_process_engine_without_faults(self, tiny_engine, tiny_queries):
        for query in tiny_queries:
            inproc = tiny_engine.run_query(query, IQNRouter(), max_peers=3, k=20)
            networked = tiny_engine.run_query_networked(
                query, IQNRouter(), max_peers=3, k=20
            )
            assert networked.selected == inproc.selected
            assert result_ids(networked.merged) == result_ids(inproc.merged)
            assert networked.recall_at == inproc.recall_at
            assert networked.timed_out_peers == ()
            assert networked.failed_terms == ()
            assert not networked.degraded
            assert networked.latency_ms > 0.0

    def test_outcome_records_network_work(self, tiny_engine, tiny_queries):
        networked = tiny_engine.run_query_networked(
            tiny_queries[0], IQNRouter(), max_peers=3, k=20
        )
        cost = networked.outcome.cost
        assert cost.messages("query_forward") == len(networked.selected)
        assert cost.messages("peerlist_fetch") == len(networked.query.terms)
        assert networked.directory_attempts == len(networked.query.terms)
        assert all(a == 1 for a in networked.attempts_by_peer.values())


class TestDeterminism:
    def run_workload(self, engine, queries, seed):
        executor = SimNetExecutor(engine, seed=seed)
        return executor.run_workload(
            queries, IQNRouter(), interarrival_ms=20.0, max_peers=3, k=20
        )

    def test_same_seed_same_virtual_latencies(self, tiny_engine, tiny_queries):
        first = self.run_workload(tiny_engine, tiny_queries, seed=11)
        second = self.run_workload(tiny_engine, tiny_queries, seed=11)
        assert [o.latency_ms for o in first] == [o.latency_ms for o in second]
        assert [o.finished_ms for o in first] == [o.finished_ms for o in second]
        assert [result_ids(o.merged) for o in first] == [
            result_ids(o.merged) for o in second
        ]

    def test_faulted_runs_are_deterministic_too(self, tiny_engine, tiny_queries):
        def run():
            executor = SimNetExecutor(
                tiny_engine,
                faults=FaultPlan(loss_rate=0.2),
                policy=RetryPolicy(timeout_ms=150.0, max_attempts=2),
                seed=23,
            )
            outcomes = executor.run_workload(
                tiny_queries, IQNRouter(), interarrival_ms=30.0, max_peers=3, k=20
            )
            return [
                (o.latency_ms, o.timed_out_peers, o.failed_terms, o.forward_retries)
                for o in outcomes
            ]

        assert run() == run()


class TestConcurrency:
    def test_load_inflates_latency(self, tiny_engine, tiny_queries):
        # Same workload, idle vs. saturating arrival rates: shared-link
        # queueing must make the loaded run slower on average.
        workload = tiny_queries * 5
        quiet = SimNetExecutor(tiny_engine, seed=3).run_workload(
            workload, IQNRouter(), interarrival_ms=5000.0, max_peers=3, k=20
        )
        stormy = SimNetExecutor(tiny_engine, seed=3).run_workload(
            workload, IQNRouter(), interarrival_ms=1.0, max_peers=3, k=20
        )
        mean = lambda outcomes: sum(o.latency_ms for o in outcomes) / len(outcomes)
        assert mean(stormy) > mean(quiet)

    def test_queries_overlap_in_virtual_time(self, tiny_engine, tiny_queries):
        executor = SimNetExecutor(tiny_engine, seed=3)
        outcomes = executor.run_workload(
            tiny_queries, IQNRouter(), interarrival_ms=1.0, max_peers=3, k=20
        )
        # With 1 ms gaps every query starts before the previous finished.
        starts = [o.started_ms for o in outcomes]
        finishes = [o.finished_ms for o in outcomes]
        assert starts[1] < finishes[0]
        assert len(outcomes) == len(tiny_queries)


class TestDegradation:
    def test_loss_yields_partial_results_not_exceptions(
        self, tiny_engine, tiny_queries
    ):
        executor = SimNetExecutor(
            tiny_engine,
            faults=FaultPlan(loss_rate=0.35),
            policy=RetryPolicy(timeout_ms=120.0, max_attempts=2),
            seed=5,
        )
        outcomes = executor.run_workload(
            tiny_queries, IQNRouter(), interarrival_ms=50.0, max_peers=4, k=20
        )
        assert len(outcomes) == len(tiny_queries)
        assert any(o.degraded for o in outcomes)
        for outcome in outcomes:
            assert 0.0 <= outcome.final_recall <= 1.0
            for peer_id in outcome.timed_out_peers:
                assert outcome.outcome.per_peer_results[peer_id] == ()

    def test_crashed_peer_reported_as_timed_out(self, tiny_engine, tiny_queries):
        query = tiny_queries[0]
        inproc = tiny_engine.run_query(query, IQNRouter(), max_peers=3, k=20)
        victim = inproc.selected[0]
        policy = RetryPolicy(timeout_ms=100.0, max_attempts=2)
        networked = tiny_engine.run_query_networked(
            query,
            IQNRouter(),
            faults=FaultPlan(churn=(ChurnEvent(at_ms=0.0, peer_id=victim),)),
            policy=policy,
            max_peers=3,
            k=20,
        )
        # Routing still selects the victim (its Posts are stale in the
        # directory), but it never answers.
        assert victim in networked.selected
        assert victim in networked.timed_out_peers
        assert networked.attempts_by_peer[victim] == policy.max_attempts
        assert networked.final_recall <= inproc.final_recall

    def test_mid_run_crash_degrades_later_queries_only(
        self, tiny_engine, tiny_queries
    ):
        query = tiny_queries[0]
        inproc = tiny_engine.run_query(query, IQNRouter(), max_peers=3, k=20)
        victim = inproc.selected[0]
        executor = SimNetExecutor(
            tiny_engine,
            faults=FaultPlan(churn=(ChurnEvent(at_ms=5000.0, peer_id=victim),)),
            policy=RetryPolicy(timeout_ms=100.0, max_attempts=2),
            seed=2,
        )
        early = executor.submit(query, IQNRouter(), at_ms=0.0, max_peers=3, k=20)
        late = executor.submit(query, IQNRouter(), at_ms=6000.0, max_peers=3, k=20)
        executor.run()
        assert victim not in early.value.timed_out_peers
        assert victim in late.value.timed_out_peers


class TestValidation:
    def test_unpublished_terms_rejected_at_submit(self, tiny_engine):
        from repro.datasets.queries import Query

        executor = SimNetExecutor(tiny_engine)
        with pytest.raises(RuntimeError, match="never published"):
            executor.submit(
                Query(query_id=0, terms=("neverseen",)), IQNRouter()
            )

    def test_unknown_initiator_rejected(self, tiny_engine, tiny_queries):
        executor = SimNetExecutor(tiny_engine)
        with pytest.raises(KeyError):
            executor.submit(
                tiny_queries[0], IQNRouter(), initiator_id="nope"
            )

    def test_bad_workload_parameters(self, tiny_engine, tiny_queries):
        executor = SimNetExecutor(tiny_engine)
        with pytest.raises(ValueError):
            executor.run_workload(
                tiny_queries, IQNRouter(), interarrival_ms=0.0
            )
        with pytest.raises(ValueError):
            executor.run_workload(
                tiny_queries, IQNRouter(), arrivals="bursty"
            )
