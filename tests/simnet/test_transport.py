"""Tests for message delivery, the M/M/1 link model, and fault injection."""

import pytest

from repro.net.latency import LatencyProfile, mm1_response_time
from repro.simnet.clock import SimClock
from repro.simnet.faults import ChurnEvent, FaultPlan
from repro.simnet.transport import Transport


PROFILE = LatencyProfile(per_message_ms=10.0, per_kilobit_ms=1.0)


def make_transport(**kwargs):
    clock = SimClock()
    kwargs.setdefault("profile", PROFILE)
    return clock, Transport(clock, **kwargs)


class TestDelivery:
    def test_message_arrives_with_modeled_latency(self):
        clock, transport = make_transport()
        inbox = []
        transport.register("b", inbox.append)
        transport.send("query_forward", "a", "b", bits=1000, payload="hi")
        clock.run()
        assert len(inbox) == 1
        message = inbox[0]
        assert message.payload == "hi"
        assert message.src == "a" and message.dst == "b"
        # Service time 10 + 1 ms; a single arrival in the 1000 ms window
        # gives utilization 11/1000.
        expected = mm1_response_time(11.0, 11.0 / 1000.0)
        assert clock.now == pytest.approx(expected)

    def test_unknown_endpoint_is_a_black_hole(self):
        clock, transport = make_transport()
        transport.send("query_forward", "a", "nobody", bits=0)
        clock.run()
        assert transport.stats.dropped_unknown == 1
        assert transport.stats.delivered == 0

    def test_duplicate_registration_rejected(self):
        _, transport = make_transport()
        transport.register("a", lambda m: None)
        with pytest.raises(ValueError):
            transport.register("a", lambda m: None)

    def test_cost_charged_even_for_lost_messages(self):
        clock, transport = make_transport(
            faults=FaultPlan(loss_rate=0.999), seed=1
        )
        transport.register("b", lambda m: None)
        for _ in range(50):
            transport.send("post", "a", "b", bits=100)
        clock.run()
        snapshot = transport.cost.snapshot()
        assert snapshot.messages("post") == 50
        assert snapshot.bits("post") == 5000
        assert transport.stats.lost > 0

    def test_loss_is_deterministic_under_a_seed(self):
        def run(seed):
            clock, transport = make_transport(
                faults=FaultPlan(loss_rate=0.5), seed=seed
            )
            transport.register("b", lambda m: None)
            for _ in range(40):
                transport.send("post", "a", "b", bits=0)
            clock.run()
            return transport.stats.delivered

        assert run(3) == run(3)
        assert 0 < run(3) < 40


class TestQueueing:
    def test_burst_inflates_latency_superlinearly(self):
        clock, transport = make_transport()
        arrivals = []
        transport.register("b", lambda m: arrivals.append(clock.now))
        first = transport.link_delay_ms("b", 0)
        for _ in range(80):
            transport._transmit("post", "a", "b", 0, lambda: True)
        loaded = transport.link_delay_ms("b", 0)
        # 80 queued arrivals push utilization far up the M/M/1 curve.
        assert loaded > first * 2

    def test_utilization_clamped(self):
        _, transport = make_transport(max_utilization=0.9)
        for _ in range(10_000):
            transport.link_delay_ms("b", 0)
        assert transport.link_utilization("b") == pytest.approx(0.9)

    def test_window_forgets_old_arrivals(self):
        clock, transport = make_transport(queue_window_ms=100.0)
        busy = 0.0
        for _ in range(50):
            busy = transport.link_delay_ms("b", 0)
        clock.schedule(5000.0, lambda: None)
        clock.run()
        # Far in the future the window is empty again.
        assert transport.link_delay_ms("b", 0) < busy


class TestFaults:
    def test_crashed_destination_drops_messages(self):
        clock, transport = make_transport()
        inbox = []
        transport.register("b", inbox.append)
        transport.crash("b")
        transport.send("post", "a", "b", bits=0)
        clock.run()
        assert inbox == []
        assert transport.stats.dropped_crashed == 1
        transport.recover("b")
        transport.send("post", "a", "b", bits=0)
        clock.run()
        assert len(inbox) == 1

    def test_crashed_sender_sends_nothing(self):
        clock, transport = make_transport()
        inbox = []
        transport.register("b", inbox.append)
        transport.crash("a")
        transport.send("post", "a", "b", bits=0)
        clock.run()
        assert inbox == []

    def test_crash_kills_in_flight_messages(self):
        clock, transport = make_transport(
            faults=FaultPlan(churn=(ChurnEvent(at_ms=5.0, peer_id="b"),))
        )
        inbox = []
        transport.register("b", inbox.append)
        # Sent before the crash, delivered (service >= 10 ms) after it.
        transport.send("post", "a", "b", bits=0)
        clock.run()
        assert inbox == []
        assert transport.is_down("b")

    def test_scheduled_recovery(self):
        clock, transport = make_transport(
            faults=FaultPlan(
                churn=(
                    ChurnEvent(at_ms=0.0, peer_id="b"),
                    ChurnEvent(at_ms=50.0, peer_id="b", kind="recover"),
                )
            )
        )
        inbox = []
        transport.register("b", inbox.append)
        clock.schedule(60.0, lambda: transport.send("post", "a", "b", bits=0))
        clock.run()
        assert len(inbox) == 1

    def test_slowdown_scales_service_time(self):
        _, transport = make_transport(
            faults=FaultPlan(slowdowns={"slow": 3.0})
        )
        assert transport.service_time_ms("slow", 1000) == pytest.approx(
            3 * transport.service_time_ms("fast", 1000)
        )


class TestSendVia:
    def test_hops_are_charged_and_payload_arrives(self):
        clock, transport = make_transport()
        inbox = []
        transport.register("d", inbox.append)
        transport.send_via(
            "peerlist_fetch", "a", "d", via=["b", "c"], bits=500, payload="term"
        )
        clock.run()
        assert len(inbox) == 1
        assert inbox[0].payload == "term"
        snapshot = transport.cost.snapshot()
        assert snapshot.messages("dht_hop") == 2
        assert snapshot.bits("dht_hop") == 0
        assert snapshot.bits("peerlist_fetch") == 500

    def test_crashed_intermediate_kills_the_route(self):
        clock, transport = make_transport()
        inbox = []
        transport.register("d", inbox.append)
        transport.crash("b")
        transport.send_via("peerlist_fetch", "a", "d", via=["b"], bits=0)
        clock.run()
        assert inbox == []


class TestValidation:
    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(slowdowns={"p": 0.0})
        with pytest.raises(ValueError):
            ChurnEvent(at_ms=-1.0, peer_id="p")
        with pytest.raises(ValueError):
            ChurnEvent(at_ms=0.0, peer_id="p", kind="explode")
        assert FaultPlan().is_empty
        assert not FaultPlan(loss_rate=0.1).is_empty

    def test_transport_validation(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            Transport(clock, queue_window_ms=0.0)
        with pytest.raises(ValueError):
            Transport(clock, max_utilization=1.0)
