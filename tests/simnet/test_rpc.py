"""Tests for the RPC layer: timeouts, retries, backoff, degradation."""

import pytest

from repro.net.latency import LatencyProfile
from repro.simnet.clock import SimClock
from repro.simnet.faults import ChurnEvent, FaultPlan
from repro.simnet.rpc import RetryPolicy, RpcLayer
from repro.simnet.transport import Transport


def make_rpc(policy=None, faults=None, seed=0):
    clock = SimClock()
    transport = Transport(
        clock,
        profile=LatencyProfile(per_message_ms=10.0, per_kilobit_ms=0.0),
        faults=faults,
        seed=seed,
    )
    return clock, transport, RpcLayer(transport, policy=policy)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            timeout_ms=100.0, backoff=2.0, max_timeout_ms=350.0, max_attempts=5
        )
        assert policy.timeout_for(0) == 100.0
        assert policy.timeout_for(1) == 200.0
        assert policy.timeout_for(2) == 350.0  # capped, not 400
        assert policy.timeout_for(3) == 350.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=100.0, max_timeout_ms=50.0)
        with pytest.raises(ValueError):
            RetryPolicy().timeout_for(-1)


class TestCall:
    def test_round_trip(self):
        clock, _, rpc = make_rpc()
        rpc.serve("server", "echo", lambda payload: (payload.upper(), 64, 5.0))
        result_future = rpc.call("client", "server", "echo", payload="hello")
        clock.run()
        result = result_future.value
        assert result.ok
        assert result.value == "HELLO"
        assert result.attempts == 1
        assert result.retries == 0
        # Request ~10ms + service 5ms + reply ~10ms, plus queueing slack.
        assert result.latency_ms > 25.0

    def test_duplicate_serve_rejected(self):
        _, _, rpc = make_rpc()
        rpc.serve("server", "echo", lambda p: (p, 0, 0.0))
        with pytest.raises(ValueError):
            rpc.serve("server", "echo", lambda p: (p, 0, 0.0))

    def test_unserved_destination_times_out(self):
        policy = RetryPolicy(timeout_ms=100.0, max_attempts=3, backoff=2.0)
        clock, _, rpc = make_rpc(policy=policy)
        result_future = rpc.call("client", "ghost", "echo")
        clock.run()
        result = result_future.value
        assert not result.ok
        assert result.timed_out
        assert result.attempts == 3
        # Gave up after 100 + 200 + 400 ms of timeouts.
        assert result.latency_ms == pytest.approx(700.0)

    def test_retry_succeeds_after_server_recovers(self):
        policy = RetryPolicy(timeout_ms=500.0, max_attempts=3, backoff=2.0)
        faults = FaultPlan(
            churn=(
                ChurnEvent(at_ms=0.0, peer_id="server"),
                ChurnEvent(at_ms=600.0, peer_id="server", kind="recover"),
            )
        )
        clock, _, rpc = make_rpc(policy=policy, faults=faults)
        rpc.serve("server", "echo", lambda p: (p, 0, 1.0))
        result_future = rpc.call("client", "server", "echo", payload=7)
        clock.run()
        result = result_future.value
        # Attempts at 0 (dropped) and 500 (dropped in flight? no —
        # delivered at ~510, server still down) fail; 1500 succeeds.
        assert result.ok
        assert result.value == 7
        assert result.attempts == 3

    def test_retries_are_charged_as_messages(self):
        policy = RetryPolicy(timeout_ms=50.0, max_attempts=4)
        clock, transport, rpc = make_rpc(policy=policy)
        rpc.call("client", "ghost", "fetch", request_bits=100)
        clock.run()
        assert transport.cost.snapshot().messages("fetch") == 4
        assert transport.cost.snapshot().bits("fetch") == 400

    def test_slow_reply_beats_retry(self):
        # Service time exceeds the first timeout: the retry fires, but
        # the original (slow) reply still completes the call.
        policy = RetryPolicy(timeout_ms=60.0, max_attempts=3)
        clock, _, rpc = make_rpc(policy=policy)
        calls = {"count": 0}

        def handler(payload):
            calls["count"] += 1
            return payload, 0, 100.0

        rpc.serve("server", "echo", handler)
        result_future = rpc.call("client", "server", "echo", payload="x")
        clock.run()
        result = result_future.value
        assert result.ok
        assert result.attempts == 2  # a retry was sent before the reply landed
        assert calls["count"] == 2  # and the server served both requests

    def test_handler_returning_none_behaves_like_a_timeout(self):
        policy = RetryPolicy(timeout_ms=50.0, max_attempts=2)
        clock, _, rpc = make_rpc(policy=policy)
        rpc.serve("server", "echo", lambda payload: None)
        result_future = rpc.call("client", "server", "echo")
        clock.run()
        assert not result_future.value.ok

    def test_request_routes_via_hops(self):
        clock, transport, rpc = make_rpc()
        rpc.serve("owner", "peerlist_fetch", lambda term: (term, 0, 1.0))
        result_future = rpc.call(
            "init", "owner", "peerlist_fetch", payload="t", via=["m1", "m2"]
        )
        clock.run()
        assert result_future.value.ok
        assert transport.cost.snapshot().messages("dht_hop") == 2
