"""Smoke checks on the example scripts.

Full example runs take minutes; the test suite verifies that every
example compiles and that its imports resolve (the drift that actually
breaks examples), plus runs the two fastest end to end.
"""

import pathlib
import py_compile
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Import every module the example imports (no main() execution)."""
    import ast
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )


def test_fastest_example_runs_end_to_end(capsys):
    """real_text_search is seconds-fast; run it for real."""
    runpy.run_path(str(EXAMPLES_DIR / "real_text_search.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "recall" in captured.out


def test_synopsis_tour_runs_end_to_end(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "synopsis_tour.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "Figure 1" in captured.out


def test_simnet_outage_churn_demo_runs_end_to_end(capsys, monkeypatch):
    """The outage example's --quick mode exercises all three acts: the
    clean run, the fault-plan outage, and the live churn service with a
    peer crashing mid-query and the query degrading gracefully."""
    monkeypatch.setattr(
        "sys.argv", ["simnet_outage.py", "--quick"], raising=False
    )
    runpy.run_path(str(EXAMPLES_DIR / "simnet_outage.py"), run_name="__main__")
    captured = capsys.readouterr()
    assert "clean run" in captured.out
    assert "outage run" in captured.out
    assert "churn run" in captured.out
    assert "every query completed" in captured.out
    # The robustness path demonstrably fired: a selected peer was dead
    # and the next-ranked spare answered in its place.
    assert "rescued by spares" in captured.out
