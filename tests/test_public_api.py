"""Guards on the public API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.synopses",
    "repro.ir",
    "repro.dht",
    "repro.net",
    "repro.datasets",
    "repro.minerva",
    "repro.routing",
    "repro.core",
    "repro.experiments",
    "repro.simnet",
    "repro.serving",
]


class TestSimnetSurface:
    """The simulator's public names are re-exported at the top level."""

    def test_top_level_exports(self):
        for name in (
            "SimClock",
            "Transport",
            "FaultPlan",
            "ChurnEvent",
            "RetryPolicy",
            "SimNetExecutor",
            "NetworkedQueryOutcome",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name, None) is not None, name

    def test_engine_exposes_networked_mode(self):
        assert callable(getattr(repro.MinervaEngine, "run_query_networked"))


class TestAllExportsResolve:
    def test_top_level(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name} in __all__ but missing"
            )

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_modules_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 20

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"
