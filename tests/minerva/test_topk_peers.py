"""Tests for distributed top-k peer retrieval (NRA over PeerLists)."""

import pytest

from repro.dht.ring import ChordRing
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.minerva.topk_peers import fetch_top_k_peers
from repro.net.cost import CostModel, MessageKinds
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")


def make_post(peer_id, term, max_score, cdf=10):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=max_score,
        avg_score=max_score / 2,
        term_space_size=100,
        synopsis=SPEC.build(range(cdf)),
    )


@pytest.fixture
def directory():
    ring = ChordRing([f"n{i}" for i in range(8)], bits=16)
    return Directory(ring, cost=CostModel())


def publish_scores(directory, term, scores):
    """scores: {peer_id: max_score}"""
    for peer_id, score in scores.items():
        directory.publish(make_post(peer_id, term, score))


def brute_force_topk(score_tables, k):
    totals = {}
    for scores in score_tables:
        for peer, value in scores.items():
            totals[peer] = totals.get(peer, 0.0) + value
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return [peer for peer, _ in ranked[:k]]


class TestBatchAccess:
    def test_batches_are_quality_ordered_slices(self, directory):
        publish_scores(
            directory, "apple", {f"p{i}": float(i) for i in range(20)}
        )
        first = directory.peer_list_batch("apple", offset=0, limit=5)
        second = directory.peer_list_batch("apple", offset=5, limit=5)
        scores = [p.max_score for p in first + second]
        assert scores == sorted(scores, reverse=True)
        assert len(set(p.peer_id for p in first + second)) == 10

    def test_unknown_term_is_empty(self, directory):
        assert directory.peer_list_batch("nope", offset=0, limit=5) == []

    def test_batch_charges_slice_payload_only(self, directory):
        publish_scores(
            directory, "apple", {f"p{i}": float(i) for i in range(20)}
        )
        before = directory.cost.snapshot()
        batch = directory.peer_list_batch("apple", offset=0, limit=3)
        delta = directory.cost.snapshot() - before
        assert delta.bits(MessageKinds.PEERLIST_FETCH) == sum(
            p.size_in_bits for p in batch
        )

    def test_validation(self, directory):
        with pytest.raises(ValueError):
            directory.peer_list_batch("x", offset=-1, limit=5)
        with pytest.raises(ValueError):
            directory.peer_list_batch("x", offset=0, limit=0)


class TestTopKCorrectness:
    def test_matches_brute_force_single_term(self, directory):
        scores = {f"p{i:02d}": float(100 - i) for i in range(40)}
        publish_scores(directory, "apple", scores)
        result = fetch_top_k_peers(directory, ("apple",), 5, batch_size=4)
        assert result.top_peers == brute_force_topk([scores], 5)

    def test_matches_brute_force_two_terms(self, directory):
        scores_a = {f"p{i:02d}": float((i * 7) % 50) for i in range(40)}
        scores_b = {f"p{i:02d}": float((i * 13) % 50) for i in range(40)}
        publish_scores(directory, "apple", scores_a)
        publish_scores(directory, "pear", scores_b)
        result = fetch_top_k_peers(directory, ("apple", "pear"), 6, batch_size=5)
        assert set(result.top_peers) == set(
            brute_force_topk([scores_a, scores_b], 6)
        )

    def test_disjoint_peer_sets_across_terms(self, directory):
        publish_scores(directory, "apple", {"a1": 9.0, "a2": 8.0})
        publish_scores(directory, "pear", {"b1": 10.0, "b2": 1.0})
        result = fetch_top_k_peers(directory, ("apple", "pear"), 2, batch_size=2)
        assert set(result.top_peers) == {"b1", "a1"}

    def test_k_larger_than_network(self, directory):
        publish_scores(directory, "apple", {"p1": 1.0, "p2": 2.0})
        result = fetch_top_k_peers(directory, ("apple",), 10)
        assert set(result.top_peers) == {"p1", "p2"}
        assert result.exhausted


class TestTopKEfficiency:
    def test_fetches_fraction_of_large_list(self, directory):
        """A steeply skewed list should resolve top-3 after few batches."""
        scores = {f"p{i:03d}": 1000.0 / (i + 1) for i in range(200)}
        publish_scores(directory, "apple", scores)
        result = fetch_top_k_peers(directory, ("apple",), 3, batch_size=10)
        assert result.top_peers == brute_force_topk([scores], 3)
        assert result.posts_fetched < 60  # far less than 200

    def test_partial_posts_cover_top_peers(self, directory):
        scores = {f"p{i:02d}": float(50 - i) for i in range(50)}
        publish_scores(directory, "apple", scores)
        result = fetch_top_k_peers(directory, ("apple",), 4, batch_size=8)
        for peer in result.top_peers:
            assert peer in result.posts_by_term["apple"]


class TestValidation:
    def test_bad_arguments(self, directory):
        with pytest.raises(ValueError):
            fetch_top_k_peers(directory, ("a",), 0)
        with pytest.raises(ValueError):
            fetch_top_k_peers(directory, ("a",), 3, batch_size=0)
        with pytest.raises(ValueError):
            fetch_top_k_peers(directory, (), 3)


class TestEngineIntegration:
    def test_run_query_with_peer_list_limit(self, tiny_engine, tiny_queries):
        full = tiny_engine.run_query(
            tiny_queries[0], _iqn(), max_peers=3, k=20
        )
        limited = tiny_engine.run_query(
            tiny_queries[0], _iqn(), max_peers=3, k=20, peer_list_limit=5
        )
        assert len(limited.selected) <= 3
        # The limited run must select only peers from the fetched shortlist
        # and still achieve sane recall.
        assert limited.final_recall > 0.0
        assert limited.final_recall <= 1.0
        assert full.selected  # sanity: the full run worked too


def _iqn():
    from repro.core.iqn import IQNRouter

    return IQNRouter()
