"""Property-based tests for the NRA top-k fetcher.

The central invariant: for *any* score distribution over any number of
peers and terms, the threshold algorithm's returned set equals the
brute-force top-k by summed quality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.ring import ChordRing
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.minerva.topk_peers import fetch_top_k_peers
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")
_SHARED_SYNOPSIS = SPEC.build(range(5))

score_tables = st.lists(
    st.dictionaries(
        keys=st.integers(min_value=0, max_value=30).map(lambda i: f"p{i:02d}"),
        values=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=20,
    ),
    min_size=1,
    max_size=3,
)


def build_directory(tables):
    ring = ChordRing([f"n{i}" for i in range(4)], bits=16)
    directory = Directory(ring)
    for index, table in enumerate(tables):
        term = f"term{index}"
        for peer_id, score in table.items():
            directory.publish(
                Post(
                    peer_id=peer_id,
                    term=term,
                    cdf=5,
                    max_score=score,
                    avg_score=score / 2,
                    term_space_size=10,
                    synopsis=_SHARED_SYNOPSIS,
                )
            )
    return directory, tuple(f"term{i}" for i in range(len(tables)))


def brute_force(tables, k):
    totals = {}
    for table in tables:
        for peer, value in table.items():
            totals[peer] = totals.get(peer, 0.0) + value
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return [p for p, _ in ranked[:k]], totals


class TestNraProperties:
    @given(score_tables, st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_topk_set_matches_brute_force(self, tables, k, batch_size):
        directory, terms = build_directory(tables)
        result = fetch_top_k_peers(directory, terms, k, batch_size=batch_size)
        expected, totals = brute_force(tables, k)
        if not totals:
            assert result.top_peers == []
            return
        # Set equality up to score ties at the k-th position: any peer
        # whose total equals the k-th score is an equally valid answer.
        got_scores = sorted((totals[p] for p in result.top_peers), reverse=True)
        want_scores = sorted((totals[p] for p in expected), reverse=True)
        assert got_scores == want_scores

    @given(score_tables, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_fetched_posts_never_exceed_published(self, tables, k):
        directory, terms = build_directory(tables)
        result = fetch_top_k_peers(directory, terms, k, batch_size=4)
        published = sum(len(t) for t in tables)
        assert result.posts_fetched <= published

    @given(score_tables)
    @settings(max_examples=40, deadline=None)
    def test_top_peers_within_shortlist(self, tables):
        directory, terms = build_directory(tables)
        result = fetch_top_k_peers(directory, terms, 3, batch_size=4)
        assert set(result.top_peers) <= result.shortlist
