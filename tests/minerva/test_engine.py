"""Tests for the assembled MINERVA engine."""

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.net.cost import MessageKinds
from repro.routing.cori import CoriSelector
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")


def make_collections():
    """Three small overlapping collections with a known structure."""
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(12)
    }
    groups = [range(0, 8), range(4, 12), range(0, 12, 2)]
    return [
        Corpus.from_documents(docs[i] for i in group) for group in groups
    ]


@pytest.fixture
def engine():
    engine = MinervaEngine(make_collections(), spec=SPEC)
    engine.publish({"apple", "banana"})
    return engine


QUERY = Query(0, ("apple", "banana"))


class TestConstruction:
    def test_peer_ids(self, engine):
        assert sorted(engine.peers) == ["p00", "p01", "p02"]

    def test_needs_collections(self):
        with pytest.raises(ValueError):
            MinervaEngine([], spec=SPEC)

    def test_index_count_mismatch_rejected(self):
        collections = make_collections()
        with pytest.raises(ValueError):
            MinervaEngine(collections, spec=SPEC, indexes=[])

    def test_ring_covers_peers(self, engine):
        assert len(engine.ring) == 3


class TestPublish:
    def test_publish_counts(self):
        engine = MinervaEngine(make_collections(), spec=SPEC)
        published = engine.publish({"apple"})
        assert published == 3  # every peer holds "apple"

    def test_publish_skips_unknown_terms(self):
        engine = MinervaEngine(make_collections(), spec=SPEC)
        assert engine.publish({"zzz"}) == 0

    def test_publish_all_terms(self):
        engine = MinervaEngine(make_collections(), spec=SPEC)
        published = engine.publish()
        assert published == sum(
            len(p.index.vocabulary) for p in engine.peers.values()
        )

    def test_unpublished_query_rejected(self):
        engine = MinervaEngine(make_collections(), spec=SPEC)
        with pytest.raises(RuntimeError, match="never published"):
            engine.run_query(QUERY, CoriSelector(), max_peers=1)


class TestReferenceEngine:
    def test_reference_is_union(self, engine):
        assert len(engine.reference_index.corpus) == 12

    def test_reference_topk(self, engine):
        top = engine.reference_topk(QUERY, k=5)
        assert len(top) == 5
        assert top <= engine.reference_index.corpus.doc_ids


class TestContext:
    def test_context_shape(self, engine):
        context = engine.make_context(QUERY, initiator_id="p00", k=5)
        assert context.num_peers == 3
        assert set(context.peer_lists) == {"apple", "banana"}
        assert context.initiator.peer_id == "p00"
        assert context.initiator.result_doc_ids  # local result nonempty

    def test_candidates_exclude_initiator(self, engine):
        context = engine.make_context(QUERY, initiator_id="p00", k=5)
        ids = {c.peer_id for c in context.candidates()}
        assert ids == {"p01", "p02"}

    def test_unknown_initiator(self, engine):
        with pytest.raises(KeyError):
            engine.make_context(QUERY, initiator_id="nope")


class TestExecution:
    def test_execute_charges_messages(self, engine):
        before = engine.cost.snapshot()
        engine.execute(QUERY, ["p01", "p02"], k=5)
        delta = engine.cost.snapshot() - before
        assert delta.messages(MessageKinds.QUERY_FORWARD) == 2
        assert delta.messages(MessageKinds.RESULT_RETURN) == 2

    def test_execute_returns_per_peer_results(self, engine):
        per_peer = engine.execute(QUERY, ["p01"], k=5)
        assert set(per_peer) == {"p01"}
        assert all(r.score > 0 for r in per_peer["p01"])


class TestRunQuery:
    def test_outcome_shape(self, engine):
        outcome = engine.run_query(
            QUERY, CoriSelector(), initiator_id="p00", max_peers=2, k=8
        )
        assert outcome.initiator_id == "p00"
        assert len(outcome.selected) == 2
        assert len(outcome.recall_at) == 3  # local + 2 peers
        assert outcome.final_recall == outcome.recall_at[-1]

    def test_recall_monotone(self, engine):
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=2, k=8)
        for earlier, later in zip(outcome.recall_at, outcome.recall_at[1:]):
            assert later >= earlier

    def test_all_peers_reach_full_recall(self, engine):
        """Querying everyone must retrieve everything the centralized
        engine finds (same scoring scheme, peer_k defaults to k)."""
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=2, k=8)
        assert outcome.final_recall == pytest.approx(1.0)

    def test_default_initiator_rotates(self, engine):
        q0 = Query(0, ("apple",))
        q1 = Query(1, ("apple",))
        out0 = engine.run_query(q0, CoriSelector(), max_peers=1, k=5)
        out1 = engine.run_query(q1, CoriSelector(), max_peers=1, k=5)
        assert out0.initiator_id != out1.initiator_id

    def test_iqn_runs_end_to_end(self, engine):
        outcome = engine.run_query(QUERY, IQNRouter(), max_peers=2, k=8)
        assert len(outcome.selected) == 2

    def test_peer_k_limits_contributions(self, engine):
        outcome = engine.run_query(
            QUERY, CoriSelector(), max_peers=2, k=8, peer_k=1
        )
        assert all(len(r) <= 1 for r in outcome.per_peer_results.values())

    def test_peer_k_validation(self, engine):
        with pytest.raises(ValueError):
            engine.run_query(QUERY, CoriSelector(), max_peers=1, k=5, peer_k=0)

    def test_routing_stats_surfaced_for_iqn(self, engine):
        outcome = engine.run_query(QUERY, IQNRouter(), max_peers=2, k=8)
        stats = outcome.routing_stats
        assert stats is not None
        assert stats.mode in ("celf", "incremental", "naive")
        assert stats.novelty_evaluations > 0
        assert stats.rounds == len(outcome.selected)

    def test_routing_stats_absent_for_plain_selectors(self, engine):
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=2, k=8)
        assert outcome.routing_stats is None

    def test_cost_delta_isolated_per_query(self, engine):
        out1 = engine.run_query(QUERY, CoriSelector(), max_peers=1, k=5)
        out2 = engine.run_query(QUERY, CoriSelector(), max_peers=1, k=5)
        assert (
            out1.cost.messages(MessageKinds.QUERY_FORWARD)
            == out2.cost.messages(MessageKinds.QUERY_FORWARD)
            == 1
        )
