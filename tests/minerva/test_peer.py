"""Tests for the Peer object."""

import pytest

from repro.ir.documents import Corpus, Document
from repro.ir.index import InvertedIndex
from repro.minerva.peer import Peer
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")


@pytest.fixture
def corpus():
    return Corpus.from_documents(
        [
            Document.from_terms(1, ["apple", "apple", "banana"]),
            Document.from_terms(2, ["apple", "cherry"]),
            Document.from_terms(3, ["banana", "banana"]),
        ]
    )


@pytest.fixture
def peer(corpus):
    return Peer("p1", corpus, spec=SPEC, histogram_cells=2)


class TestConstruction:
    def test_requires_peer_id(self, corpus):
        with pytest.raises(ValueError):
            Peer("", corpus, spec=SPEC)

    def test_prebuilt_index_must_match_corpus(self, corpus):
        other = Corpus.from_documents([Document.from_terms(9, ["x"])])
        with pytest.raises(ValueError):
            Peer("p1", corpus, spec=SPEC, index=InvertedIndex(other))

    def test_prebuilt_index_used(self, corpus):
        index = InvertedIndex(corpus)
        peer = Peer("p1", corpus, spec=SPEC, index=index)
        assert peer.index is index

    def test_collection_size(self, peer):
        assert peer.collection_size == 3


class TestSynopses:
    def test_synopsis_covers_index_list(self, peer):
        synopsis = peer.synopsis("apple")
        assert synopsis == SPEC.build(peer.index.doc_ids("apple"))

    def test_synopsis_cached(self, peer):
        assert peer.synopsis("apple") is peer.synopsis("apple")

    def test_unknown_term_synopsis_empty(self, peer):
        assert peer.synopsis("zzz").is_empty

    def test_histogram_requires_configuration(self, corpus):
        peer = Peer("p1", corpus, spec=SPEC)
        with pytest.raises(ValueError, match="histogram_cells"):
            peer.histogram_synopsis("apple")

    def test_histogram_cells_cover_list(self, peer):
        hist = peer.histogram_synopsis("apple")
        assert hist.num_cells == 2
        assert hist.total_cardinality == peer.index.document_frequency("apple")

    def test_histogram_cached(self, peer):
        assert peer.histogram_synopsis("apple") is peer.histogram_synopsis("apple")


class TestPosts:
    def test_build_post_statistics(self, peer):
        post = peer.build_post("apple")
        assert post.peer_id == "p1"
        assert post.cdf == 2
        assert post.term_space_size == peer.index.term_space_size
        assert post.max_score == peer.index.max_score("apple")
        assert post.synopsis is not None
        assert post.histogram is None

    def test_build_post_with_histogram(self, peer):
        post = peer.build_post("apple", with_histogram=True)
        assert post.histogram is not None

    def test_post_for_unknown_term(self, peer):
        post = peer.build_post("zzz")
        assert post.cdf == 0
        assert post.synopsis.is_empty


class TestQueryAnswering:
    def test_local_topk(self, peer):
        results = peer.answer_query(("apple",), k=5)
        assert {r.doc_id for r in results} == {1, 2}

    def test_conjunctive(self, peer):
        results = peer.answer_query(("apple", "banana"), k=5, conjunctive=True)
        assert {r.doc_id for r in results} == {1}

    def test_local_doc_ids(self, peer):
        assert peer.local_doc_ids("banana") == {1, 3}
