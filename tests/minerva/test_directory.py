"""Tests for the DHT-backed directory."""

import pytest

from repro.dht.ring import ChordRing
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.net.cost import CostModel, MessageKinds
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")


def make_post(peer_id, term, cdf=5):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=1.0,
        avg_score=0.5,
        term_space_size=50,
        synopsis=SPEC.build(range(cdf)),
    )


@pytest.fixture
def directory():
    ring = ChordRing([f"p{i}" for i in range(8)], bits=16)
    return Directory(ring, cost=CostModel())


class TestPublish:
    def test_publish_then_lookup(self, directory):
        directory.publish(make_post("p1", "apple"))
        directory.publish(make_post("p2", "apple"))
        peer_list = directory.peer_list("apple")
        assert peer_list.peer_ids == {"p1", "p2"}

    def test_republish_overwrites(self, directory):
        directory.publish(make_post("p1", "apple", cdf=3))
        directory.publish(make_post("p1", "apple", cdf=7))
        assert directory.peer_list("apple").get("p1").cdf == 7

    def test_publish_charges_post_and_hops(self, directory):
        directory.publish(make_post("p1", "apple"))
        snap = directory.cost.snapshot()
        assert snap.messages(MessageKinds.POST) == 1
        assert snap.bits(MessageKinds.POST) == make_post("p1", "apple").size_in_bits

    def test_terms_partitioned_across_nodes(self, directory):
        for i in range(40):
            directory.publish(make_post("p1", f"term-{i}"))
        occupied = [
            node_id
            for node_id in directory.ring.node_ids
            if directory.ring.node(node_id).store
        ]
        assert len(occupied) > 1


class TestReplication:
    def test_replicas_store_copies(self):
        ring = ChordRing([f"p{i}" for i in range(8)], bits=16)
        directory = Directory(ring, replicas=3)
        directory.publish(make_post("p1", "apple"))
        key = ring.key_id("apple")
        holders = [
            node_id
            for node_id in ring.node_ids
            if key in ring.node(node_id).store
        ]
        assert len(holders) == 3

    def test_replicas_validation(self):
        ring = ChordRing(["a"], bits=16)
        with pytest.raises(ValueError):
            Directory(ring, replicas=0)


class TestLookup:
    def test_unknown_term_empty_peerlist(self, directory):
        peer_list = directory.peer_list("never-posted")
        assert len(peer_list) == 0
        assert peer_list.term == "never-posted"

    def test_fetch_charges_payload(self, directory):
        directory.publish(make_post("p1", "apple"))
        before = directory.cost.snapshot()
        directory.peer_list("apple")
        delta = directory.cost.snapshot() - before
        assert delta.messages(MessageKinds.PEERLIST_FETCH) == 1
        assert delta.bits(MessageKinds.PEERLIST_FETCH) > 0

    def test_peer_lists_fetches_unique_terms(self, directory):
        directory.publish(make_post("p1", "a"))
        directory.publish(make_post("p1", "b"))
        lists = directory.peer_lists(("a", "b", "a"))
        assert set(lists) == {"a", "b"}

    def test_stored_terms(self, directory):
        directory.publish(make_post("p1", "apple"))
        directory.publish(make_post("p2", "pear"))
        assert directory.stored_terms() == {"apple", "pear"}

    def test_requester_start_node_used(self):
        ring = ChordRing([f"p{i}" for i in range(8)], bits=16)
        node_map = {
            f"p{i}": ring.node_ids[i] for i in range(8)
        }
        directory = Directory(ring, node_of_peer=node_map)
        directory.publish(make_post("p0", "apple"))
        # Both requesters must see the same PeerList.
        a = directory.peer_list("apple", requester="p0")
        b = directory.peer_list("apple", requester="p7")
        assert a.peer_ids == b.peer_ids == {"p0"}
