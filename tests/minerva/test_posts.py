"""Tests for Posts and PeerLists."""

import pytest

from repro.minerva.posts import POST_STATS_BITS, PeerList, Post
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")


def make_post(peer_id="p1", term="apple", cdf=10, max_score=2.0, **kwargs):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=max_score,
        avg_score=kwargs.pop("avg_score", 1.0),
        term_space_size=kwargs.pop("term_space_size", 100),
        synopsis=kwargs.pop("synopsis", SPEC.build(range(cdf))),
        **kwargs,
    )


class TestPost:
    def test_size_includes_synopsis(self):
        post = make_post()
        assert post.size_in_bits == POST_STATS_BITS + SPEC.size_in_bits

    def test_size_without_synopsis(self):
        post = make_post(synopsis=None)
        assert post.size_in_bits == POST_STATS_BITS

    def test_size_with_histogram(self):
        from repro.synopses.histogram import ScoreHistogramSynopsis

        hist = ScoreHistogramSynopsis.empty(spec=SPEC, num_cells=2)
        post = make_post(histogram=hist)
        assert (
            post.size_in_bits
            == POST_STATS_BITS + SPEC.size_in_bits + hist.size_in_bits
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_post(cdf=-1)
        with pytest.raises(ValueError):
            make_post(max_score=-0.5)
        with pytest.raises(ValueError):
            make_post(term_space_size=-1)


class TestPeerList:
    def test_add_and_get(self):
        peer_list = PeerList(term="apple")
        post = make_post()
        peer_list.add(post)
        assert peer_list.get("p1") is post
        assert peer_list.get("p2") is None

    def test_repost_overwrites(self):
        peer_list = PeerList(term="apple")
        peer_list.add(make_post(cdf=5))
        updated = make_post(cdf=9)
        peer_list.add(updated)
        assert len(peer_list) == 1
        assert peer_list.get("p1").cdf == 9

    def test_wrong_term_rejected(self):
        peer_list = PeerList(term="apple")
        with pytest.raises(ValueError):
            peer_list.add(make_post(term="banana"))

    def test_collection_frequency(self):
        peer_list = PeerList(term="apple")
        peer_list.add(make_post(peer_id="a"))
        peer_list.add(make_post(peer_id="b"))
        assert peer_list.collection_frequency == 2
        assert peer_list.peer_ids == {"a", "b"}

    def test_size_sums_posts(self):
        peer_list = PeerList(term="apple")
        peer_list.add(make_post(peer_id="a"))
        peer_list.add(make_post(peer_id="b"))
        assert peer_list.size_in_bits == 2 * make_post().size_in_bits

    def test_top_by_quality(self):
        peer_list = PeerList(term="apple")
        peer_list.add(make_post(peer_id="weak", max_score=0.5))
        peer_list.add(make_post(peer_id="strong", max_score=5.0))
        peer_list.add(make_post(peer_id="mid", max_score=2.0))
        top2 = peer_list.top_by_quality(2)
        assert [p.peer_id for p in top2] == ["strong", "mid"]

    def test_top_by_quality_validation(self):
        with pytest.raises(ValueError):
            PeerList(term="x").top_by_quality(-1)

    def test_iteration(self):
        peer_list = PeerList(term="apple")
        peer_list.add(make_post(peer_id="a"))
        assert [p.peer_id for p in peer_list] == ["a"]
