"""Tests for network-wide term statistics."""

import pytest

from repro.minerva.posts import PeerList, Post
from repro.minerva.stats import global_term_statistics
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-64")


def make_post(peer_id, ids, synopsis=True):
    ids = list(ids)
    return Post(
        peer_id=peer_id,
        term="apple",
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=SPEC.build(ids) if synopsis else None,
    )


def peer_list_of(*posts):
    peer_list = PeerList(term="apple")
    for post in posts:
        peer_list.add(post)
    return peer_list


class TestGlobalTermStatistics:
    def test_empty_peerlist(self):
        stats = global_term_statistics(PeerList(term="apple"))
        assert stats.collection_frequency == 0
        assert stats.total_postings == 0
        assert stats.distinct_documents == 0.0
        assert stats.replication_factor == 1.0

    def test_disjoint_collections(self):
        stats = global_term_statistics(
            peer_list_of(
                make_post("a", range(0, 500)),
                make_post("b", range(1000, 1500)),
            )
        )
        assert stats.total_postings == 1000
        assert stats.distinct_documents == pytest.approx(1000, rel=0.15)
        assert stats.replication_factor == pytest.approx(1.0, abs=0.2)

    def test_fully_replicated_collections(self):
        """Four mirrors of the same 500 docs -> replication ~4."""
        posts = [make_post(f"p{i}", range(500)) for i in range(4)]
        stats = global_term_statistics(peer_list_of(*posts))
        assert stats.total_postings == 2000
        assert stats.distinct_documents == pytest.approx(500, rel=0.35)
        assert stats.replication_factor == pytest.approx(4.0, rel=0.35)

    def test_partial_overlap(self):
        stats = global_term_statistics(
            peer_list_of(
                make_post("a", range(0, 600)),
                make_post("b", range(300, 900)),  # 300 shared
            )
        )
        assert stats.distinct_documents == pytest.approx(900, rel=0.2)

    def test_posts_without_synopses_counted_disjoint(self):
        stats = global_term_statistics(
            peer_list_of(
                make_post("a", range(500)),
                make_post("b", range(500), synopsis=False),
            )
        )
        # The synopsis-less post adds its cdf conservatively.
        assert stats.distinct_documents == pytest.approx(1000, rel=0.15)

    def test_distinct_never_exceeds_total(self):
        stats = global_term_statistics(
            peer_list_of(make_post("a", range(100)), make_post("b", range(100)))
        )
        assert stats.distinct_documents <= stats.total_postings

    def test_replication_at_least_one(self):
        stats = global_term_statistics(peer_list_of(make_post("a", range(10))))
        assert stats.replication_factor >= 1.0

    def test_combination_placement_replication(self, tiny_engine, tiny_queries):
        """End-to-end: C(5,2) placement replicates each doc on C(4,1)=4
        of 10 peers, so measured replication should be ~4."""
        term = tiny_queries[0].terms[0]
        peer_list = tiny_engine.directory.peer_list(term)
        stats = global_term_statistics(peer_list)
        assert stats.replication_factor == pytest.approx(4.0, rel=0.4)

    def test_feeds_adaptive_policy(self):
        from repro.core.adaptive import AdaptiveSpecPolicy

        stats = global_term_statistics(
            peer_list_of(make_post("a", range(100)), make_post("b", range(100)))
        )
        policy = AdaptiveSpecPolicy(budget_bits=2048)
        spec = policy.choose(round(stats.distinct_documents))
        assert spec.kind == "bloom"  # ~100 distinct docs fit easily
