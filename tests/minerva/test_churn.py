"""Tests for peer churn: joins, departures, stale-post handling."""

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.net.cost import MessageKinds
from repro.routing.cori import CoriSelector
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")
QUERY = Query(0, ("apple", "banana"))


def make_collections(count=4):
    docs = {
        i: Document.from_terms(i, ["apple"] * (1 + i % 3) + ["banana"])
        for i in range(20)
    }
    groups = [range(i * 4, i * 4 + 8) for i in range(count)]
    return [
        Corpus.from_documents(docs[i % 20] for i in group) for group in groups
    ]


@pytest.fixture
def engine():
    engine = MinervaEngine(make_collections(), spec=SPEC)
    engine.publish({"apple", "banana"})
    return engine


class TestJoin:
    def test_new_peer_becomes_routable(self, engine):
        newcomer = Corpus.from_documents(
            [Document.from_terms(100 + i, ["apple", "banana"]) for i in range(5)]
        )
        engine.add_peer("pnew", newcomer)
        context = engine.make_context(QUERY, initiator_id="p00", k=5)
        assert "pnew" in {c.peer_id for c in context.candidates()}

    def test_join_migrates_directory_keys(self, engine):
        """PeerLists remain resolvable after the ring reshuffles."""
        before = engine.directory.peer_list("apple").peer_ids
        engine.add_peer(
            "pnew",
            Corpus.from_documents([Document.from_terms(200, ["cherry"])]),
        )
        after = engine.directory.peer_list("apple").peer_ids
        assert before <= after

    def test_duplicate_id_rejected(self, engine):
        with pytest.raises(ValueError, match="already"):
            engine.add_peer("p00", Corpus())

    def test_reference_engine_rebuilt(self, engine):
        _ = engine.reference_index
        engine.add_peer(
            "pnew",
            Corpus.from_documents([Document.from_terms(500, ["apple"])]),
        )
        assert 500 in engine.reference_index.corpus

    def test_joined_peer_answers_queries(self, engine):
        engine.add_peer(
            "pnew",
            Corpus.from_documents(
                [Document.from_terms(300 + i, ["apple"]) for i in range(3)]
            ),
        )
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=4, k=10)
        assert outcome.final_recall > 0.0


class TestGracefulDeparture:
    def test_departed_peer_not_a_candidate(self, engine):
        engine.remove_peer("p01")
        context = engine.make_context(QUERY, initiator_id="p00", k=5)
        assert "p01" not in {c.peer_id for c in context.candidates()}

    def test_directory_still_resolves_after_departure(self, engine):
        engine.remove_peer("p02")
        peer_list = engine.directory.peer_list("apple")
        assert peer_list.peer_ids
        assert "p02" not in peer_list.peer_ids

    def test_queries_work_after_departure(self, engine):
        engine.remove_peer("p03")
        outcome = engine.run_query(QUERY, IQNRouter(), max_peers=2, k=10)
        assert outcome.selected
        assert "p03" not in outcome.selected

    def test_purge_counts_posts(self, engine):
        removed = engine.purge_posts_of("p01")
        assert removed == 2  # apple + banana


class TestCrashChurn:
    def test_stale_posts_select_dead_peer_costing_a_forward(self, engine):
        """Without purging, routing can pick the dead peer; the forward
        is paid and yields nothing — the realistic failure mode."""
        engine.remove_peer("p01", purge_posts=False)
        context = engine.make_context(QUERY, initiator_id="p00", k=5)
        candidate_ids = {c.peer_id for c in context.candidates()}
        assert "p01" in candidate_ids  # stale post still advertised
        before = engine.cost.snapshot()
        per_peer = engine.execute(QUERY, ["p01"], k=5)
        delta = engine.cost.snapshot() - before
        assert per_peer["p01"] == ()
        assert delta.messages(MessageKinds.QUERY_FORWARD) == 1
        assert delta.messages(MessageKinds.RESULT_RETURN) == 0

    def test_recall_degrades_gracefully_with_stale_posts(self, engine):
        engine.remove_peer("p01", purge_posts=False)
        outcome = engine.run_query(QUERY, CoriSelector(), max_peers=3, k=10)
        assert 0.0 <= outcome.final_recall <= 1.0


class TestReplicatedDirectoryChurn:
    def test_replicas_survive_owner_departure(self):
        """With replication factor 2, a PeerList survives its primary
        owner leaving (Section 4's availability argument)."""
        engine = MinervaEngine(make_collections(6), spec=SPEC, replicas=2)
        engine.publish({"apple"})
        owner_node = engine.ring.owner_of("apple").node_id
        owner_peer = next(
            pid
            for pid, nid in engine.directory._node_of_peer.items()
            if nid == owner_node
        )
        expected = engine.directory.peer_list("apple").peer_ids - {owner_peer}
        engine.remove_peer(owner_peer)
        surviving = engine.directory.peer_list("apple").peer_ids
        assert expected <= surviving
