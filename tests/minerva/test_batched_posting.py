"""Tests for batched Post publication (Section 7.2's batching remark)."""

import pytest

from repro.dht.ring import ChordRing
from repro.minerva.directory import Directory
from repro.minerva.posts import Post
from repro.net.cost import CostModel, MessageKinds
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")


def make_post(peer_id, term, cdf=5):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=1.0,
        avg_score=0.5,
        term_space_size=50,
        synopsis=SPEC.build(range(cdf)),
    )


def fresh_directory(replicas=1):
    ring = ChordRing([f"n{i}" for i in range(8)], bits=16)
    return Directory(ring, cost=CostModel(), replicas=replicas)


class TestBatchedPublish:
    def test_stored_identically_to_individual_publish(self):
        batched = fresh_directory()
        individual = fresh_directory()
        posts = [make_post("p1", f"term-{i}") for i in range(20)]
        batched.publish_batch(posts)
        for post in posts:
            individual.publish(post)
        for i in range(20):
            term = f"term-{i}"
            assert (
                batched.peer_list(term).peer_ids
                == individual.peer_list(term).peer_ids
            )

    def test_fewer_messages_than_individual(self):
        batched = fresh_directory()
        individual = fresh_directory()
        posts = [make_post("p1", f"term-{i}") for i in range(30)]
        batched.publish_batch(posts)
        for post in posts:
            individual.publish(post)
        assert batched.cost.snapshot().messages(
            MessageKinds.POST
        ) < individual.cost.snapshot().messages(MessageKinds.POST)

    def test_payload_bits_unchanged(self):
        batched = fresh_directory()
        individual = fresh_directory()
        posts = [make_post("p1", f"term-{i}") for i in range(30)]
        batched.publish_batch(posts)
        for post in posts:
            individual.publish(post)
        assert batched.cost.snapshot().bits(
            MessageKinds.POST
        ) == individual.cost.snapshot().bits(MessageKinds.POST)

    def test_message_count_bounded_by_destinations(self):
        directory = fresh_directory()
        posts = [make_post("p1", f"term-{i}") for i in range(50)]
        messages = directory.publish_batch(posts)
        assert messages <= len(directory.ring)

    def test_replication_multiplies_messages(self):
        directory = fresh_directory(replicas=2)
        posts = [make_post("p1", f"term-{i}") for i in range(10)]
        messages = directory.publish_batch(posts)
        assert messages % 2 == 0

    def test_empty_batch(self):
        assert fresh_directory().publish_batch([]) == 0
