"""Tests for evolving peer collections (crawl growth + re-posting)."""

import pytest

from repro.ir.documents import Corpus, Document
from repro.minerva.peer import Peer
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-16")


@pytest.fixture
def peer():
    corpus = Corpus.from_documents(
        [
            Document.from_terms(1, ["apple", "banana"]),
            Document.from_terms(2, ["apple"]),
        ]
    )
    return Peer("p1", corpus, spec=SPEC)


class TestAddDocuments:
    def test_collection_grows(self, peer):
        peer.add_documents([Document.from_terms(3, ["cherry"])])
        assert peer.collection_size == 3
        assert "cherry" in peer.index

    def test_new_term_reported_as_drifted(self, peer):
        drifted = peer.add_documents([Document.from_terms(3, ["cherry"])])
        assert "cherry" in drifted

    def test_heavy_growth_reported(self, peer):
        docs = [Document.from_terms(10 + i, ["apple"]) for i in range(5)]
        drifted = peer.add_documents(docs)
        assert "apple" in drifted  # df 2 -> 7

    def test_small_growth_not_reported(self, peer):
        # apple df 2 -> 2 (unchanged), banana 1 -> 1: nothing drifts.
        drifted = peer.add_documents([Document.from_terms(3, ["durian"])])
        assert "apple" not in drifted
        assert "banana" not in drifted

    def test_synopsis_cache_invalidated(self, peer):
        before = peer.synopsis("apple")
        peer.add_documents(
            [Document.from_terms(10 + i, ["apple"]) for i in range(4)]
        )
        after = peer.synopsis("apple")
        assert after != before
        assert after == SPEC.build(peer.index.doc_ids("apple"))

    def test_duplicate_doc_id_rejected(self, peer):
        with pytest.raises(ValueError, match="duplicate"):
            peer.add_documents([Document.from_terms(1, ["x"])])

    def test_custom_drift_factor(self, peer):
        docs = [Document.from_terms(20 + i, ["banana"]) for i in range(1)]
        # banana df 1 -> 2: drift 2.0; reported at 1.5, not at 3.0.
        assert "banana" in Peer(
            "a", _clone_corpus(peer), spec=SPEC
        ).add_documents(docs, drift_factor=1.5)
        assert "banana" not in Peer(
            "b", _clone_corpus(peer), spec=SPEC
        ).add_documents(docs, drift_factor=3.0)

    def test_posts_reflect_new_state(self, peer):
        peer.add_documents(
            [Document.from_terms(30 + i, ["apple"]) for i in range(3)]
        )
        post = peer.build_post("apple")
        assert post.cdf == 5


def _clone_corpus(peer):
    return Corpus.from_documents(list(peer.corpus))
