"""Tests for CORI collection selection — formula checked by hand."""

import math

import pytest

from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import RoutingContext
from repro.routing.cori import CORI_ALPHA, CoriSelector, cori_score, cori_scores
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")


def make_post(peer_id, term, cdf, term_space):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=1.0,
        avg_score=0.5,
        term_space_size=term_space,
        synopsis=SPEC.build(range(cdf)),
    )


def single_term_context(num_peers=10):
    apple = PeerList(term="apple")
    apple.add(make_post("rich", "apple", cdf=100, term_space=100))
    apple.add(make_post("poor", "apple", cdf=5, term_space=100))
    return RoutingContext(
        query=Query(0, ("apple",)),
        peer_lists={"apple": apple},
        num_peers=num_peers,
        spec=SPEC,
    )


class TestFormula:
    def test_hand_computed_score(self):
        context = single_term_context()
        candidate = [c for c in context.candidates() if c.peer_id == "rich"][0]
        # |V_avg| = 100, |V_i| = 100 -> T = 100 / (100 + 50 + 150) = 1/3.
        t = 100 / (100 + 50 + 150)
        # cf = 2, np = 10 -> I = log(10.5/2) / log(11).
        i = math.log(10.5 / 2) / math.log(11)
        expected = CORI_ALPHA + (1 - CORI_ALPHA) * t * i
        assert cori_score(candidate, context) == pytest.approx(expected)

    def test_missing_term_scores_alpha(self):
        apple = PeerList(term="apple")
        apple.add(make_post("p1", "apple", cdf=10, term_space=100))
        pear = PeerList(term="pear")
        pear.add(make_post("p2", "pear", cdf=10, term_space=100))
        context = RoutingContext(
            query=Query(0, ("apple", "pear")),
            peer_lists={"apple": apple, "pear": pear},
            num_peers=5,
            spec=SPEC,
        )
        scores = cori_scores(context)
        # p1 has apple only: s = (s_apple + alpha) / 2 > alpha.
        assert scores["p1"] > CORI_ALPHA / 1.0 / 2
        single = cori_score(
            [c for c in context.candidates() if c.peer_id == "p1"][0], context
        )
        assert single < 1.0

    def test_longer_list_scores_higher(self):
        scores = cori_scores(single_term_context())
        assert scores["rich"] > scores["poor"]

    def test_score_bounded(self):
        for candidate in single_term_context().candidates():
            score = cori_score(candidate, single_term_context())
            assert CORI_ALPHA / 2 <= score <= 1.0

    def test_alpha_validation(self):
        context = single_term_context()
        candidate = context.candidates()[0]
        with pytest.raises(ValueError):
            cori_score(candidate, context, alpha=1.5)


class TestSelector:
    def test_ranks_by_score(self):
        selector = CoriSelector()
        ranked = selector.rank(single_term_context(), max_peers=2)
        assert ranked == ["rich", "poor"]

    def test_max_peers_truncates(self):
        assert len(CoriSelector().rank(single_term_context(), 1)) == 1

    def test_max_peers_validation(self):
        with pytest.raises(ValueError):
            CoriSelector().rank(single_term_context(), 0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CoriSelector(alpha=-0.1)

    def test_name(self):
        assert CoriSelector().name == "CORI"

    def test_overlap_blindness(self):
        """CORI's defining flaw: two identical rich peers both rank above
        a complementary poor peer."""
        apple = PeerList(term="apple")
        apple.add(make_post("rich1", "apple", cdf=100, term_space=100))
        apple.add(make_post("rich2", "apple", cdf=100, term_space=100))
        apple.add(make_post("modest", "apple", cdf=30, term_space=100))
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": apple},
            num_peers=10,
            spec=SPEC,
        )
        ranked = CoriSelector().rank(context, max_peers=2)
        assert set(ranked) == {"rich1", "rich2"}
