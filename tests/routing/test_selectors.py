"""Tests for the random and SIGIR'05 one-shot baselines."""

import pytest

from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.routing.random_select import RandomSelector
from repro.routing.sigir05 import OneShotOverlapSelector
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("bf-2048")


def make_post(peer_id, term, ids):
    ids = list(ids)
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=len(ids),
        max_score=1.0,
        avg_score=0.5,
        term_space_size=100,
        synopsis=SPEC.build(ids),
    )


def overlap_context():
    """Initiator holds 0..49; 'dup' duplicates it, 'fresh' is disjoint."""
    apple = PeerList(term="apple")
    apple.add(make_post("dup", "apple", range(50)))
    apple.add(make_post("fresh", "apple", range(100, 150)))
    initiator = LocalView(
        peer_id="me",
        result_doc_ids=frozenset(range(50)),
        doc_ids_by_term={"apple": frozenset(range(50))},
    )
    return RoutingContext(
        query=Query(0, ("apple",)),
        peer_lists={"apple": apple},
        num_peers=5,
        spec=SPEC,
        initiator=initiator,
    )


class TestRandomSelector:
    def test_subset_of_candidates(self):
        context = overlap_context()
        ranked = RandomSelector(seed=1).rank(context, max_peers=2)
        assert set(ranked) <= {"dup", "fresh"}

    def test_reproducible(self):
        context = overlap_context()
        a = RandomSelector(seed=5).rank(context, 2)
        b = RandomSelector(seed=5).rank(context, 2)
        assert a == b

    def test_max_peers(self):
        assert len(RandomSelector().rank(overlap_context(), 1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSelector().rank(overlap_context(), 0)

    def test_name(self):
        assert RandomSelector().name == "Random"


class TestOneShotOverlapSelector:
    def test_prefers_novel_peer(self):
        """The whole point of [5]: the duplicate of the initiator's local
        collection ranks below the complementary peer."""
        ranked = OneShotOverlapSelector().rank(overlap_context(), max_peers=2)
        assert ranked[0] == "fresh"

    def test_no_initiator_falls_back_to_quality_times_size(self):
        context = overlap_context()
        context.initiator = None
        ranked = OneShotOverlapSelector().rank(context, max_peers=2)
        assert set(ranked) == {"dup", "fresh"}

    def test_one_shot_blindness_to_mutual_overlap(self):
        """The known weakness IQN fixes: two peers that duplicate *each
        other* (but not the initiator) both rank above a smaller novel
        peer, wasting the second pick."""
        apple = PeerList(term="apple")
        twin_ids = range(200, 320)
        apple.add(make_post("twin1", "apple", twin_ids))
        apple.add(make_post("twin2", "apple", twin_ids))
        apple.add(make_post("small-novel", "apple", range(400, 460)))
        initiator = LocalView(
            peer_id="me",
            result_doc_ids=frozenset(range(50)),
            doc_ids_by_term={"apple": frozenset(range(50))},
        )
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": apple},
            num_peers=5,
            spec=SPEC,
            initiator=initiator,
        )
        ranked = OneShotOverlapSelector().rank(context, max_peers=2)
        assert set(ranked) == {"twin1", "twin2"}

    def test_max_peers_validation(self):
        with pytest.raises(ValueError):
            OneShotOverlapSelector().rank(overlap_context(), 0)

    def test_name(self):
        assert OneShotOverlapSelector().name == "SIGIR05-OneShot"
