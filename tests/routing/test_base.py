"""Tests for routing context assembly."""

import pytest

from repro.datasets.queries import Query
from repro.minerva.posts import PeerList, Post
from repro.routing.base import LocalView, RoutingContext
from repro.synopses.factory import SynopsisSpec

SPEC = SynopsisSpec.parse("mips-8")


def make_post(peer_id, term, cdf=5, term_space=100):
    return Post(
        peer_id=peer_id,
        term=term,
        cdf=cdf,
        max_score=1.0,
        avg_score=0.5,
        term_space_size=term_space,
        synopsis=SPEC.build(range(cdf)),
    )


def make_context(initiator=None, conjunctive=False):
    apple = PeerList(term="apple")
    apple.add(make_post("p1", "apple", term_space=100))
    apple.add(make_post("p2", "apple", term_space=200))
    pear = PeerList(term="pear")
    pear.add(make_post("p2", "pear", term_space=200))
    pear.add(make_post("p3", "pear", term_space=300))
    return RoutingContext(
        query=Query(0, ("apple", "pear")),
        peer_lists={"apple": apple, "pear": pear},
        num_peers=10,
        spec=SPEC,
        initiator=initiator,
        conjunctive=conjunctive,
    )


class TestValidation:
    def test_missing_term_peerlist_rejected(self):
        with pytest.raises(ValueError, match="missing query terms"):
            RoutingContext(
                query=Query(0, ("apple", "pear")),
                peer_lists={"apple": PeerList(term="apple")},
                num_peers=3,
                spec=SPEC,
            )

    def test_nonpositive_peers_rejected(self):
        with pytest.raises(ValueError):
            RoutingContext(
                query=Query(0, ("apple",)),
                peer_lists={"apple": PeerList(term="apple")},
                num_peers=0,
                spec=SPEC,
            )


class TestCandidates:
    def test_union_over_terms(self):
        context = make_context()
        ids = {c.peer_id for c in context.candidates()}
        assert ids == {"p1", "p2", "p3"}

    def test_posts_grouped_per_peer(self):
        context = make_context()
        by_id = {c.peer_id: c for c in context.candidates()}
        assert by_id["p2"].covered_terms == {"apple", "pear"}
        assert by_id["p1"].covered_terms == {"apple"}
        assert by_id["p1"].cdf("pear") == 0
        assert by_id["p1"].post("pear") is None

    def test_initiator_excluded(self):
        context = make_context(initiator=LocalView(peer_id="p2"))
        ids = {c.peer_id for c in context.candidates()}
        assert ids == {"p1", "p3"}

    def test_deterministic_order(self):
        context = make_context()
        assert [c.peer_id for c in context.candidates()] == ["p1", "p2", "p3"]


class TestStatistics:
    def test_collection_frequency(self):
        context = make_context()
        assert context.collection_frequency("apple") == 2
        assert context.collection_frequency("pear") == 2

    def test_average_term_space_size(self):
        context = make_context()
        # Peers p1 (100), p2 (200), p3 (300): average 200.
        assert context.average_term_space_size == pytest.approx(200.0)

    def test_average_term_space_empty_lists(self):
        context = RoutingContext(
            query=Query(0, ("apple",)),
            peer_lists={"apple": PeerList(term="apple")},
            num_peers=3,
            spec=SPEC,
        )
        assert context.average_term_space_size == 1.0


class TestCaching:
    """Contexts are per-query snapshots; derived views are built once."""

    def test_candidates_cached(self):
        context = make_context()
        first = context.candidates()
        assert context.candidates() is first

    def test_average_term_space_cached(self):
        context = make_context()
        first = context.average_term_space_size
        assert context.average_term_space_size == first
        assert context._avg_term_space_cache == first

    def test_caches_are_per_context(self):
        one = make_context()
        two = make_context()
        assert one.candidates() is not two.candidates()

    def test_candidates_cache_respects_initiator(self):
        context = make_context(initiator=LocalView(peer_id="p2"))
        ids = {c.peer_id for c in context.candidates()}
        assert ids == {"p1", "p3"}
        assert {c.peer_id for c in context.candidates()} == ids
