"""Tests for the columnar clustering kernels behind SuperPeerTopology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.clustering import (
    cluster_peers,
    default_num_clusters,
    elect_super_peer,
    group_fold_synopses,
    materialize_rows,
    peer_capacities,
    peer_profiles,
)

from .conftest import ALL_TERMS, TOPIC_TERMS, make_topical_engine


def stored_columns(engine):
    return [
        engine.directory.stored_list(term).columns
        for term in sorted(ALL_TERMS)
    ]


class TestDefaultNumClusters:
    def test_sqrt_heuristic(self):
        assert default_num_clusters(100) == 10
        assert default_num_clusters(10_000) == 100

    def test_floor_and_cap(self):
        assert default_num_clusters(0) == 1
        assert default_num_clusters(3) == 2
        assert default_num_clusters(10**7) == 512


class TestPeerProfiles:
    def test_profile_is_union_of_posted_synopses(self):
        """Row i of the profile matrix equals the family fold of every
        packed synopsis peer i posted, across all terms."""
        engine = make_topical_engine("bf-512")
        columns = stored_columns(engine)
        table = engine.directory.peer_table
        profiles, column = peer_profiles(columns, table)
        assert len(profiles) == len(table)
        for peer_id in sorted(engine.peers):
            interned = table.lookup(peer_id)
            acc = None
            for term_columns in columns:
                row = term_columns.row_for(interned)
                if row is None:
                    continue
                packed = term_columns.synopsis_column.rows(
                    len(term_columns)
                )[row]
                acc = packed if acc is None else np.bitwise_or(acc, packed)
            assert acc is not None
            assert np.array_equal(profiles[interned], acc)

    def test_mips_profile_folds_with_minimum(self):
        engine = make_topical_engine("mips-16")
        columns = stored_columns(engine)
        table = engine.directory.peer_table
        profiles, _ = peer_profiles(columns, table)
        interned = table.lookup("p00")
        rows = [
            tc.synopsis_column.rows(len(tc))[tc.row_for(interned)]
            for tc in columns
            if tc.row_for(interned) is not None
        ]
        assert np.array_equal(
            profiles[interned], np.minimum.reduce(rows)
        )


class TestPeerCapacities:
    def test_capacity_is_total_posted_cdf(self):
        engine = make_topical_engine()
        columns = stored_columns(engine)
        table = engine.directory.peer_table
        capacity = peer_capacities(columns, table)
        for peer_id in sorted(engine.peers):
            expected = sum(
                post.cdf
                for term in sorted(ALL_TERMS)
                for post in [
                    engine.directory.stored_list(term).get(peer_id)
                ]
                if post is not None
            )
            assert capacity[table.lookup(peer_id)] == expected


class TestClusterPeers:
    def test_deterministic_for_a_seed(self):
        engine = make_topical_engine("bf-512")
        profiles, column = peer_profiles(
            stored_columns(engine), engine.directory.peer_table
        )
        first = cluster_peers(profiles, 3, column, seed=7)
        second = cluster_peers(profiles, 3, column, seed=7)
        assert np.array_equal(first, second)

    def test_recovers_topical_communities(self):
        """Same-topic peers (overlapping documents) co-cluster; the
        three topics land in three distinct clusters."""
        engine = make_topical_engine("bf-512")
        table = engine.directory.peer_table
        profiles, column = peer_profiles(stored_columns(engine), table)
        assignment = cluster_peers(profiles, 3, column, seed=0)
        labels_by_topic = []
        for topic in range(len(TOPIC_TERMS)):
            members = [f"p{topic * 3 + rank:02d}" for rank in range(3)]
            labels = {
                assignment[table.lookup(peer_id)] for peer_id in members
            }
            assert len(labels) == 1, (topic, labels)
            labels_by_topic.append(labels.pop())
        assert len(set(labels_by_topic)) == 3

    def test_more_clusters_than_rows(self):
        engine = make_topical_engine()
        profiles, column = peer_profiles(
            stored_columns(engine), engine.directory.peer_table
        )
        assignment = cluster_peers(profiles, 50, column, seed=1)
        assert len(assignment) == len(profiles)
        assert assignment.max() < len(profiles)

    def test_rejects_nonpositive_cluster_count(self):
        engine = make_topical_engine()
        profiles, column = peer_profiles(
            stored_columns(engine), engine.directory.peer_table
        )
        with pytest.raises(ValueError, match="num_clusters"):
            cluster_peers(profiles, 0, column)


class TestElection:
    def test_highest_capacity_wins(self):
        capacity = {"a": 5, "b": 9, "c": 2}
        assert elect_super_peer(["a", "b", "c"], capacity.__getitem__) == "b"

    def test_ties_break_lexicographically(self):
        capacity = {"z": 4, "m": 4, "q": 4}
        assert elect_super_peer(["z", "m", "q"], capacity.__getitem__) == "m"

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            elect_super_peer([], lambda _: 0)


class TestGroupFold:
    def test_matches_per_group_reduce(self):
        engine = make_topical_engine("bf-512")
        term_columns = stored_columns(engine)[0]
        column = term_columns.synopsis_column
        rows = column.rows(len(term_columns))
        groups = np.arange(len(term_columns), dtype=np.int64) % 2
        merged = group_fold_synopses(column, rows, groups, 2)
        for group in (0, 1):
            members = rows[groups == group]
            assert np.array_equal(
                merged[group], np.bitwise_or.reduce(members)
            )

    def test_materialize_rows_round_trip(self):
        """Materialized merged synopses score like the packed fold."""
        engine = make_topical_engine("bf-512")
        term_columns = stored_columns(engine)[0]
        column = term_columns.synopsis_column
        rows = column.rows(len(term_columns))
        merged = group_fold_synopses(
            column, rows, np.zeros(len(term_columns), dtype=np.int64), 1
        )
        (synopsis,) = materialize_rows(column, merged)
        assert synopsis.size_in_bits > 0
