"""FlatTopology is the pre-topology engine, bit for bit.

The refactor moved candidate assembly out of ``MinervaEngine`` into
:class:`~repro.topology.flat.FlatTopology`.  These tests pin the
contract that made that move safe: for every synopsis family and both
fetch tiers (full PeerLists and the ``peer_list_limit`` quality-ordered
partial fetch), ``engine.run_query`` produces exactly the plan that
hand-assembling the context the old way produces — same selection,
same order, same costs.
"""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.minerva.posts import PeerList
from repro.minerva.topk_peers import fetch_top_k_peers
from repro.routing.base import RoutingContext
from repro.routing.cori import CoriSelector
from repro.topology import FlatTopology

from .conftest import make_topical_engine

FAMILIES = ("mips-16", "bf-512", "hs-32", "ll-128")
QUERY = Query(0, ("apple", "banana"))
INITIATOR = "p00"
MAX_PEERS = 3


def manual_selection(engine, *, peer_list_limit=None, selector=None):
    """Candidate assembly exactly as the engine did it pre-refactor."""
    view = engine.local_view(QUERY, INITIATOR)
    if peer_list_limit is not None:
        result = fetch_top_k_peers(
            engine.directory,
            QUERY.terms,
            peer_list_limit,
            batch_size=8,
            requester=INITIATOR,
        )
        peer_lists = {}
        for term in QUERY.terms:
            partial = PeerList(
                term=term, peer_table=engine.directory.peer_table
            )
            for post in result.posts_by_term.get(term, {}).values():
                partial.add(post)
            peer_lists[term] = partial
    else:
        peer_lists = {
            term: engine.directory.peer_list(term, requester=INITIATOR)
            for term in QUERY.terms
        }
    context = RoutingContext(
        query=QUERY,
        peer_lists=peer_lists,
        num_peers=len(engine.peers),
        spec=engine.spec,
        initiator=view,
        conjunctive=False,
    )
    selector = selector or IQNRouter()
    return tuple(selector.rank(context, MAX_PEERS))


@pytest.mark.parametrize("label", FAMILIES)
@pytest.mark.parametrize("peer_list_limit", (None, 2))
def test_run_query_matches_manual_assembly(label, peer_list_limit):
    engine = make_topical_engine(label)
    outcome = engine.run_query(
        QUERY,
        IQNRouter(),
        initiator_id=INITIATOR,
        max_peers=MAX_PEERS,
        peer_list_limit=peer_list_limit,
    )
    manual = manual_selection(
        make_topical_engine(label), peer_list_limit=peer_list_limit
    )
    assert outcome.selected == manual


@pytest.mark.parametrize("label", FAMILIES)
def test_cori_selector_unaffected_by_refactor(label):
    engine = make_topical_engine(label)
    outcome = engine.run_query(
        QUERY, CoriSelector(), initiator_id=INITIATOR, max_peers=MAX_PEERS
    )
    manual = manual_selection(
        make_topical_engine(label), selector=CoriSelector()
    )
    assert outcome.selected == manual


def test_default_topology_is_flat():
    engine = make_topical_engine()
    assert isinstance(engine.topology, FlatTopology)
    assert engine.topology.host is engine
    assert engine.topology.cache_signature() == "FlatTopology()"


def test_flat_plan_carries_no_hierarchy_metadata():
    engine = make_topical_engine()
    outcome = engine.run_query(
        QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=MAX_PEERS
    )
    assert outcome.clusters_ranked == ()
    assert outcome.super_fetches == 0


def test_run_query_cost_identical_across_reruns():
    """Same engine build → same per-query message and bit deltas."""
    fingerprints = []
    for _ in range(2):
        engine = make_topical_engine()
        outcome = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=MAX_PEERS
        )
        fingerprints.append(
            (
                outcome.selected,
                tuple(round(r, 12) for r in outcome.recall_at),
                outcome.cost.total_messages,
                outcome.cost.total_bits,
            )
        )
    assert fingerprints[0] == fingerprints[1]


def test_make_context_still_serves_selectors_directly():
    """make_context (kept for callers that rank by hand) goes through
    the topology and yields the same candidates as run_query."""
    engine = make_topical_engine()
    context = engine.make_context(QUERY, initiator_id=INITIATOR)
    ranked = tuple(IQNRouter().rank(context, MAX_PEERS))
    outcome = make_topical_engine().run_query(
        QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=MAX_PEERS
    )
    assert ranked == outcome.selected


def test_hierarchy_sweep_serial_equals_pooled():
    """The hierarchy experiment's cells are bit-identical at any worker
    count (the repo-wide serial == pooled contract)."""
    from repro.experiments.hierarchy import hierarchy_sweep
    from repro.parallel import ExperimentRunner

    serial = hierarchy_sweep(
        (120,), num_queries=4, spec_label="bf-512", seed=5
    )
    pooled = hierarchy_sweep(
        (120,),
        num_queries=4,
        spec_label="bf-512",
        seed=5,
        runner=ExperimentRunner(workers=2),
    )
    assert serial == pooled
