"""Shared testbeds for the topology suite: a small topical engine whose
peers fall into three clearly separated content communities, so
synopsis clustering has real structure to recover."""

from __future__ import annotations

from repro.ir.documents import Corpus, Document
from repro.minerva.engine import MinervaEngine
from repro.synopses.factory import SynopsisSpec

#: Three topics, two characteristic terms each.
TOPIC_TERMS = (
    ("apple", "apricot"),
    ("banana", "berry"),
    ("cherry", "citrus"),
)
ALL_TERMS = frozenset(term for terms in TOPIC_TERMS for term in terms)


def make_topical_collections(peers_per_topic: int = 3):
    """Per topic: ``peers_per_topic`` collections sharing a six-document
    core plus two peer-specific documents (pairwise Jaccard 0.6 inside a
    topic, zero across topics), so clustering has real communities."""
    collections = []
    for topic, terms in enumerate(TOPIC_TERMS):
        base = topic * 100
        for rank in range(peers_per_topic):
            doc_ids = list(range(base, base + 6)) + [
                base + 20 + rank * 2,
                base + 21 + rank * 2,
            ]
            docs = [
                Document.from_terms(
                    doc_id, [terms[0]] * (1 + doc_id % 2) + [terms[1]]
                )
                for doc_id in doc_ids
            ]
            collections.append(Corpus.from_documents(docs))
    return collections


def make_topical_engine(
    spec_label: str = "mips-16",
    *,
    peers_per_topic: int = 3,
    topology=None,
    replicas: int = 1,
) -> MinervaEngine:
    engine = MinervaEngine(
        make_topical_collections(peers_per_topic),
        spec=SynopsisSpec.parse(spec_label),
        topology=topology,
        replicas=replicas,
    )
    engine.publish(set(ALL_TERMS))
    return engine
