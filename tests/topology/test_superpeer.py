"""Tests for two-phase super-peer routing (SuperPeerTopology)."""

from __future__ import annotations

import pytest

from repro.core.iqn import IQNRouter
from repro.datasets.queries import Query
from repro.net.cost import MessageKinds
from repro.net.latency import LatencyProfile
from repro.topology import SuperPeerTopology
from repro.topology.base import ReElection

from .conftest import make_topical_engine

QUERY = Query(0, ("apple", "banana"))
INITIATOR = "p00"


def make_superpeer_engine(
    spec_label: str = "bf-512", *, num_clusters: int = 3, seed: int = 0, **kw
):
    return make_topical_engine(
        spec_label,
        topology=SuperPeerTopology(
            num_clusters=num_clusters, seed=seed, **kw
        ),
    )


class TestClusterState:
    def test_build_is_deterministic(self):
        first = make_superpeer_engine().topology
        second = make_superpeer_engine().topology
        assert first.ensure_clusters() == second.ensure_clusters()

    def test_every_peer_in_exactly_one_cluster(self):
        engine = make_superpeer_engine()
        clusters = engine.topology.ensure_clusters()
        seen = [p for c in clusters for p in c.members]
        assert sorted(seen) == sorted(engine.peers)

    def test_super_peer_is_a_member(self):
        for cluster in make_superpeer_engine().topology.ensure_clusters():
            assert cluster.super_peer in cluster.members

    def test_cache_signature_reflects_knobs(self):
        a = SuperPeerTopology(num_clusters=3, seed=0)
        b = SuperPeerTopology(num_clusters=4, seed=0)
        c = SuperPeerTopology(num_clusters=3, seed=1)
        assert len({a.cache_signature(), b.cache_signature(), c.cache_signature()}) == 3

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SuperPeerTopology(num_clusters=0)
        with pytest.raises(ValueError):
            SuperPeerTopology(cluster_budget=0)
        with pytest.raises(ValueError):
            SuperPeerTopology(refine_rounds=-1)


class TestBudgetSplit:
    def test_explicit_budget_wins(self):
        assert SuperPeerTopology(cluster_budget=7).resolve_cluster_budget(100) == 7

    def test_isqrt_of_max_peers(self):
        topo = SuperPeerTopology()
        assert topo.resolve_cluster_budget(16) == 4
        assert topo.resolve_cluster_budget(1) == 1

    def test_default_without_max_peers(self):
        assert SuperPeerTopology().resolve_cluster_budget(None) == 3


class TestRouting:
    def test_selected_come_from_winning_clusters(self):
        engine = make_superpeer_engine()
        outcome = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        topology = engine.topology
        assert outcome.clusters_ranked
        winners = set(outcome.clusters_ranked)
        for peer_id in outcome.selected:
            assert topology.cluster_of(peer_id) in winners

    def test_super_fetches_counted(self):
        engine = make_superpeer_engine()
        outcome = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        assert outcome.super_fetches == 1 + len(outcome.clusters_ranked)

    def test_charges_cluster_and_member_fetches_not_hops(self):
        engine = make_superpeer_engine()
        outcome = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        assert outcome.cost.messages(MessageKinds.CLUSTER_FETCH) == 1
        assert outcome.cost.messages(MessageKinds.MEMBER_FETCH) == len(
            outcome.clusters_ranked
        )
        assert outcome.cost.messages(MessageKinds.DHT_HOP) == 0
        assert outcome.cost.messages(MessageKinds.PEERLIST_FETCH) == 0

    def test_fewer_messages_than_flat(self):
        flat_outcome = make_topical_engine("bf-512").run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        super_outcome = make_superpeer_engine().run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        assert (
            super_outcome.cost.total_messages
            < flat_outcome.cost.total_messages
        )

    def test_peer_list_limit_unsupported(self):
        engine = make_superpeer_engine()
        with pytest.raises(ValueError, match="peer_list_limit"):
            engine.run_query(
                QUERY,
                IQNRouter(),
                initiator_id=INITIATOR,
                max_peers=3,
                peer_list_limit=2,
            )

    def test_networked_matches_passive_without_faults(self):
        passive = make_superpeer_engine().run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        networked = make_superpeer_engine().run_query_networked(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        assert networked.outcome.selected == passive.selected
        assert networked.clusters_ranked == passive.clusters_ranked
        assert networked.super_peer_fetches == passive.super_fetches
        assert networked.topology_fallbacks == 0


class TestChurnHooks:
    def test_member_down_rebuilds_without_reelection(self):
        engine = make_superpeer_engine()
        topology = engine.topology
        topology.ensure_clusters()
        label = topology.clusters[0].label
        victim = next(
            p
            for p in topology.members_of(label)
            if p != topology.super_of_cluster(label)
        )
        assert topology.handle_peer_down(victim) is None
        assert victim not in topology.live_members(label)

    def test_super_down_triggers_deterministic_reelection(self):
        results = []
        for _ in range(2):
            engine = make_superpeer_engine()
            topology = engine.topology
            topology.ensure_clusters()
            label = topology.clusters[0].label
            old_super = topology.super_of_cluster(label)
            reelection = topology.handle_peer_down(old_super)
            results.append(reelection)
        first, second = results
        assert isinstance(first, ReElection)
        assert first == second
        assert first.old_super != first.new_super
        assert first.old_super not in first.members
        assert first.new_super in first.members

    def test_down_peer_excluded_from_routing_scope(self):
        engine = make_superpeer_engine()
        topology = engine.topology
        outcome = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        victim = outcome.selected[0]
        topology.handle_peer_down(victim)
        after = engine.run_query(
            QUERY, IQNRouter(), initiator_id=INITIATOR, max_peers=3
        )
        assert victim not in after.selected

    def test_unknown_or_repeated_down_is_noop(self):
        engine = make_superpeer_engine()
        topology = engine.topology
        topology.ensure_clusters()
        assert topology.handle_peer_down("nobody") is None
        label = topology.clusters[0].label
        super_peer = topology.super_of_cluster(label)
        assert topology.handle_peer_down(super_peer) is not None
        assert topology.handle_peer_down(super_peer) is None

    def test_peer_up_restores_membership(self):
        engine = make_superpeer_engine()
        topology = engine.topology
        topology.ensure_clusters()
        label = topology.clusters[0].label
        victim = next(
            p
            for p in topology.members_of(label)
            if p != topology.super_of_cluster(label)
        )
        topology.handle_peer_down(victim)
        topology.handle_peer_up(victim)
        assert victim in topology.live_members(label)


class TestLatencyProfiles:
    def test_intra_vs_inter_cluster_profile(self):
        intra = LatencyProfile(per_message_ms=1.0, per_kilobit_ms=0.0)
        inter = LatencyProfile(per_message_ms=9.0, per_kilobit_ms=0.0)
        engine = make_topical_engine(
            "bf-512",
            topology=SuperPeerTopology(
                num_clusters=3, seed=0, intra_profile=intra, inter_profile=inter
            ),
        )
        topology = engine.topology
        topology.ensure_clusters()
        label = topology.clusters[0].label
        members = topology.members_of(label)
        assert topology.latency_profile_of(members[0], members[-1]) is intra
        other = next(
            c.members[0] for c in topology.clusters if c.label != label
        )
        assert topology.latency_profile_of(members[0], other) is inter

    def test_unknown_peers_fall_back_to_base(self):
        topology = SuperPeerTopology(
            intra_profile=LatencyProfile(per_message_ms=1.0)
        )
        assert topology.latency_profile_of("x", "y") is None
