"""Content-addressed persistence for expensive experiment setups.

Grid experiments rebuild the identical corpus, per-peer indexes,
synopses, and directory Posts for every cell — by far the dominant cost
once query execution itself is pooled.  ``SetupCache`` makes each
distinct setup a build-once artifact:

- the **key** is a SHA-256 fingerprint of the setup's declared
  ingredients (corpus config, scorer, synopsis family/size, seed, any
  builder parameters), canonicalized so dataclasses, tuples, sets, and
  nested mappings fingerprint identically across processes and runs;
- the **value** is the built object pickled to
  ``<cache_dir>/<kind>-<digest>.pkl`` with an atomic rename, so a
  crashed build never leaves a half-written artifact behind;
- **invalidation** is purely key-driven: any ingredient change produces
  a new digest, and builder-code changes are covered by bumping
  :data:`SETUP_SCHEMA_VERSION` (mixed into every fingerprint).  Nothing
  is mutated in place, so stale entries are merely unreferenced files.

A disabled cache (``enabled=False``) still *writes* artifacts — pooled
workers attach to setups by unpickling the artifact path — it just never
reuses one across calls.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

__all__ = ["CacheStats", "SetupCache", "fingerprint_parts"]

#: Bump when a builder's output format changes without any ingredient
#: changing — every fingerprint mixes this in, invalidating en masse.
SETUP_SCHEMA_VERSION = 1


def _canonicalize(value: Any) -> Any:
    """Reduce a setup ingredient to a JSON-stable structure."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            field.name: _canonicalize(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__qualname__, **fields}
    if isinstance(value, Mapping):
        return {str(key): _canonicalize(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonicalize(item) for item in value)
    if isinstance(value, float):
        # repr round-trips exactly; JSON's float formatting may not.
        return {"__float__": repr(value)}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, type):
        return f"{value.__module__}.{value.__qualname__}"
    raise TypeError(
        f"cannot fingerprint a {type(value).__name__!r} ingredient; "
        "pass dataclasses, primitives, or containers of them"
    )


def fingerprint_parts(parts: Mapping[str, Any]) -> str:
    """A stable hex digest of a setup's declared ingredients."""
    canonical = json.dumps(
        {"__schema__": SETUP_SCHEMA_VERSION, **_canonicalize(dict(parts))},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for benchmarks and tests."""

    hits: int = 0
    misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


class SetupCache:
    """Build-once storage for pickled setups, addressed by fingerprint."""

    #: Setups memoized in process (a grid's cells share one testbed;
    #: only the first cell should pay the unpickle).
    MEMO_SIZE = 4

    def __init__(
        self, cache_dir: str | Path | None = None, *, enabled: bool = True
    ):
        self._explicit_dir = None if cache_dir is None else Path(cache_dir)
        self._temp_dir: tempfile.TemporaryDirectory[str] | None = None
        self.enabled = enabled
        self.stats = CacheStats()
        self._memo: OrderedDict[str, Any] = OrderedDict()

    @property
    def cache_dir(self) -> Path:
        """The artifact directory (an ephemeral temp dir if none given)."""
        if self._explicit_dir is not None:
            self._explicit_dir.mkdir(parents=True, exist_ok=True)
            return self._explicit_dir
        if self._temp_dir is None:
            self._temp_dir = tempfile.TemporaryDirectory(
                prefix="repro-setup-cache-"
            )
        return Path(self._temp_dir.name)

    def path_for(self, kind: str, digest: str) -> Path:
        if not kind or any(ch in kind for ch in "/\\"):
            raise ValueError(f"invalid setup kind {kind!r}")
        return self.cache_dir / f"{kind}-{digest}.pkl"

    def get_or_build(
        self,
        kind: str,
        parts: Mapping[str, Any],
        builder: Callable[[], Any],
    ) -> tuple[Any, Path]:
        """Return ``(setup, artifact_path)``, building at most once.

        A hit returns the in-process memoized object (grid cells share
        setups; only the first pays the unpickle) or unpickles the
        existing artifact; a miss (including an unreadable/corrupt
        artifact, which is silently rebuilt) calls ``builder`` and
        persists its result atomically.  Cached setups are shared —
        treat them as immutable.
        """
        digest = fingerprint_parts(parts)
        path = self.path_for(kind, digest)
        memo_key = str(path)
        if self.enabled and memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            self.stats.hits += 1
            return self._memo[memo_key], path
        if self.enabled and path.exists():
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (pickle.UnpicklingError, EOFError, OSError, ValueError):
                pass  # corrupt artifact: fall through to a rebuild
            else:
                self.stats.hits += 1
                self._memoize(memo_key, value)
                return value, path
        value = builder()
        self._write_atomic(path, value)
        self.stats.misses += 1
        if self.enabled:
            self._memoize(memo_key, value)
        return value, path

    def _memoize(self, memo_key: str, value: Any) -> None:
        self._memo[memo_key] = value
        self._memo.move_to_end(memo_key)
        while len(self._memo) > self.MEMO_SIZE:
            self._memo.popitem(last=False)

    def spill(self, kind: str, value: Any) -> Path:
        """Persist an already-built object, addressed by its own bytes.

        Used to hand ad-hoc setups (built outside :meth:`get_or_build`)
        to pool workers; identical objects dedupe to one artifact.
        """
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(data).hexdigest()[:16]
        path = self.path_for(kind, digest)
        if not path.exists():
            self._write_bytes_atomic(path, data)
        return path

    def _write_atomic(self, path: Path, value: Any) -> None:
        self._write_bytes_atomic(
            path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def _write_bytes_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
