"""A deterministic process pool for (task, seed) experiment workloads.

``TaskPool`` fans a list of tasks out across ``multiprocessing`` workers
and returns the results **in task order**, with three guarantees the
plain ``Pool.map`` does not give:

- **Determinism** — every task receives a seed derived from the pool's
  root seed and the task's position (:func:`~repro.parallel.seeding.derive_seed`),
  never from worker identity or scheduling, so results are bit-identical
  at any worker count, including the in-process serial path
  (``workers <= 1``), which runs the exact same entrypoint protocol
  without spawning anything.
- **One pickle per worker, not per task** — heavyweight shared state (a
  built testbed, an engine) is written to disk once and each worker
  unpickles it in its initializer; tasks then reference it through
  :func:`current_setup` and stay small.
- **Failure surfacing** — a task exception is re-raised in the parent as
  :class:`TaskFailureError` carrying the worker traceback and the task's
  index; a worker killed by the OS raises :class:`WorkerCrashError`
  instead of hanging; a task that exceeds ``task_timeout_s`` raises
  :class:`TaskTimeoutError`.

Worker entrypoints must be module-level functions (picklable by
reference) with the signature ``fn(task, seed)``; by repository
convention they are named ``*_task``, which the reprolint RPRL006 rule
uses to verify the explicit ``seed`` parameter is present.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import pickle
import traceback
from pathlib import Path
from typing import Any, Callable, Sequence

from .seeding import derive_seed

__all__ = [
    "TaskFailureError",
    "TaskPool",
    "TaskTimeoutError",
    "WorkerCrashError",
    "current_setup",
]

#: The per-process shared setup object, populated by the worker
#: initializer (pooled mode) or directly by the pool (serial mode), and
#: the artifact path it corresponds to (fork-inheritance handshake).
_WORKER_SETUP: Any = None
_WORKER_SETUP_TOKEN: str | None = None


def current_setup() -> Any:
    """The setup object this worker was initialized with (or None)."""
    return _WORKER_SETUP


def _initialize_worker(setup_path: str) -> None:
    """Worker initializer: adopt the fork-inherited setup when its token
    matches, otherwise unpickle the artifact exactly once."""
    global _WORKER_SETUP, _WORKER_SETUP_TOKEN
    if _WORKER_SETUP_TOKEN == setup_path:
        return  # inherited the parent's in-memory setup via fork
    with open(setup_path, "rb") as handle:
        _WORKER_SETUP = pickle.load(handle)
    _WORKER_SETUP_TOKEN = setup_path


class TaskFailureError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""

    def __init__(self, task_index: int, remote_traceback: str):
        self.task_index = task_index
        self.remote_traceback = remote_traceback
        super().__init__(
            f"task {task_index} failed in worker:\n{remote_traceback}"
        )


class TaskTimeoutError(RuntimeError):
    """A task did not produce a result within ``task_timeout_s``."""

    def __init__(self, task_index: int, timeout_s: float):
        self.task_index = task_index
        self.timeout_s = timeout_s
        super().__init__(
            f"task {task_index} produced no result within {timeout_s:g}s"
        )


class WorkerCrashError(RuntimeError):
    """A worker process died (segfault, OOM-kill, os._exit) mid-run."""


def _run_packed_task(
    packed: tuple[int, Callable[[Any, int], Any], Any, int],
) -> tuple[int, bool, Any, str | None]:
    """The uniform remote entrypoint: run one task, never raise."""
    index, fn, task, seed = packed
    try:
        return index, True, fn(task, seed), None
    except Exception:
        return index, False, None, traceback.format_exc()


class TaskPool:
    """Deterministic ordered fan-out of tasks over worker processes."""

    def __init__(
        self,
        workers: int = 1,
        *,
        root_seed: int = 0,
        setup: Any = None,
        setup_path: str | Path | None = None,
        task_timeout_s: float | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be positive, got {task_timeout_s}"
            )
        self.workers = workers
        self.root_seed = root_seed
        self._setup = setup
        self._setup_path = None if setup_path is None else str(setup_path)
        self.task_timeout_s = task_timeout_s
        self._mp_context = mp_context

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[Any],
        *,
        start_index: int = 0,
    ) -> list[Any]:
        """Run ``fn(task, seed)`` for every task; results in task order.

        ``start_index`` offsets the per-task seed derivation: task ``i``
        of this call derives its seed as position ``start_index + i`` of
        the logical grid.  A caller splitting one grid across several
        ``map`` calls (e.g. the runner's adaptive probe) passes each
        slice's global offset so every task keeps the seed it would get
        in a single call.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if start_index < 0:
            raise ValueError(f"start_index must be >= 0, got {start_index}")
        packed = [
            (index, fn, task, derive_seed(self.root_seed, start_index + index))
            for index, task in enumerate(tasks)
        ]
        if self.workers <= 1:
            return self._map_serial(packed)
        return self._map_pooled(packed)

    def _map_serial(
        self,
        packed: list[tuple[int, Callable[[Any, int], Any], Any, int]],
    ) -> list[Any]:
        """In-process execution with identical entrypoint semantics."""
        global _WORKER_SETUP
        previous = _WORKER_SETUP
        _WORKER_SETUP = self._load_setup()
        try:
            results: list[Any] = []
            for item in packed:
                index, ok, value, remote_tb = _run_packed_task(item)
                if not ok:
                    assert remote_tb is not None
                    raise TaskFailureError(index, remote_tb)
                results.append(value)
            return results
        finally:
            _WORKER_SETUP = previous

    def _map_pooled(
        self,
        packed: list[tuple[int, Callable[[Any, int], Any], Any, int]],
    ) -> list[Any]:
        context = self._mp_context or _default_context()
        initializer = None
        initargs: tuple[str, ...] = ()
        if self._setup_path is not None:
            initializer = _initialize_worker
            initargs = (self._setup_path,)
        elif self._setup is not None:
            raise ValueError(
                "pooled execution with a shared setup requires setup_path "
                "(one pickle per worker); pass the spill path, not the object"
            )
        num_workers = min(self.workers, len(packed))
        global _WORKER_SETUP, _WORKER_SETUP_TOKEN
        previous = (_WORKER_SETUP, _WORKER_SETUP_TOKEN)
        if (
            self._setup is not None
            and self._setup_path is not None
            and context.get_start_method() == "fork"
        ):
            # Workers forked while these globals are set inherit the
            # parent's built setup directly — zero unpickles; the token
            # lets the initializer detect (and trust) the inheritance.
            # Workers started later (e.g. pool repair) miss the window
            # and fall back to loading the artifact from disk.
            _WORKER_SETUP, _WORKER_SETUP_TOKEN = self._setup, self._setup_path
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )
        try:
            futures = [
                executor.submit(_run_packed_task, item) for item in packed
            ]
            results = []
            for index, future in enumerate(futures):
                try:
                    _, ok, value, remote_tb = future.result(
                        timeout=self.task_timeout_s
                    )
                except concurrent.futures.TimeoutError:
                    # The overdue task may be wedged forever; a graceful
                    # shutdown would join it, so kill the workers instead.
                    for pending in futures:
                        pending.cancel()
                    for process in list(
                        getattr(executor, "_processes", {}).values()
                    ):
                        process.terminate()
                    assert self.task_timeout_s is not None
                    raise TaskTimeoutError(
                        index, self.task_timeout_s
                    ) from None
                except concurrent.futures.process.BrokenProcessPool as exc:
                    raise WorkerCrashError(
                        f"a worker process died while task {index} was "
                        f"outstanding: {exc}"
                    ) from exc
                if not ok:
                    assert remote_tb is not None
                    raise TaskFailureError(index, remote_tb)
                results.append(value)
            return results
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
            _WORKER_SETUP, _WORKER_SETUP_TOKEN = previous

    # -- helpers -----------------------------------------------------------

    def _load_setup(self) -> Any:
        if self._setup is not None:
            return self._setup
        if self._setup_path is not None:
            with open(self._setup_path, "rb") as handle:
                return pickle.load(handle)
        return None


def _default_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap worker start, shares the imported modules);
    fall back to spawn on platforms without it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
