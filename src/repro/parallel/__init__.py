"""Deterministic parallel experiment execution.

The paper's evaluation is a grid of thousands of independent routed
queries over a handful of expensive setups; this package supplies the
two levers that make the grid fast without changing a single result bit:

- :class:`~repro.parallel.pool.TaskPool` — process-pool fan-out with
  per-task derived seeds and ordered result aggregation;
- :class:`~repro.parallel.cache.SetupCache` — content-addressed,
  build-once persistence for corpora/indexes/synopses/directories;
- :class:`~repro.parallel.runner.ExperimentRunner` — the two combined
  behind the API every experiment harness accepts via ``runner=``.
"""

from .cache import CacheStats, SetupCache, fingerprint_parts
from .pool import (
    TaskFailureError,
    TaskPool,
    TaskTimeoutError,
    WorkerCrashError,
    current_setup,
)
from .runner import ExperimentRunner, SetupHandle
from .seeding import derive_seed

__all__ = [
    "CacheStats",
    "ExperimentRunner",
    "SetupCache",
    "SetupHandle",
    "TaskFailureError",
    "TaskPool",
    "TaskTimeoutError",
    "WorkerCrashError",
    "current_setup",
    "derive_seed",
    "fingerprint_parts",
]
