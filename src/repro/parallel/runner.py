"""The shared execution API every experiment harness runs on.

``ExperimentRunner`` bundles the two performance levers of the parallel
engine behind one object that harnesses thread through:

- a :class:`~repro.parallel.cache.SetupCache` so each distinct setup
  (corpus + indexes + synopses + directory) is built once per grid, and
- a :class:`~repro.parallel.pool.TaskPool` per fan-out, so (query,
  config) tasks spread across CPU cores with per-task derived seeds and
  ordered, bit-identical results.

The contract harnesses rely on::

    runner = ExperimentRunner(workers=8, cache_dir="~/.cache/repro")
    handle = runner.setup("fig3-testbed", parts, build)   # cached build
    results = runner.map(my_task, tasks, setup=handle)    # ordered

``runner.map`` with ``workers=1`` (the default) runs tasks serially in
process through the identical entrypoint protocol — experiments always
produce the same bytes at any worker count, so ``--workers`` is purely a
wall-clock knob.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from pathlib import Path
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from .cache import SetupCache
from .pool import TaskPool

__all__ = ["ExperimentRunner", "SetupHandle"]

logger = logging.getLogger("repro.parallel")


class SetupHandle(NamedTuple):
    """A built setup plus the artifact path pool workers attach to."""

    value: Any
    path: Path | None


class ExperimentRunner:
    """Process-pool execution + setup caching behind one small API."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        root_seed: int = 0,
        task_timeout_s: float | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        adaptive_serial_s: float | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if adaptive_serial_s is not None and adaptive_serial_s <= 0:
            raise ValueError(
                f"adaptive_serial_s must be positive, got {adaptive_serial_s}"
            )
        self.workers = workers
        self.root_seed = root_seed
        self.task_timeout_s = task_timeout_s
        #: With ``adaptive_serial_s`` set and ``workers > 1``, ``map``
        #: probes the first task in-process; if the whole grid projects
        #: to finish under the threshold, the remaining tasks stay
        #: in-process too (pool startup would dominate).  Results are
        #: identical either way — seeds derive from grid position.
        self.adaptive_serial_s = adaptive_serial_s
        #: Execution mode of the most recent ``map`` call: "serial",
        #: "pooled", or "adaptive-serial" (probe kept the grid in-process).
        self.last_map_mode: str | None = None
        self._mp_context = mp_context
        self.cache = SetupCache(cache_dir, enabled=use_cache)

    # -- setups ------------------------------------------------------------

    def setup(
        self,
        kind: str,
        parts: Mapping[str, Any],
        builder: Callable[[], Any],
    ) -> SetupHandle:
        """Build (or load) a content-addressed setup; see ``SetupCache``."""
        value, path = self.cache.get_or_build(kind, parts, builder)
        return SetupHandle(value=value, path=path)

    def attach(self, kind: str, value: Any) -> SetupHandle:
        """Wrap an already-built object so pooled workers can load it."""
        if self.workers <= 1:
            return SetupHandle(value=value, path=None)
        return SetupHandle(value=value, path=self.cache.spill(kind, value))

    # -- fan-out -----------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[Any],
        *,
        setup: SetupHandle | None = None,
    ) -> list[Any]:
        """Run ``fn(task, seed)`` over ``tasks``; results in task order.

        Results are value-identical at any worker count, and each result
        pickles to the same bytes.  Pooled results are independent
        unpickles, though: a task returning references *into the shared
        setup* (its peer-id strings, say) yields an aggregate whose
        cross-element object sharing differs from the serial run, so
        callers that serialize whole aggregates should intern such
        references first (see ``measure_load``).

        With ``adaptive_serial_s`` configured and ``workers > 1``, the
        first task runs in-process as a cost probe: if the measured
        per-task time projects the whole grid under the threshold, the
        remaining tasks run in-process too (process-pool startup would
        cost more than it saves); otherwise they fan out to the pool
        with their grid-position seeds intact, so the result bytes are
        the same in every mode.
        """
        if self.workers <= 1:
            self.last_map_mode = "serial"
            return self._pool(1, setup).map(fn, tasks)
        if self.adaptive_serial_s is None or len(tasks) <= 1:
            self.last_map_mode = "pooled"
            return self._pooled_map(fn, tasks, setup, start_index=0)
        probe_pool = self._pool(1, setup)
        started = time.perf_counter()
        head = probe_pool.map(fn, tasks[:1])
        per_task_s = time.perf_counter() - started
        projected_s = per_task_s * len(tasks)
        if projected_s <= self.adaptive_serial_s:
            self.last_map_mode = "adaptive-serial"
            logger.info(
                "adaptive map: %d tasks projected at %.3fs <= %.3fs "
                "threshold; staying in-process",
                len(tasks),
                projected_s,
                self.adaptive_serial_s,
            )
            return head + probe_pool.map(fn, tasks[1:], start_index=1)
        self.last_map_mode = "pooled"
        logger.info(
            "adaptive map: %d tasks projected at %.3fs > %.3fs threshold; "
            "fanning out to %d workers",
            len(tasks),
            projected_s,
            self.adaptive_serial_s,
            self.workers,
        )
        return head + self._pooled_map(fn, tasks[1:], setup, start_index=1)

    def _pool(self, workers: int, setup: SetupHandle | None) -> TaskPool:
        return TaskPool(
            workers,
            root_seed=self.root_seed,
            setup=None if setup is None else setup.value,
            setup_path=None if setup is None else setup.path,
            task_timeout_s=self.task_timeout_s,
            mp_context=self._mp_context,
        )

    def _pooled_map(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[Any],
        setup: SetupHandle | None,
        *,
        start_index: int,
    ) -> list[Any]:
        if setup is not None and setup.path is None:
            setup = SetupHandle(
                value=setup.value,
                path=self.cache.spill("adhoc-setup", setup.value),
            )
        return self._pool(self.workers, setup).map(
            fn, tasks, start_index=start_index
        )

    def __repr__(self) -> str:
        return (
            f"ExperimentRunner(workers={self.workers}, "
            f"cache_dir={str(self.cache.cache_dir)!r}, "
            f"use_cache={self.cache.enabled})"
        )
