"""The shared execution API every experiment harness runs on.

``ExperimentRunner`` bundles the two performance levers of the parallel
engine behind one object that harnesses thread through:

- a :class:`~repro.parallel.cache.SetupCache` so each distinct setup
  (corpus + indexes + synopses + directory) is built once per grid, and
- a :class:`~repro.parallel.pool.TaskPool` per fan-out, so (query,
  config) tasks spread across CPU cores with per-task derived seeds and
  ordered, bit-identical results.

The contract harnesses rely on::

    runner = ExperimentRunner(workers=8, cache_dir="~/.cache/repro")
    handle = runner.setup("fig3-testbed", parts, build)   # cached build
    results = runner.map(my_task, tasks, setup=handle)    # ordered

``runner.map`` with ``workers=1`` (the default) runs tasks serially in
process through the identical entrypoint protocol — experiments always
produce the same bytes at any worker count, so ``--workers`` is purely a
wall-clock knob.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from .cache import SetupCache
from .pool import TaskPool

__all__ = ["ExperimentRunner", "SetupHandle"]


class SetupHandle(NamedTuple):
    """A built setup plus the artifact path pool workers attach to."""

    value: Any
    path: Path | None


class ExperimentRunner:
    """Process-pool execution + setup caching behind one small API."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        root_seed: int = 0,
        task_timeout_s: float | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.root_seed = root_seed
        self.task_timeout_s = task_timeout_s
        self._mp_context = mp_context
        self.cache = SetupCache(cache_dir, enabled=use_cache)

    # -- setups ------------------------------------------------------------

    def setup(
        self,
        kind: str,
        parts: Mapping[str, Any],
        builder: Callable[[], Any],
    ) -> SetupHandle:
        """Build (or load) a content-addressed setup; see ``SetupCache``."""
        value, path = self.cache.get_or_build(kind, parts, builder)
        return SetupHandle(value=value, path=path)

    def attach(self, kind: str, value: Any) -> SetupHandle:
        """Wrap an already-built object so pooled workers can load it."""
        if self.workers <= 1:
            return SetupHandle(value=value, path=None)
        return SetupHandle(value=value, path=self.cache.spill(kind, value))

    # -- fan-out -----------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[Any],
        *,
        setup: SetupHandle | None = None,
    ) -> list[Any]:
        """Run ``fn(task, seed)`` over ``tasks``; results in task order.

        Results are value-identical at any worker count, and each result
        pickles to the same bytes.  Pooled results are independent
        unpickles, though: a task returning references *into the shared
        setup* (its peer-id strings, say) yields an aggregate whose
        cross-element object sharing differs from the serial run, so
        callers that serialize whole aggregates should intern such
        references first (see ``measure_load``).
        """
        if setup is not None and self.workers > 1 and setup.path is None:
            setup = SetupHandle(
                value=setup.value,
                path=self.cache.spill("adhoc-setup", setup.value),
            )
        pool = TaskPool(
            self.workers,
            root_seed=self.root_seed,
            setup=None if setup is None else setup.value,
            setup_path=None if setup is None else setup.path,
            task_timeout_s=self.task_timeout_s,
            mp_context=self._mp_context,
        )
        return pool.map(fn, tasks)

    def __repr__(self) -> str:
        return (
            f"ExperimentRunner(workers={self.workers}, "
            f"cache_dir={str(self.cache.cache_dir)!r}, "
            f"use_cache={self.cache.enabled})"
        )
