"""Deterministic per-task seed derivation for pooled execution.

Experiment results must be bit-identical regardless of how many workers
execute the task list or in which order the scheduler happens to run
them.  The only way to guarantee that is to make every task's randomness
a pure function of (root seed, task identity) — never of worker index,
submission time, or interleaving.  ``derive_seed`` hashes the root seed
together with the task id through SHA-256, so:

- the same (root seed, task id) always yields the same seed, on every
  platform and process (unlike ``hash()``, which is salted per process);
- distinct task ids yield statistically independent seeds even when the
  root seeds are small consecutive integers;
- the root seed is explicit, satisfying the reprolint RPRL002 contract
  (no entropy drawn from interpreter start-up state).
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]

#: Derived seeds are 63-bit so they stay positive and fit any consumer
#: (``random.Random``, numpy ``SeedSequence``, C RNGs with int64 seeds).
_SEED_BITS = 63


def derive_seed(root_seed: int, task_id: int | str) -> int:
    """A stable, collision-resistant seed for one task.

    ``task_id`` is the task's position in the submitted task list (or
    any stable string identity); two tasks must never share an id within
    one pool run.
    """
    digest = hashlib.sha256(f"{root_seed}:{task_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << _SEED_BITS) - 1)
