"""A Chord node: identifier, finger table, and a local key-value store.

MINERVA layers its directory on Chord (Section 4): every node is
responsible for the term keys that fall between its predecessor's id and
its own.  Nodes here are simulation objects — the "network" between them
is the :class:`~repro.dht.ring.ChordRing`, which resolves lookups by
walking finger tables and counting hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .hashing import DEFAULT_ID_BITS

__all__ = ["ChordNode"]


@dataclass
class ChordNode:
    """One node of the simulated Chord ring.

    Attributes
    ----------
    node_id:
        Position on the identifier ring.
    bits:
        Identifier width; the finger table has one entry per bit.
    fingers:
        ``fingers[i]`` is the id of the first node succeeding
        ``node_id + 2**i``; filled in by the ring on (re)build.
    store:
        The key-value partition this node is responsible for.  Keys are
        ring ids; values are arbitrary directory payloads (PeerLists).
    """

    node_id: int
    bits: int = DEFAULT_ID_BITS
    fingers: list[int] = field(default_factory=list)
    successor: int | None = None
    predecessor: int | None = None
    store: dict[int, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.node_id < (1 << self.bits):
            raise ValueError(
                f"node_id {self.node_id} outside the {self.bits}-bit ring"
            )

    def finger_start(self, index: int) -> int:
        """Ring position ``node_id + 2**index`` that finger ``index`` covers."""
        if not 0 <= index < self.bits:
            raise IndexError(f"finger index must be in [0, {self.bits}), got {index}")
        return (self.node_id + (1 << index)) % (1 << self.bits)

    @property
    def num_stored_keys(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return f"ChordNode(id={self.node_id}, keys={len(self.store)})"
