"""The simulated Chord ring: lookups, routing hops, replication.

Implements the structural core of Chord (Stoica et al. 2001) that the
MINERVA directory needs:

- **key responsibility**: a key is owned by its *successor* — the first
  node clockwise from the key's ring id;
- **finger-table routing**: ``lookup`` walks greedy closest-preceding
  fingers, returning the hop count (``O(log n)`` w.h.p.), so the cost
  model can charge real routing work for directory operations;
- **replication**: "the responsibility for a term can be replicated
  across multiple peers" (Section 4) — ``replica_nodes`` returns the
  ``r`` immediate successors.

Churn is modeled by ``add_node`` / ``remove_node``, which re-derive the
affected finger tables and migrate stored keys to their new owners.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

from .hashing import DEFAULT_ID_BITS, chord_id, in_interval
from .node import ChordNode

__all__ = ["ChordRing", "LookupResult"]


class LookupResult:
    """Outcome of a routed lookup: the owner node id and the path taken."""

    __slots__ = ("owner", "path")

    def __init__(self, owner: int, path: list[int]):
        self.owner = owner
        self.path = path

    @property
    def hops(self) -> int:
        """Number of network hops (path edges) the lookup traversed."""
        return max(0, len(self.path) - 1)

    def __repr__(self) -> str:
        return f"LookupResult(owner={self.owner}, hops={self.hops})"


class ChordRing:
    """A complete, consistent Chord ring over a set of nodes."""

    def __init__(self, node_names: Iterable[str | int], *, bits: int = DEFAULT_ID_BITS):
        self.bits = bits
        self._nodes: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []
        for name in node_names:
            self._insert(chord_id(name, bits=bits, salt="node"))
        if not self._nodes:
            raise ValueError("a Chord ring needs at least one node")
        self._rebuild_pointers()

    # -- membership --------------------------------------------------------

    def _insert(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node id collision at {node_id}")
        self._nodes[node_id] = ChordNode(node_id=node_id, bits=self.bits)
        bisect.insort(self._sorted_ids, node_id)

    def add_node(self, name: str | int) -> ChordNode:
        """Join a node, migrating the keys it now owns."""
        node_id = chord_id(name, bits=self.bits, salt="node")
        self._insert(node_id)
        self._rebuild_pointers()
        # The new node takes over keys between its predecessor and itself
        # from its successor.
        successor = self._nodes[self.successor_of(node_id + 1)]
        new_node = self._nodes[node_id]
        migrating = [
            key
            for key in successor.store
            if self.successor_of(key) == node_id
        ]
        for key in migrating:
            new_node.store[key] = successor.store.pop(key)
        return new_node

    def remove_node(self, node_id: int) -> None:
        """Gracefully leave: hand the departing node's keys to its successor."""
        if node_id not in self._nodes:
            raise KeyError(f"no node with id {node_id}")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node of the ring")
        departing = self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        self._rebuild_pointers()
        heir = self._nodes[self.successor_of(node_id)]
        heir.store.update(departing.store)

    def crash_node(self, node_id: int) -> int:
        """Abrupt failure: the node vanishes *with* its store (no handoff).

        This is the ``sim-crash`` semantics of dynamic Chord: the
        partition the node held is gone, and only replicas on other
        nodes (restored via :meth:`re_replicate`) — or fresh
        re-publication — can bring the lost keys back.  Pointers are
        repaired immediately (the state stabilization converges to);
        returns the number of keys lost with the node.
        """
        if node_id not in self._nodes:
            raise KeyError(f"no node with id {node_id}")
        if len(self._nodes) == 1:
            raise ValueError("cannot crash the last node of the ring")
        departing = self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        self._rebuild_pointers()
        return len(departing.store)

    def re_replicate(self, replicas: int) -> int:
        """Restore the replica invariant after membership changed.

        For every key stored anywhere, ensure a copy lives on exactly
        the key's current owner and its ``replicas - 1`` immediate
        successors — copying from any surviving holder and dropping
        copies from nodes no longer in the replica set (the key-range
        handoff that follows joins, leaves, and crash evictions).
        Holders are visited in ring order, so the surviving copy chosen
        is deterministic.  Returns the number of copies created.
        """
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        survivors: dict[int, Any] = {}
        for node_id in self._sorted_ids:
            for key, value in self._nodes[node_id].store.items():
                survivors.setdefault(key, value)
        copied = 0
        for key in sorted(survivors):
            targets = set(self.replica_ids_at(key, replicas))
            for node_id in self._sorted_ids:
                store = self._nodes[node_id].store
                if node_id in targets:
                    if key not in store:
                        store[key] = survivors[key]
                        copied += 1
                elif key in store:
                    del store[key]
        return copied

    def _rebuild_pointers(self) -> None:
        """Recompute successor/predecessor/finger tables for all nodes.

        The simulation rebuilds eagerly instead of running Chord's
        stabilization protocol; the resulting pointers are exactly the
        ones stabilization converges to.
        """
        ids = self._sorted_ids
        count = len(ids)
        for position, node_id in enumerate(ids):
            node = self._nodes[node_id]
            node.successor = ids[(position + 1) % count]
            node.predecessor = ids[(position - 1) % count]
            node.fingers = [
                self.successor_of(node.finger_start(i)) for i in range(self.bits)
            ]

    # -- key resolution ------------------------------------------------------

    def key_id(self, key: str | int) -> int:
        """Ring id of a directory key (term)."""
        return chord_id(key, bits=self.bits, salt="key")

    def successor_of(self, ring_position: int) -> int:
        """Id of the first node at or clockwise after ``ring_position``."""
        ring_position %= 1 << self.bits
        index = bisect.bisect_left(self._sorted_ids, ring_position)
        if index == len(self._sorted_ids):
            index = 0
        return self._sorted_ids[index]

    def owner_of(self, key: str | int) -> ChordNode:
        """The node responsible for ``key`` (no routing, no hops)."""
        return self._nodes[self.successor_of(self.key_id(key))]

    def replica_nodes(self, key: str | int, replicas: int) -> list[ChordNode]:
        """The key's owner plus its ``replicas - 1`` immediate successors."""
        return [
            self._nodes[node_id]
            for node_id in self.replica_ids_at(self.key_id(key), replicas)
        ]

    def replica_ids_at(self, ring_position: int, replicas: int) -> list[int]:
        """Node ids of the replica set for a raw ring position."""
        if replicas <= 0:
            raise ValueError(f"replicas must be positive, got {replicas}")
        replicas = min(replicas, len(self._sorted_ids))
        start = self._sorted_ids.index(self.successor_of(ring_position))
        return [
            self._sorted_ids[(start + i) % len(self._sorted_ids)]
            for i in range(replicas)
        ]

    # -- routed lookup ---------------------------------------------------------

    def lookup(self, key: str | int, *, start_node: int | None = None) -> LookupResult:
        """Route to the owner of ``key`` from ``start_node``, counting hops.

        Standard greedy Chord routing: at each node, if the key lies
        between the node and its successor, the successor is the owner;
        otherwise forward to the closest finger preceding the key.
        """
        key_position = self.key_id(key)
        current = self._sorted_ids[0] if start_node is None else start_node
        if current not in self._nodes:
            raise KeyError(f"start node {current} is not on the ring")
        path = [current]
        # n hops upper-bounds any correct greedy route; exceeding it means
        # the pointers are corrupt.
        for _ in range(len(self._nodes) + 1):
            node = self._nodes[current]
            if self.successor_of(key_position) == current:
                return LookupResult(owner=current, path=path)
            assert node.successor is not None
            if in_interval(
                key_position, current, node.successor, bits=self.bits
            ):
                path.append(node.successor)
                return LookupResult(owner=node.successor, path=path)
            next_hop = self._closest_preceding_finger(node, key_position)
            if next_hop == current:
                next_hop = node.successor
            path.append(next_hop)
            current = next_hop
        raise RuntimeError("Chord routing failed to converge; ring corrupt")

    def _closest_preceding_finger(self, node: ChordNode, key_position: int) -> int:
        for finger in reversed(node.fingers):
            if in_interval(
                finger, node.node_id, key_position, bits=self.bits, inclusive_end=False
            ):
                return finger
        return node.node_id

    # -- storage ------------------------------------------------------------

    def put(
        self, key: str | int, value: Any, *, replicas: int = 1
    ) -> list[ChordNode]:
        """Store ``value`` under ``key`` at the owner (and replicas)."""
        nodes = self.replica_nodes(key, replicas)
        key_position = self.key_id(key)
        for node in nodes:
            node.store[key_position] = value
        return nodes

    def get(self, key: str | int) -> Any:
        """Fetch the value stored under ``key`` from its owner."""
        return self.owner_of(key).store.get(self.key_id(key))

    # -- introspection ----------------------------------------------------------

    @property
    def node_ids(self) -> list[int]:
        return list(self._sorted_ids)

    def node(self, node_id: int) -> ChordNode:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"ChordRing(nodes={len(self._nodes)}, bits={self.bits})"
