"""Consistent hashing for the Chord identifier space.

Chord (Stoica et al., SIGCOMM 2001) places nodes and keys on a ring of
``2^m`` identifiers via a base hash (SHA-1 in the original paper).  We
keep SHA-1 and truncate to the configured identifier width.
"""

from __future__ import annotations

import hashlib

__all__ = ["DEFAULT_ID_BITS", "chord_id", "ring_distance", "in_interval"]

#: Default identifier width of the simulated ring.  32 bits is plenty for
#: simulations of up to thousands of nodes while keeping ids readable.
DEFAULT_ID_BITS = 32


def chord_id(key: str | int, *, bits: int = DEFAULT_ID_BITS, salt: str = "") -> int:
    """Hash ``key`` onto the ``2**bits`` identifier ring.

    ``salt`` separates namespaces (e.g. node ids vs term keys) so a peer
    name never collides with a term by construction of the simulation.
    """
    if bits <= 0 or bits > 160:
        raise ValueError(f"bits must be in [1, 160], got {bits}")
    digest = hashlib.sha1(f"{salt}:{key}".encode()).digest()
    return int.from_bytes(digest, "big") >> (160 - bits)


def ring_distance(start: int, end: int, *, bits: int = DEFAULT_ID_BITS) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    size = 1 << bits
    return (end - start) % size


def in_interval(
    value: int,
    start: int,
    end: int,
    *,
    bits: int = DEFAULT_ID_BITS,
    inclusive_end: bool = True,
) -> bool:
    """True when ``value`` lies in the clockwise interval ``(start, end]``.

    The half-open clockwise interval is Chord's successor test; with
    ``inclusive_end=False`` the interval is fully open, as the finger
    search step requires.
    """
    if start == end:
        # The interval spans the whole ring (Chord's single-node case).
        return inclusive_end or value != start
    distance_value = ring_distance(start, value, bits=bits)
    distance_end = ring_distance(start, end, bits=bits)
    if inclusive_end:
        return 0 < distance_value <= distance_end
    return 0 < distance_value < distance_end
