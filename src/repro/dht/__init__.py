"""Simulated Chord DHT (Stoica et al. 2001) — the directory substrate."""

from .hashing import DEFAULT_ID_BITS, chord_id, in_interval, ring_distance
from .node import ChordNode
from .ring import ChordRing, LookupResult

__all__ = [
    "ChordRing",
    "ChordNode",
    "LookupResult",
    "chord_id",
    "ring_distance",
    "in_interval",
    "DEFAULT_ID_BITS",
]
