"""Reproduction of "IQN Routing: Integrating Quality and Novelty in P2P
Querying and Ranking" (Michel, Bender, Triantafillou, Weikum - EDBT 2006).

The package implements the paper's full stack:

- :mod:`repro.synopses` -- Bloom filters, hash sketches, min-wise
  permutations, score-histogram synopses, and the set-measure algebra;
- :mod:`repro.ir` -- documents, inverted indexes, scoring, top-k, result
  merging, relative recall;
- :mod:`repro.dht` -- the simulated Chord ring under the directory;
- :mod:`repro.net` -- message/byte cost accounting;
- :mod:`repro.simnet` -- discrete-event network simulation: virtual
  clock, fault injection, retrying RPC, networked query execution;
- :mod:`repro.datasets` -- synthetic overlap sets, the GOV-like corpus,
  the paper's two placement strategies, and the query workload;
- :mod:`repro.minerva` -- peers, Posts/PeerLists, the distributed
  directory, and the assembled engine;
- :mod:`repro.routing` -- CORI, random, and the SIGIR'05 one-shot
  overlap baselines;
- :mod:`repro.core` -- the IQN routing method with its aggregation
  strategies, stopping criteria, histogram extension, and the adaptive
  synopsis-length allocator;
- :mod:`repro.churn` -- the directory as a live service: seeded
  membership schedules, maintenance timers (reposts, TTL sweeps, ring
  stabilization), and queries racing against failures;
- :mod:`repro.parallel` -- deterministic process-pool execution and the
  content-addressed setup cache the experiment harnesses run on;
- :mod:`repro.experiments` -- harnesses regenerating every figure.

Quickstart::

    from repro import (
        GovCorpusConfig, build_gov_corpus, fragment_corpus,
        combination_collections, corpora_from_doc_id_sets,
        make_workload, MinervaEngine, SynopsisSpec, IQNRouter,
    )

    config = GovCorpusConfig(num_docs=2000)
    corpus = build_gov_corpus(config)
    fragments = fragment_corpus(corpus, 6)
    collections = corpora_from_doc_id_sets(
        corpus, combination_collections(fragments, 3))
    engine = MinervaEngine(collections, spec=SynopsisSpec.parse("mips-64"))
    queries = make_workload(config, num_queries=5)
    engine.publish({t for q in queries for t in q.terms})
    outcome = engine.run_query(queries[0], IQNRouter(), max_peers=5)
    print(outcome.recall_at)
"""

from .churn import (
    ChurnSchedule,
    ChurnService,
    ChurnStats,
    DirectoryMaintainer,
    MaintenanceConfig,
    MembershipConfig,
    MembershipEvent,
)
from .core import (
    IQNRouter,
    IQNSelection,
    PerPeerAggregation,
    PerTermAggregation,
    RoutingStats,
    estimate_novelty,
)
from .datasets import (
    GovCorpusConfig,
    Query,
    build_gov_corpus,
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    make_workload,
    sliding_window_collections,
)
from .ir import Corpus, Document, InvertedIndex, relative_recall
from .minerva import Directory, MinervaEngine, Peer, PeerList, Post, QueryOutcome
from .parallel import ExperimentRunner, SetupCache, TaskPool, derive_seed
from .routing import (
    CoriSelector,
    LocalView,
    OneShotOverlapSelector,
    PeerSelector,
    RandomSelector,
    RoutingContext,
)
from .simnet import (
    ChurnEvent,
    FaultPlan,
    NetworkedQueryOutcome,
    RetryPolicy,
    SimClock,
    SimNetExecutor,
    Transport,
)
from .synopses import (
    BloomFilter,
    HashSketch,
    MinWisePermutations,
    ScoreHistogramSynopsis,
    SetSynopsis,
    SynopsisSpec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # synopses
    "SetSynopsis",
    "BloomFilter",
    "HashSketch",
    "MinWisePermutations",
    "ScoreHistogramSynopsis",
    "SynopsisSpec",
    # ir
    "Document",
    "Corpus",
    "InvertedIndex",
    "relative_recall",
    # datasets
    "GovCorpusConfig",
    "build_gov_corpus",
    "fragment_corpus",
    "combination_collections",
    "sliding_window_collections",
    "corpora_from_doc_id_sets",
    "Query",
    "make_workload",
    # minerva
    "Peer",
    "Post",
    "PeerList",
    "Directory",
    "MinervaEngine",
    "QueryOutcome",
    # parallel
    "ExperimentRunner",
    "SetupCache",
    "TaskPool",
    "derive_seed",
    # routing
    "PeerSelector",
    "RoutingContext",
    "LocalView",
    "CoriSelector",
    "RandomSelector",
    "OneShotOverlapSelector",
    # core
    "IQNRouter",
    "IQNSelection",
    "PerPeerAggregation",
    "PerTermAggregation",
    "RoutingStats",
    "estimate_novelty",
    # simnet
    "SimClock",
    "Transport",
    "FaultPlan",
    "ChurnEvent",
    "RetryPolicy",
    "SimNetExecutor",
    "NetworkedQueryOutcome",
    # churn
    "MembershipEvent",
    "MembershipConfig",
    "ChurnSchedule",
    "MaintenanceConfig",
    "DirectoryMaintainer",
    "ChurnService",
    "ChurnStats",
]
