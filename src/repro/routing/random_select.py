"""Random peer selection — the sanity-check floor for every experiment."""

from __future__ import annotations

import random

from .base import PeerSelector, RoutingContext

__all__ = ["RandomSelector"]


class RandomSelector(PeerSelector):
    """Select a uniformly random subset of the candidates.

    Seeded so experiment runs are reproducible; reseeding per query is
    the caller's choice (pass a fresh selector or the same one for a
    stream of queries).
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def rank(self, context: RoutingContext, max_peers: int) -> list[str]:
        self._check_max_peers(max_peers)
        peer_ids = [candidate.peer_id for candidate in context.candidates()]
        self._rng.shuffle(peer_ids)
        return peer_ids[:max_peers]

    @property
    def name(self) -> str:
        return "Random"
