"""Query-routing interfaces shared by all selection methods.

A *peer selector* ranks candidate peers for a query given only what the
directory knows — the PeerLists with their statistics and synopses — plus
the initiator's local knowledge.  Selectors never touch remote peers'
collections; that is the whole point of directory-based routing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..datasets.queries import Query
from ..synopses.factory import SynopsisSpec

if TYPE_CHECKING:  # imported for annotations only — avoids a package cycle
    from ..minerva.posts import PeerList, Post

__all__ = ["LocalView", "CandidatePeer", "RoutingContext", "PeerSelector"]


@dataclass(frozen=True)
class LocalView:
    """What the query initiator knows locally (exactly, not via synopses).

    ``result_doc_ids`` is the initiator's own local query result — the
    seed of IQN's reference synopsis ("the query initiator can compute by
    executing the query against its own local collection", Section 5.1).
    ``doc_ids_by_term`` are the initiator's local index lists for the
    query terms, used by the per-term aggregation strategy.
    """

    peer_id: str
    result_doc_ids: frozenset[int] = frozenset()
    doc_ids_by_term: dict[str, frozenset[int]] = field(default_factory=dict)


@dataclass(frozen=True)
class CandidatePeer:
    """A remote peer as seen through the fetched PeerLists."""

    peer_id: str
    posts: dict[str, Post]

    def post(self, term: str) -> Post | None:
        return self.posts.get(term)

    def cdf(self, term: str) -> int:
        post = self.posts.get(term)
        return post.cdf if post else 0

    @property
    def covered_terms(self) -> frozenset[str]:
        return frozenset(self.posts)


@dataclass
class RoutingContext:
    """Everything a selector may use to rank peers for one query.

    A context is a per-query snapshot: the PeerLists it references are
    treated as frozen for the context's lifetime, which lets the derived
    views (:meth:`candidates`, :attr:`average_term_space_size`) be
    computed once and cached.  Selectors call both repeatedly — the IQN
    hot path asks for the candidate list and the CORI quality scores on
    every query — so the caches turn two full PeerList sweeps per call
    into dictionary-free lookups.
    """

    query: Query
    peer_lists: dict[str, PeerList]
    num_peers: int
    spec: SynopsisSpec
    initiator: LocalView | None = None
    conjunctive: bool = False

    def __post_init__(self) -> None:
        if self.num_peers <= 0:
            raise ValueError(f"num_peers must be positive, got {self.num_peers}")
        missing = set(self.query.terms) - set(self.peer_lists)
        if missing:
            raise ValueError(f"peer_lists missing query terms: {sorted(missing)}")
        self._candidates_cache: list[CandidatePeer] | None = None
        self._avg_term_space_cache: float | None = None

    def candidates(self) -> list[CandidatePeer]:
        """All peers appearing in any query term's PeerList, minus the
        initiator (a peer never forwards a query to itself).  Cached;
        callers must not mutate the returned list."""
        if self._candidates_cache is not None:
            return self._candidates_cache
        posts_by_peer: dict[str, dict[str, Post]] = {}
        for term in self.query.terms:
            for post in self.peer_lists[term]:
                posts_by_peer.setdefault(post.peer_id, {})[term] = post
        if self.initiator is not None:
            posts_by_peer.pop(self.initiator.peer_id, None)
        self._candidates_cache = [
            CandidatePeer(peer_id=peer_id, posts=posts)
            for peer_id, posts in sorted(posts_by_peer.items())
        ]
        return self._candidates_cache

    def collection_frequency(self, term: str) -> int:
        """CORI's ``cf_t``: number of peers that posted the term."""
        return self.peer_lists[term].collection_frequency

    @property
    def average_term_space_size(self) -> float:
        """CORI's ``|V_avg|`` approximated over the fetched PeerLists.

        Section 5.1: "We approximate this value by the average over all
        collections found in the PeerLists."  Cached per context.
        """
        if self._avg_term_space_cache is not None:
            return self._avg_term_space_cache
        from .columns import columnar_term_space_average

        average = columnar_term_space_average(self.peer_lists)
        if average is None:
            sizes: dict[str, int] = {}
            for peer_list in self.peer_lists.values():
                for post in peer_list:
                    sizes[post.peer_id] = post.term_space_size
            average = sum(sizes.values()) / len(sizes) if sizes else 1.0
        self._avg_term_space_cache = average
        return average


class PeerSelector(abc.ABC):
    """Ranks candidate peers; the first ``max_peers`` get the query."""

    @abc.abstractmethod
    def rank(self, context: RoutingContext, max_peers: int) -> list[str]:
        """Return up to ``max_peers`` peer ids, best first."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def cache_signature(self) -> str:
        """A stable identity for routing-plan caching.

        Two selector instances whose rankings can ever differ must
        never share a signature — the serving layer's plan cache keys
        on it.  The base implementation names the class; selectors
        with ranking-relevant configuration (CORI's alpha, IQN's
        aggregation mode) must extend it with those knobs.
        """
        return type(self).__name__

    def _check_max_peers(self, max_peers: int) -> None:
        if max_peers <= 0:
            raise ValueError(f"max_peers must be positive, got {max_peers}")
