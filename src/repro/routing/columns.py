"""Zero-copy columnar candidate view over column-backed PeerLists.

The object routing path assembles one :class:`CandidatePeer` per peer
per query — a Python dict walk that dominates query time past ~10^3
peers.  When every PeerList in the query is backed by a
:class:`~repro.synopses.columnstore.TermColumns` sharing one interned
peer-id table (the invariant :class:`~repro.minerva.directory.Directory`
maintains), candidate assembly reduces to array ops: a sorted-unique
union of interned ids, one inverse-permutation gather per term, and
vectorized CORI scoring — no per-peer Python loop.

Everything here reproduces the object path bit-for-bit: gathers follow
the same dict-iteration order, CORI runs the same float operations in
the same association, and candidate order equals ``sorted(peer_ids)``
because numpy ``<U`` comparison is Python code-point order.

:class:`ColumnViewUnavailable` signals contexts the columnar path cannot
serve (hand-built lists on foreign tables, foreign synopsis objects);
callers fall back to the object tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..synopses.columnstore import PeerIdTable, TermColumns
from .cori import CORI_ALPHA

if TYPE_CHECKING:
    from .base import RoutingContext

__all__ = [
    "ColumnViewUnavailable",
    "TermGather",
    "ColumnContextView",
    "cori_score_array",
    "columnar_term_space_average",
]


class ColumnViewUnavailable(Exception):
    """The routing context cannot be served from packed columns."""


@dataclass(frozen=True)
class TermGather:
    """One query term's columns gathered into candidate order."""

    term: str
    columns: TermColumns
    #: Candidate position -> stored row in ``columns`` (-1 = no post).
    rows: np.ndarray
    has_post: np.ndarray
    has_synopsis: np.ndarray
    cdf: np.ndarray
    term_space: np.ndarray


def _shared_table(per_term: list[TermColumns]) -> PeerIdTable | None:
    """The single peer-id table behind all non-empty term columns.

    Empty columns are table-agnostic (nothing to gather), so a fresh
    empty PeerList from a directory miss never blocks the view.  Returns
    ``None`` when every column is empty.
    """
    table: PeerIdTable | None = None
    for columns in per_term:
        if len(columns) == 0:
            continue
        if table is None:
            table = columns.table
        elif columns.table is not table:
            raise ColumnViewUnavailable(
                "peer lists span different peer-id tables"
            )
    return table


class ColumnContextView:
    """Candidate assembly for one query, entirely on packed arrays."""

    __slots__ = ("context", "table", "candidate_ids", "peer_names", "gathers")

    def __init__(
        self,
        context: "RoutingContext",
        table: PeerIdTable,
        candidate_ids: np.ndarray,
        peer_names: list[str],
        gathers: list[TermGather],
    ) -> None:
        self.context = context
        self.table = table
        self.candidate_ids = candidate_ids
        self.peer_names = peer_names
        self.gathers = gathers

    @property
    def count(self) -> int:
        return len(self.peer_names)

    @classmethod
    def build(cls, context: "RoutingContext") -> "ColumnContextView":
        per_term: list[TermColumns] = []
        for term in context.query.terms:
            peer_list = context.peer_lists[term]
            columns = getattr(peer_list, "columns", None)
            if not isinstance(columns, TermColumns):
                raise ColumnViewUnavailable("peer list is not column-backed")
            if not columns.is_pure:
                raise ColumnViewUnavailable(
                    "peer list holds foreign synopsis objects"
                )
            per_term.append(columns)
        table = _shared_table(per_term)
        if table is None:
            # Every list is empty: no candidates regardless of table.
            table = per_term[0].table
            candidate_ids = np.zeros(0, dtype=np.int64)
        else:
            candidate_ids = np.unique(
                np.concatenate(
                    [tc.interned_ids() for tc in per_term if len(tc)]
                )
            )
            if context.initiator is not None:
                initiator_id = table.lookup(context.initiator.peer_id)
                if initiator_id is not None:
                    candidate_ids = candidate_ids[candidate_ids != initiator_id]
            if len(candidate_ids):
                names = table.names_array()[candidate_ids]
                candidate_ids = candidate_ids[np.argsort(names)]
        peer_names = (
            table.names_array()[candidate_ids].tolist()
            if len(candidate_ids)
            else []
        )
        count = len(peer_names)
        gathers: list[TermGather] = []
        for term, columns in zip(context.query.terms, per_term):
            if len(columns) == 0:
                rows = np.full(count, -1, dtype=np.int64)
                absent = np.zeros(count, dtype=bool)
                zeros = np.zeros(count, dtype=np.int64)
                gathers.append(
                    TermGather(term, columns, rows, absent, absent, zeros, zeros)
                )
                continue
            rows = columns.peer_rows(candidate_ids)
            has_post = rows >= 0
            safe = np.where(has_post, rows, 0)
            cdf = np.where(has_post, columns.cdf_values()[safe], 0)
            term_space = np.where(
                has_post, columns.term_space_values()[safe], 0
            )
            has_synopsis = has_post & columns.synopsis_flags()[safe]
            gathers.append(
                TermGather(
                    term, columns, rows, has_post, has_synopsis, cdf, term_space
                )
            )
        return cls(context, table, candidate_ids, peer_names, gathers)


def cori_score_array(
    view: ColumnContextView, *, alpha: float = CORI_ALPHA
) -> np.ndarray:
    """CORI scores for every candidate, vectorized over the gathers.

    Floating-point operations run in the same order and association as
    :func:`repro.routing.cori.cori_score`, so scores are bit-identical
    to the scalar path.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    context = view.context
    np_peers = context.num_peers
    v_avg = context.average_term_space_size or 1.0
    total = np.zeros(view.count, dtype=np.float64)
    for gather in view.gathers:
        cdf = gather.cdf.astype(np.float64)
        sizes = gather.term_space.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_component = cdf / ((cdf + 50.0) + (150.0 * sizes) / v_avg)
        cf = max(1, context.collection_frequency(gather.term))
        i_component = math.log((np_peers + 0.5) / cf) / math.log(np_peers + 1.0)
        contribution = np.where(
            gather.cdf > 0,
            alpha + (1.0 - alpha) * t_component * i_component,
            alpha,
        )
        total = total + contribution
    return total / float(len(context.query.terms))


def columnar_term_space_average(
    peer_lists: Mapping[str, object],
) -> float | None:
    """``average_term_space_size`` from packed columns, or ``None``.

    Mirrors the scalar path exactly: last-write-wins per peer across the
    peer lists in dict order, integer sum, then one float division.
    Returns ``None`` when any list is not column-backed or the lists
    span different peer-id tables — the caller falls back to the scalar
    dict loop.
    """
    per_term: list[TermColumns] = []
    for peer_list in peer_lists.values():
        columns = getattr(peer_list, "columns", None)
        if not isinstance(columns, TermColumns):
            return None
        per_term.append(columns)
    try:
        table = _shared_table(per_term)
    except ColumnViewUnavailable:
        return None
    if table is None:
        return 1.0
    values = np.zeros(len(table), dtype=np.int64)
    seen = np.zeros(len(table), dtype=bool)
    for columns in per_term:
        if len(columns) == 0:
            continue
        interned = columns.interned_ids()
        values[interned] = columns.term_space_values()
        seen[interned] = True
    count = int(np.count_nonzero(seen))
    if count == 0:
        return 1.0
    return int(values[seen].sum()) / count
