"""Query-routing methods: interfaces and the paper's baselines."""

from .base import CandidatePeer, LocalView, PeerSelector, RoutingContext
from .cori import CORI_ALPHA, CoriSelector, cori_score, cori_scores
from .random_select import RandomSelector
from .sigir05 import OneShotOverlapSelector

__all__ = [
    "PeerSelector",
    "RoutingContext",
    "CandidatePeer",
    "LocalView",
    "CoriSelector",
    "cori_score",
    "cori_scores",
    "CORI_ALPHA",
    "RandomSelector",
    "OneShotOverlapSelector",
]
