"""The paper's prior overlap-aware method (Bender et al., SIGIR 2005).

Reference [5] — "Improving collection selection with overlap awareness in
p2p search engines" — is the second baseline of Section 8.  Per the
paper's own characterization it "used only Bloom filters and a fairly
simple algorithm for aggregating synopses and making the actual routing
decisions": overlap is estimated *once per candidate against the query
initiator's local collection*, without IQN's iterative reference-synopsis
aggregation.  Consequently two selected peers that duplicate *each other*
(but not the initiator) are both ranked highly — the failure mode IQN
fixes.

The implementation is synopsis-agnostic (any :class:`SetSynopsis` works)
so experiments can isolate "one-shot vs iterative" from "Bloom vs MIPs";
configured with Bloom posts it reproduces the historical method exactly.
"""

from __future__ import annotations

from ..core.novelty import estimate_novelty
from ..synopses.base import SetSynopsis
from .base import CandidatePeer, PeerSelector, RoutingContext
from .cori import CORI_ALPHA, cori_scores

__all__ = ["OneShotOverlapSelector"]


class OneShotOverlapSelector(PeerSelector):
    """Quality * one-shot novelty-vs-initiator ranking (the [5] baseline)."""

    def __init__(self, *, alpha: float = CORI_ALPHA):
        self.alpha = alpha

    def rank(self, context: RoutingContext, max_peers: int) -> list[str]:
        self._check_max_peers(max_peers)
        qualities = cori_scores(context, alpha=self.alpha)
        reference = self._initiator_reference(context)
        reference_cardinality = (
            float(len(context.initiator.result_doc_ids))
            if context.initiator is not None
            else 0.0
        )
        scored: list[tuple[float, float, str]] = []
        for candidate in context.candidates():
            novelty = self._one_shot_novelty(
                context, candidate, reference, reference_cardinality
            )
            quality = qualities[candidate.peer_id]
            scored.append((quality * novelty, quality, candidate.peer_id))
        scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
        return [peer_id for _, _, peer_id in scored[:max_peers]]

    def cache_signature(self) -> str:
        return f"{type(self).__name__}(alpha={self.alpha!r})"

    @staticmethod
    def _initiator_reference(context: RoutingContext) -> SetSynopsis:
        seed: frozenset[int] = frozenset()
        if context.initiator is not None:
            seed = context.initiator.result_doc_ids
        return context.spec.build(seed)

    @staticmethod
    def _one_shot_novelty(
        context: RoutingContext,
        candidate: CandidatePeer,
        reference: SetSynopsis,
        reference_cardinality: float,
    ) -> float:
        """Summed per-term novelty against the initiator only.

        The simple decision model of [5]: no cross-candidate aggregation,
        term contributions added up.
        """
        total = 0.0
        for term in context.query.terms:
            post = candidate.post(term)
            if post is None or post.synopsis is None or post.cdf == 0:
                continue
            total += estimate_novelty(
                post.synopsis,
                reference,
                candidate_cardinality=float(post.cdf),
                reference_cardinality=reference_cardinality,
            )
        return total

    @property
    def name(self) -> str:
        return "SIGIR05-OneShot"
