"""CORI collection selection (Callan et al., SIGIR 1995) — Section 5.1.

CORI is the quality-only baseline the paper compares against ("among the
very best database selection methods for distributed IR") *and* the
quality component inside IQN's quality*novelty product.  The collection
score of peer ``i`` for query ``Q = {t1 .. tn}`` is::

    s_i   = sum_t s_{i,t} / |Q|
    s_i,t = alpha + (1 - alpha) * T_{i,t} * I_{i,t}

    T_i,t = cdf_{i,t} / (cdf_{i,t} + 50 + 150 * |V_i| / |V_avg|)
    I_t   = log((np + 0.5) / cf_t) / log(np + 1)

with ``alpha = 0.4``, ``np`` the number of peers, ``cdf`` the peer's
document frequency for the term, ``cf_t`` the number of peers holding the
term, ``|V_i|`` the peer's term-space size, and ``|V_avg|`` approximated
over the peers found in the PeerLists.
"""

from __future__ import annotations

import math

from .base import CandidatePeer, PeerSelector, RoutingContext

__all__ = ["CORI_ALPHA", "cori_score", "cori_scores", "CoriSelector"]

#: The alpha parameter, "chosen as alpha = 0.4 [13]".
CORI_ALPHA = 0.4


def cori_score(
    candidate: CandidatePeer,
    context: RoutingContext,
    *,
    alpha: float = CORI_ALPHA,
) -> float:
    """CORI collection score of one candidate for the context's query."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    np_peers = context.num_peers
    v_avg = context.average_term_space_size or 1.0
    total = 0.0
    for term in context.query.terms:
        post = candidate.post(term)
        if post is None or post.cdf == 0:
            # A peer without the term contributes only the default belief.
            total += alpha
            continue
        t_component = post.cdf / (
            post.cdf + 50.0 + 150.0 * post.term_space_size / v_avg
        )
        cf = max(1, context.collection_frequency(term))
        i_component = math.log((np_peers + 0.5) / cf) / math.log(np_peers + 1.0)
        total += alpha + (1.0 - alpha) * t_component * i_component
    return total / len(context.query.terms)


def cori_scores(
    context: RoutingContext, *, alpha: float = CORI_ALPHA
) -> dict[str, float]:
    """CORI scores for every candidate in the context."""
    return {
        candidate.peer_id: cori_score(candidate, context, alpha=alpha)
        for candidate in context.candidates()
    }


class CoriSelector(PeerSelector):
    """Pure quality-driven routing: rank peers by CORI score.

    This is the baseline of Figure 3 — it ignores overlap entirely, so it
    happily selects several peers that all hold the same popular
    documents.
    """

    def __init__(self, alpha: float = CORI_ALPHA):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha

    def rank(self, context: RoutingContext, max_peers: int) -> list[str]:
        self._check_max_peers(max_peers)
        scores = cori_scores(context, alpha=self.alpha)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [peer_id for peer_id, _ in ranked[:max_peers]]

    def cache_signature(self) -> str:
        return f"{type(self).__name__}(alpha={self.alpha!r})"

    @property
    def name(self) -> str:
        return "CORI"
