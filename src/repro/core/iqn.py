"""The IQN (Integrated Quality Novelty) routing method — Section 5.

IQN builds the query execution plan iteratively:

1. **Select-Best-Peer**: among the candidates from the fetched PeerLists,
   pick the peer maximizing ``quality * novelty``, where quality is the
   CORI collection score (Section 5.1) and novelty is estimated from
   synopses against the *reference synopsis* of the result space covered
   so far (Section 5.2).
2. **Aggregate-Synopses**: union the chosen peer's synopsis into the
   reference synopsis, so the next iteration discounts everything that
   peer is expected to contribute (Section 5.3).

The reference synopsis is seeded from the query initiator's local result,
and the loop runs until the stopping criterion fires (Section 5.1's
"maximum peers" by default).  Crucially, no remote peer is contacted
during this decision process — only directory state is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.base import PeerSelector, RoutingContext
from ..routing.cori import CORI_ALPHA, cori_scores
from .aggregation import AggregationStrategy, PerPeerAggregation
from .fastpath import (
    FastPathUnsupported,
    RoutingStats,
    column_rank_detailed,
    fast_rank_detailed,
)
from .stopping import MaxPeers, StoppingCriterion

__all__ = ["IQNSelection", "IQNRouter"]


@dataclass(frozen=True)
class IQNSelection:
    """One Select-Best-Peer decision, kept for diagnostics/experiments."""

    peer_id: str
    quality: float
    novelty: float

    @property
    def score(self) -> float:
        return self.quality * self.novelty


class IQNRouter(PeerSelector):
    """Quality*novelty routing with iterative synopsis aggregation.

    Parameters
    ----------
    aggregation:
        Multi-keyword strategy (Section 6); defaults to per-peer
        aggregation with the paper's crude conjunctive fallback enabled.
    stopping:
        Extra stopping criterion (Section 5.1); ``max_peers`` passed to
        :meth:`rank` always applies on top of it.
    quality_weighted:
        With ``False`` the router ranks by novelty alone — handy for
        ablations isolating the novelty signal (Section 5.2's "For
        simplicity, best refers to highest novelty here").
    alpha:
        CORI's default-belief parameter for the quality component.
    fast_path:
        Use the vectorized + lazy-greedy Select-Best-Peer implementation
        (:mod:`repro.core.fastpath`) when the configuration supports it,
        falling back to the naive loop otherwise.  Plans are bit-identical
        either way; disable only to benchmark or debug against the naive
        reference implementation.

    After every :meth:`rank_detailed` call, :attr:`last_stats` holds a
    :class:`~repro.core.fastpath.RoutingStats` describing the work done
    (evaluation counts, rounds, which path ran).  It is diagnostic state
    belonging to the most recent call on this router instance.
    """

    def __init__(
        self,
        aggregation: AggregationStrategy | None = None,
        *,
        stopping: StoppingCriterion | None = None,
        quality_weighted: bool = True,
        alpha: float = CORI_ALPHA,
        fast_path: bool = True,
    ) -> None:
        self.aggregation = aggregation or PerPeerAggregation()
        self.stopping = stopping
        self.quality_weighted = quality_weighted
        self.alpha = alpha
        self.fast_path = fast_path
        self.last_stats: RoutingStats | None = None

    def rank(self, context: RoutingContext, max_peers: int) -> list[str]:
        return [
            selection.peer_id for selection in self.rank_detailed(context, max_peers)
        ]

    def cache_signature(self) -> str:
        """Every knob that can change the ranked plan (``fast_path`` is
        excluded: both tiers are bit-identical by construction)."""
        stopping = "" if self.stopping is None else self.stopping.cache_signature()
        return (
            f"{type(self).__name__}"
            f"({self.aggregation.cache_signature()},"
            f" stopping={stopping},"
            f" quality={self.quality_weighted},"
            f" alpha={self.alpha!r})"
        )

    def rank_detailed(
        self, context: RoutingContext, max_peers: int
    ) -> list[IQNSelection]:
        """Run the full IQN loop, returning per-iteration diagnostics."""
        self._check_max_peers(max_peers)
        stopping = self.stopping or MaxPeers(max_peers)

        if self.fast_path:
            # Fastest tier: attach directly to the directory's packed
            # columns — no per-peer objects on the hot path at all.
            try:
                plan_rows, stats = column_rank_detailed(
                    context,
                    self.aggregation,
                    stopping,
                    max_peers,
                    alpha=self.alpha,
                    quality_weighted=self.quality_weighted,
                )
            except FastPathUnsupported:
                pass  # not column-backed, or a config the kernels can't run
            else:
                self.last_stats = stats
                return [
                    IQNSelection(peer_id=peer_id, quality=quality, novelty=novelty)
                    for peer_id, quality, novelty in plan_rows
                ]

        candidates = {c.peer_id: c for c in context.candidates()}
        if not candidates:
            self.last_stats = RoutingStats(mode="empty", candidates=0)
            return []
        qualities = (
            cori_scores(context, alpha=self.alpha)
            if self.quality_weighted
            else {peer_id: 1.0 for peer_id in candidates}
        )

        if self.fast_path:
            try:
                plan_rows, stats = fast_rank_detailed(
                    context, self.aggregation, qualities, stopping, max_peers
                )
            except FastPathUnsupported:
                pass  # configurations the kernels can't represent exactly
            else:
                self.last_stats = stats
                return [
                    IQNSelection(peer_id=peer_id, quality=quality, novelty=novelty)
                    for peer_id, quality, novelty in plan_rows
                ]

        stats = RoutingStats(mode="naive", candidates=len(candidates))
        state = self.aggregation.start(context)

        plan: list[IQNSelection] = []
        while candidates and len(plan) < max_peers:
            stats.rounds += 1
            stats.novelty_evaluations += len(candidates)
            stats.naive_evaluations += len(candidates)
            # Select-Best-Peer: maximize quality * novelty; break ties by
            # quality, then peer id, for deterministic plans.
            best_id = None
            best_key: tuple[float, float, str] | None = None
            best_novelty = 0.0
            for peer_id, candidate in candidates.items():
                novelty = self.aggregation.novelty(state, candidate)
                quality = qualities[peer_id]
                key = (quality * novelty, quality, peer_id)
                if best_key is None or key > best_key:
                    best_key = key
                    best_id = peer_id
                    best_novelty = novelty
            assert best_id is not None
            chosen = candidates.pop(best_id)
            plan.append(
                IQNSelection(
                    peer_id=best_id,
                    quality=qualities[best_id],
                    novelty=best_novelty,
                )
            )
            # Aggregate-Synopses: fold the chosen peer into the reference.
            self.aggregation.absorb(state, chosen)
            if stopping.should_stop(
                selected_count=len(plan),
                estimated_coverage=self.aggregation.estimated_coverage(state),
                last_novelty=best_novelty,
            ):
                break
        self.last_stats = stats
        return plan

    @property
    def name(self) -> str:
        suffix = "" if self.quality_weighted else "-novelty-only"
        return f"IQN({self.aggregation.name}){suffix}"
