"""Correlation-aware per-term aggregation — the paper's future work #2.

Section 9 names "incorporating statistics about correlations between
different index lists on the same peer ... into the synopses management"
as future work, and Section 6.3 already anticipates it: "We believe that
this aggregation technique can be further extended, e.g., for exploiting
term correlation measures."

The per-term strategy's weakness is double counting: a document matching
*both* query terms contributes to both term-wise novelties, so peers
with strongly correlated index lists look more novel than they are.  The
fix needs no extra posted state — the correlation between two of a
peer's index lists is estimable from the per-term synopses *already in
its Posts*: ``R(L_t1, L_t2)`` via the standard resemblance estimator.

From the pairwise resemblances we estimate the peer's distinct matching
documents ``D ≈ |∪_t L_t|`` by truncated inclusion–exclusion (pairwise
terms only, clamped to the feasible range), and scale the summed
term-wise novelty by ``D / Σ_t |L_t|`` — the fraction of the peer's
term-posting mass that is actually distinct.  Uncorrelated lists leave
the ranking untouched; fully duplicated lists halve it.
"""

from __future__ import annotations

from itertools import combinations

from ..routing.base import CandidatePeer
from ..synopses.base import IncompatibleSynopsesError
from ..synopses.measures import overlap_from_resemblance
from .aggregation import PerTermAggregation, PerTermState

__all__ = ["estimate_distinct_mass", "CorrelationAwarePerTerm"]


def estimate_distinct_mass(candidate: CandidatePeer, terms: tuple[str, ...]) -> float:
    """Estimate ``|∪_t L_t|`` for a peer from its per-term synopses.

    Pairwise (Bonferroni-truncated) inclusion–exclusion:
    ``Σ|L_t| - Σ_{i<j} |L_i ∩ L_j|``, clamped below by the largest single
    list (the union can never be smaller).  Terms without a post (or
    with empty lists) contribute nothing.
    """
    posts = [
        post
        for term in terms
        if (post := candidate.post(term)) is not None
        and post.synopsis is not None
        and post.cdf > 0
    ]
    if not posts:
        return 0.0
    total = float(sum(post.cdf for post in posts))
    if len(posts) == 1:
        return total
    pairwise_overlap = 0.0
    for a, b in combinations(posts, 2):
        if a.synopsis is None or b.synopsis is None:
            continue
        try:
            res = a.synopsis.estimate_resemblance(b.synopsis)
        except IncompatibleSynopsesError:
            continue
        pairwise_overlap += overlap_from_resemblance(
            res, float(a.cdf), float(b.cdf)
        )
    largest = float(max(post.cdf for post in posts))
    return min(total, max(largest, total - pairwise_overlap))


class CorrelationAwarePerTerm(PerTermAggregation):
    """Per-term aggregation with correlation-corrected novelty sums.

    Drop-in replacement for
    :class:`~repro.core.aggregation.PerTermAggregation`; only the
    Select-Best-Peer estimate changes (the Aggregate-Synopses update is
    still per term, which remains sound — reference synopses are exact
    union aggregations regardless of correlations).
    """

    def novelty(self, state: PerTermState, candidate: CandidatePeer) -> float:
        summed = super().novelty(state, candidate)
        if summed <= 0.0:
            return 0.0
        terms = state.context.query.terms
        total_mass = float(
            sum(
                post.cdf
                for term in terms
                if (post := candidate.post(term)) is not None
            )
        )
        if total_mass <= 0.0:
            return 0.0
        distinct = estimate_distinct_mass(candidate, terms)
        return summed * (distinct / total_mass)
