"""Stopping criteria for the IQN iteration (Section 5.1).

"The two steps, Select-Best-Peer and Aggregate-Synopses, are iterated
until some specified stopping criterion is satisfied.  Good criteria
would be reaching a certain number of maximum peers that should be
involved in the query, or estimating that the combined query result has
at least a certain number of (good) documents.  The latter can be
inferred from the updated reference synopsis."
"""

from __future__ import annotations

import abc

__all__ = [
    "StoppingCriterion",
    "MaxPeers",
    "CoverageTarget",
    "MinimumNoveltyGain",
    "AnyOf",
]


class StoppingCriterion(abc.ABC):
    """Decides after each IQN iteration whether to stop selecting peers."""

    @abc.abstractmethod
    def should_stop(
        self,
        *,
        selected_count: int,
        estimated_coverage: float,
        last_novelty: float,
    ) -> bool:
        """True when the routing loop should end.

        Called *after* a peer has been selected and absorbed, with the
        number of peers chosen so far, the reference state's coverage
        estimate, and the novelty the last peer contributed.
        """

    def cache_signature(self) -> str:
        """A stable identity for routing-plan caching: criteria whose
        decisions can differ must never share a signature.  Subclasses
        with parameters must include them."""
        return type(self).__name__


class MaxPeers(StoppingCriterion):
    """Stop after a fixed number of peers — the paper's primary budget."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit

    def should_stop(
        self, *, selected_count: int, estimated_coverage: float, last_novelty: float
    ) -> bool:
        return selected_count >= self.limit

    def cache_signature(self) -> str:
        return f"{type(self).__name__}({self.limit})"


class CoverageTarget(StoppingCriterion):
    """Stop once the estimated combined result reaches ``target`` documents."""

    def __init__(self, target: float) -> None:
        if target <= 0:
            raise ValueError(f"target must be positive, got {target}")
        self.target = target

    def should_stop(
        self, *, selected_count: int, estimated_coverage: float, last_novelty: float
    ) -> bool:
        return estimated_coverage >= self.target

    def cache_signature(self) -> str:
        return f"{type(self).__name__}({self.target!r})"


class MinimumNoveltyGain(StoppingCriterion):
    """Stop when the marginal peer stops adding enough new documents.

    Not spelled out in the paper but the natural diminishing-returns
    criterion its framework supports: once the best remaining peer's
    novelty falls below ``threshold``, further peers mostly duplicate.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def should_stop(
        self, *, selected_count: int, estimated_coverage: float, last_novelty: float
    ) -> bool:
        return last_novelty < self.threshold

    def cache_signature(self) -> str:
        return f"{type(self).__name__}({self.threshold!r})"


class AnyOf(StoppingCriterion):
    """Stop as soon as any member criterion fires."""

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("AnyOf needs at least one criterion")
        self.criteria = criteria

    def should_stop(
        self, *, selected_count: int, estimated_coverage: float, last_novelty: float
    ) -> bool:
        return any(
            criterion.should_stop(
                selected_count=selected_count,
                estimated_coverage=estimated_coverage,
                last_novelty=last_novelty,
            )
            for criterion in self.criteria
        )

    def cache_signature(self) -> str:
        inner = ", ".join(c.cache_signature() for c in self.criteria)
        return f"{type(self).__name__}({inner})"
