"""Multi-dimensional synopsis aggregation strategies (Section 6).

Synopses are posted *per term*; a multi-keyword query therefore needs a
policy for combining them.  The paper develops two:

- **Per-peer aggregation** (Section 6.2): first combine each candidate
  peer's term synopses into one query-specific synopsis (union for
  disjunctive queries, intersection for conjunctive ones), then measure
  novelty against a single reference synopsis.
- **Per-term aggregation** (Section 6.3): keep one reference synopsis per
  query term, estimate term-wise novelties, and *sum* them.  Cruder as an
  absolute estimate but preserves the relative ranking — and it never
  needs a synopsis intersection, which makes it the only exact option for
  conjunctive queries over hash sketches.

Strategies are stateless policy objects; all mutable per-query state
lives in the state objects they create, so one strategy instance can
serve many concurrent queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from ..synopses.base import SetSynopsis, UnsupportedOperationError
from ..routing.base import CandidatePeer, RoutingContext
from .novelty import estimate_novelty

__all__ = [
    "AggregationStrategy",
    "PerPeerAggregation",
    "PerPeerState",
    "PerTermAggregation",
    "PerTermState",
]


class AggregationStrategy(abc.ABC):
    """Policy for reference-synopsis bookkeeping across IQN iterations."""

    @abc.abstractmethod
    def start(self, context: RoutingContext) -> Any:
        """Create the per-query state, seeded from the initiator's local
        knowledge (Select-Best-Peer's reference baseline)."""

    @abc.abstractmethod
    def novelty(self, state: Any, candidate: CandidatePeer) -> float:
        """Estimated novelty of ``candidate`` against the current state."""

    def cache_signature(self) -> str:
        """A stable identity for routing-plan caching: strategies whose
        novelty estimates can differ must never share a signature."""
        return type(self).__name__

    @abc.abstractmethod
    def absorb(self, state: Any, candidate: CandidatePeer) -> None:
        """Aggregate-Synopses step: fold the chosen peer into the state."""

    @abc.abstractmethod
    def estimated_coverage(self, state: Any) -> float:
        """Current estimate of covered result cardinality (for stopping)."""

    @property
    def name(self) -> str:
        return type(self).__name__


# -- per-peer aggregation (Section 6.2) --------------------------------------


@dataclass
class PerPeerState:
    """Reference synopsis + tracked cardinality for per-peer aggregation."""

    context: RoutingContext
    reference: SetSynopsis
    reference_cardinality: float
    combined_cache: dict[str, tuple[SetSynopsis | None, float]]


class PerPeerAggregation(AggregationStrategy):
    """Combine each peer's term synopses first, then compare (Section 6.2).

    ``crude_conjunctive_fallback`` enables the paper's noted workaround
    for synopsis families without intersection (hash sketches): use the
    union as a superset approximation, "of course, the accuracy of the
    synopses would drastically degrade".
    """

    def __init__(self, *, crude_conjunctive_fallback: bool = True) -> None:
        self.crude_conjunctive_fallback = crude_conjunctive_fallback

    def cache_signature(self) -> str:
        return f"{type(self).__name__}(crude={self.crude_conjunctive_fallback})"

    def start(self, context: RoutingContext) -> PerPeerState:
        seed_ids: frozenset[int] = frozenset()
        if context.initiator is not None:
            seed_ids = context.initiator.result_doc_ids
        return PerPeerState(
            context=context,
            reference=context.spec.build(seed_ids),
            reference_cardinality=float(len(seed_ids)),
            combined_cache={},
        )

    # -- candidate-side combination -----------------------------------------

    def combine(
        self, state: PerPeerState, candidate: CandidatePeer
    ) -> tuple[SetSynopsis | None, float]:
        """Combined query synopsis and cardinality estimate for a peer.

        Returns ``(None, 0.0)`` when the peer cannot contribute (e.g. a
        conjunctive query with a term the peer lacks).  Cached per peer —
        the combination never changes across IQN iterations.  Public
        because the routing fast path (:mod:`repro.core.fastpath`) packs
        these combined synopses into its batched kernels.
        """
        cached = state.combined_cache.get(candidate.peer_id)
        if cached is not None:
            return cached
        context = state.context
        terms = context.query.terms
        posts = [candidate.post(term) for term in terms]
        if context.conjunctive and any(
            post is None or post.synopsis is None for post in posts
        ):
            result: tuple[SetSynopsis | None, float] = (None, 0.0)
            state.combined_cache[candidate.peer_id] = result
            return result
        synopses = [post.synopsis for post in posts if post and post.synopsis]
        if not synopses:
            result = (None, 0.0)
            state.combined_cache[candidate.peer_id] = result
            return result
        combined = synopses[0]
        for synopsis in synopses[1:]:
            if context.conjunctive:
                try:
                    combined = combined.intersect(synopsis)
                except UnsupportedOperationError:
                    if not self.crude_conjunctive_fallback:
                        raise
                    combined = combined.union(synopsis)
            else:
                combined = combined.union(synopsis)
        cardinality = self._candidate_cardinality(candidate, combined, context)
        result = (combined, cardinality)
        state.combined_cache[candidate.peer_id] = result
        return result

    @staticmethod
    def _candidate_cardinality(
        candidate: CandidatePeer,
        combined: SetSynopsis,
        context: RoutingContext,
    ) -> float:
        """Estimate the combined collection's size, clamped by exact cdfs.

        The per-term list lengths are exact (they travel in the Posts);
        they bound the union from below by the largest list and from
        above by the sum, and the intersection by the smallest list.
        """
        cdfs = [candidate.cdf(term) for term in context.query.terms]
        present = [c for c in cdfs if c > 0]
        if not present:
            return 0.0
        if len(present) == 1:
            return float(present[0])
        estimate = combined.estimate_cardinality()
        if context.conjunctive:
            return min(max(0.0, estimate), float(min(present)))
        return min(max(estimate, float(max(present))), float(sum(present)))

    # -- strategy interface ----------------------------------------------------

    # Backwards-compatible alias for the pre-fast-path private name.
    _combine = combine

    def novelty(self, state: PerPeerState, candidate: CandidatePeer) -> float:
        combined, cardinality = self.combine(state, candidate)
        if combined is None or cardinality <= 0.0:
            return 0.0
        return estimate_novelty(
            combined,
            state.reference,
            candidate_cardinality=cardinality,
            reference_cardinality=state.reference_cardinality,
        )

    def absorb(self, state: PerPeerState, candidate: CandidatePeer) -> None:
        combined, _ = self.combine(state, candidate)
        if combined is None:
            return
        gained = self.novelty(state, candidate)
        state.reference = state.reference.union(combined)
        state.reference_cardinality += gained

    def estimated_coverage(self, state: PerPeerState) -> float:
        return state.reference_cardinality


# -- per-term aggregation (Section 6.3) --------------------------------------


@dataclass
class PerTermState:
    """One reference synopsis (and cardinality) per query term."""

    context: RoutingContext
    references: dict[str, SetSynopsis]
    reference_cardinalities: dict[str, float]


class PerTermAggregation(AggregationStrategy):
    """Sum term-wise novelties over per-term references (Section 6.3).

    "The summation is, of course, a crude estimate of the novelty of the
    contribution ... for the entire query result.  But this technique
    preserves the relative ranking of peers" — and it sidesteps synopsis
    intersection entirely, even for conjunctive queries.
    """

    def start(self, context: RoutingContext) -> PerTermState:
        references: dict[str, SetSynopsis] = {}
        cardinalities: dict[str, float] = {}
        local_lists: dict[str, frozenset[int]] = {}
        if context.initiator is not None:
            local_lists = context.initiator.doc_ids_by_term
        for term in context.query.terms:
            seed = local_lists.get(term, frozenset())
            references[term] = context.spec.build(seed)
            cardinalities[term] = float(len(seed))
        return PerTermState(
            context=context,
            references=references,
            reference_cardinalities=cardinalities,
        )

    def _term_novelty(
        self, state: PerTermState, candidate: CandidatePeer, term: str
    ) -> float:
        post = candidate.post(term)
        if post is None or post.synopsis is None or post.cdf == 0:
            return 0.0
        return estimate_novelty(
            post.synopsis,
            state.references[term],
            candidate_cardinality=float(post.cdf),
            reference_cardinality=state.reference_cardinalities[term],
        )

    def novelty(self, state: PerTermState, candidate: CandidatePeer) -> float:
        return sum(
            self._term_novelty(state, candidate, term)
            for term in state.context.query.terms
        )

    def absorb(self, state: PerTermState, candidate: CandidatePeer) -> None:
        for term in state.context.query.terms:
            post = candidate.post(term)
            if post is None or post.synopsis is None:
                continue
            gained = self._term_novelty(state, candidate, term)
            state.references[term] = state.references[term].union(post.synopsis)
            state.reference_cardinalities[term] += gained

    def estimated_coverage(self, state: PerTermState) -> float:
        """Sum of per-term coverages — an upper-bound-flavored proxy.

        Documents matching several query terms are counted once per term,
        so this overestimates distinct coverage; it is only used for
        stopping decisions, mirroring the strategy's own crudeness.
        """
        return sum(state.reference_cardinalities.values())
