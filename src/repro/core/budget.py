"""Adaptive per-term synopsis lengths under a bit budget (Section 7.2).

"A peer with a total budget B has the freedom to choose a specific length
len_j for the synopsis of term j, such that sum(len_j) = B ...  A
heuristic approach that we have pursued is to choose len_j in proportion
to a notion of *benefit* for term j at the given peer."

The paper names three natural benefit notions, all implemented here:

- the length of the term's index list;
- the number of entries with a relevance score above a threshold;
- the number of entries whose accumulated score mass reaches the 90%
  quantile of the list's score distribution.

Only MIPs synopses can actually *use* heterogeneous lengths at
comparison time (Section 3.4), which is why the allocator works in
multiples of one MIPs position (32 bits) by default.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..ir.index import InvertedIndex
from ..minerva.peer import Peer
from ..minerva.posts import Post
from ..synopses.mips import BITS_PER_POSITION

__all__ = [
    "benefit_list_length",
    "benefit_score_threshold",
    "benefit_score_mass_quantile",
    "allocate_budget",
    "uniform_budget",
    "build_adaptive_posts",
]

BenefitFunction = Callable[[InvertedIndex, str], float]


def benefit_list_length(index: InvertedIndex, term: str) -> float:
    """Benefit = index list length ("higher weight to lists with more
    documents")."""
    return float(index.document_frequency(term))


def benefit_score_threshold(
    threshold: float,
) -> BenefitFunction:
    """Benefit = number of entries scoring above ``threshold`` (normalized).

    Scores are normalized per term (best entry = 1.0) before applying the
    threshold, so one threshold is meaningful across terms.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")

    def benefit(index: InvertedIndex, term: str) -> float:
        scored = index.scored_doc_ids(term, normalized=True)
        return float(sum(1 for _, score in scored if score >= threshold))

    return benefit


def benefit_score_mass_quantile(quantile: float = 0.9) -> BenefitFunction:
    """Benefit = entries needed to accumulate ``quantile`` of score mass.

    The paper's third suggestion: "the number of list entries whose
    accumulated score mass equals the 90% quantile of the score
    distribution."  Skewed lists (few dominant entries) get small
    benefits; flat lists need many entries and get larger ones.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")

    def benefit(index: InvertedIndex, term: str) -> float:
        postings = index.index_list(term)
        total = sum(p.score for p in postings)
        if total <= 0.0:
            return 0.0
        accumulated = 0.0
        for count, posting in enumerate(postings, start=1):
            accumulated += posting.score
            if accumulated >= quantile * total:
                return float(count)
        return float(len(postings))

    return benefit


def allocate_budget(
    index: InvertedIndex,
    terms: Sequence[str],
    total_bits: int,
    *,
    benefit: BenefitFunction = benefit_list_length,
    granularity: int = BITS_PER_POSITION,
    min_bits: int | None = None,
) -> dict[str, int]:
    """Split ``total_bits`` over ``terms`` proportionally to benefit.

    Every term receives at least ``min_bits`` (default: one granule), the
    remainder is distributed in ``granularity``-bit granules by largest
    remaining fractional share, so the result sums to ``total_bits``
    exactly (up to the final partial granule, which is never allocated).
    """
    if not terms:
        raise ValueError("cannot allocate a budget over zero terms")
    if len(set(terms)) != len(terms):
        raise ValueError("terms must be unique")
    if granularity <= 0:
        raise ValueError(f"granularity must be positive, got {granularity}")
    if min_bits is None:
        min_bits = granularity
    if min_bits % granularity != 0:
        raise ValueError(
            f"min_bits ({min_bits}) must be a multiple of granularity "
            f"({granularity})"
        )
    floor_total = min_bits * len(terms)
    if total_bits < floor_total:
        raise ValueError(
            f"budget {total_bits} cannot cover the {min_bits}-bit floor "
            f"for {len(terms)} terms ({floor_total} bits)"
        )
    benefits = {term: max(0.0, benefit(index, term)) for term in terms}
    spendable_granules = (total_bits - floor_total) // granularity
    total_benefit = sum(benefits.values())
    allocation = {term: min_bits for term in terms}
    if spendable_granules == 0 or total_benefit <= 0.0:
        return allocation
    # Proportional shares in granules, floor first, remainder by largest
    # fractional part (deterministic tie-break on term).
    shares = {
        term: spendable_granules * benefits[term] / total_benefit
        for term in terms
    }
    granted = {term: int(shares[term]) for term in terms}
    leftover = spendable_granules - sum(granted.values())
    by_fraction = sorted(
        terms, key=lambda term: (-(shares[term] - granted[term]), term)
    )
    for term in by_fraction[:leftover]:
        granted[term] += 1
    for term in terms:
        allocation[term] += granted[term] * granularity
    return allocation


def uniform_budget(
    terms: Sequence[str],
    total_bits: int,
    *,
    granularity: int = BITS_PER_POSITION,
) -> dict[str, int]:
    """The baseline allocation: equal lengths for every term."""
    if not terms:
        raise ValueError("cannot allocate a budget over zero terms")
    per_term = (total_bits // len(terms)) // granularity * granularity
    if per_term <= 0:
        raise ValueError(
            f"budget {total_bits} too small for {len(terms)} terms at "
            f"granularity {granularity}"
        )
    return {term: per_term for term in terms}


def build_adaptive_posts(
    peer: Peer,
    allocation: Mapping[str, int],
) -> list[Post]:
    """Build the peer's Posts with per-term synopsis lengths.

    Requires a spec kind that tolerates heterogeneous sizes (MIPs); other
    kinds would produce incomparable synopses across peers, so they are
    rejected here rather than failing at estimation time.
    """
    if not peer.spec.supports_heterogeneous_sizes:
        raise ValueError(
            f"synopsis kind {peer.spec.kind!r} cannot use heterogeneous "
            "lengths; only MIPs supports them (Section 3.4)"
        )
    posts = []
    for term, bits in allocation.items():
        if bits <= 0:
            raise ValueError(f"non-positive bit allocation for term {term!r}")
        positions = max(1, bits // BITS_PER_POSITION)
        spec = peer.spec.resized(positions)
        synopsis = spec.build(peer.index.doc_ids(term))
        posts.append(
            Post(
                peer_id=peer.peer_id,
                term=term,
                cdf=peer.index.document_frequency(term),
                max_score=peer.index.max_score(term),
                avg_score=peer.index.average_score(term),
                term_space_size=peer.index.term_space_size,
                synopsis=synopsis,
            )
        )
    return posts
