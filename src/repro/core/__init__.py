"""The paper's contribution: IQN routing and its extensions."""

from .adaptive import AdaptiveSpecPolicy, needs_repost
from .aggregation import (
    AggregationStrategy,
    PerPeerAggregation,
    PerPeerState,
    PerTermAggregation,
    PerTermState,
)
from .correlations import CorrelationAwarePerTerm, estimate_distinct_mass
from .fastpath import FastPathUnsupported, RoutingStats, fast_rank_detailed
from .budget import (
    allocate_budget,
    benefit_list_length,
    benefit_score_mass_quantile,
    benefit_score_threshold,
    build_adaptive_posts,
    uniform_budget,
)
from .histogram_routing import (
    HistogramAggregation,
    HistogramState,
    cell_midpoint_weights,
    per_cell_novelties,
    top_heavy_weights,
    weighted_histogram_novelty,
)
from .iqn import IQNRouter, IQNSelection
from .novelty import estimate_novelty
from .stopping import (
    AnyOf,
    CoverageTarget,
    MaxPeers,
    MinimumNoveltyGain,
    StoppingCriterion,
)

__all__ = [
    "IQNRouter",
    "IQNSelection",
    "RoutingStats",
    "FastPathUnsupported",
    "fast_rank_detailed",
    "estimate_novelty",
    "AggregationStrategy",
    "PerPeerAggregation",
    "PerPeerState",
    "PerTermAggregation",
    "PerTermState",
    "CorrelationAwarePerTerm",
    "estimate_distinct_mass",
    "AdaptiveSpecPolicy",
    "needs_repost",
    "HistogramAggregation",
    "HistogramState",
    "weighted_histogram_novelty",
    "per_cell_novelties",
    "cell_midpoint_weights",
    "top_heavy_weights",
    "StoppingCriterion",
    "MaxPeers",
    "CoverageTarget",
    "MinimumNoveltyGain",
    "AnyOf",
    "allocate_budget",
    "uniform_budget",
    "benefit_list_length",
    "benefit_score_threshold",
    "benefit_score_mass_quantile",
    "build_adaptive_posts",
]
