"""Adaptive synopsis-type selection — the paper's future work #1.

Section 9: "strategies for adaptively choosing the synopses types and
lengths depending on the P2P usage scenario and with dynamic and
automatic adaptation to evolving data and system characteristics."

Two constraints shape the policy:

1. Synopses for the *same term* must be pairwise comparable network-wide,
   so the choice may only depend on **globally agreed statistics** — we
   use the term's collection frequency band and the query model, both of
   which all peers can learn from the directory, never on a peer's
   private list length.
2. Each family has a sweet spot measured in Section 3 / Figure 2:

   - **Bloom filters** are the most accurate *below* their overload
     point (roughly ``expected_items <= budget_bits / 8``, i.e. at least
     8 bits per element) and support every aggregation;
   - **MIPs** are budget-robust, unbiased, and the only family that
     tolerates heterogeneous lengths — the safe default;
   - for **disjunctive** workloads that only ever union (no conjunctive
     intersection needed) a hash sketch stretches the budget further for
     very large sets.

The policy is deterministic: two peers configuring themselves with the
same policy and the same global statistics choose identical specs, so
their synopses stay comparable.

Dynamic adaptation: :func:`needs_repost` implements the re-publication
trigger — a peer re-posts a term when its list has drifted by more than
a configurable factor since the last Post, the "evolving data" half of
the future-work sentence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synopses.factory import SynopsisSpec

__all__ = ["AdaptiveSpecPolicy", "needs_repost"]


@dataclass(frozen=True)
class AdaptiveSpecPolicy:
    """Chooses a synopsis configuration per term from global statistics.

    Parameters
    ----------
    budget_bits:
        Per-term synopsis budget (network-wide agreement).
    bloom_bits_per_element:
        Minimum bits/element below which a Bloom filter is considered
        overloaded (Figure 2's collapse threshold; 8 gives a false
        positive rate of ~2.5% at the optimal hash count).
    conjunctive:
        Whether the workload needs intersection aggregation — rules out
        the counter families (Section 3.4).
    seed:
        Hash-family seed shared network-wide.
    """

    budget_bits: int = 2048
    bloom_bits_per_element: int = 8
    conjunctive: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget_bits <= 0:
            raise ValueError(f"budget_bits must be positive, got {self.budget_bits}")
        if self.bloom_bits_per_element <= 0:
            raise ValueError(
                "bloom_bits_per_element must be positive, got "
                f"{self.bloom_bits_per_element}"
            )

    @property
    def bloom_capacity(self) -> int:
        """Largest expected set a Bloom filter of this budget handles well."""
        return self.budget_bits // self.bloom_bits_per_element

    def choose(self, expected_list_length: int) -> SynopsisSpec:
        """Pick the spec for a term expected to have this global df.

        ``expected_list_length`` must come from *shared* statistics (the
        term's directory-wide df, a published histogram, ...) — never
        from one peer's private index — or peers diverge.
        """
        if expected_list_length < 0:
            raise ValueError(
                f"expected_list_length must be >= 0, got {expected_list_length}"
            )
        if expected_list_length <= self.bloom_capacity:
            return SynopsisSpec.for_budget(
                "bloom", self.budget_bits, seed=self.seed
            )
        if not self.conjunctive and expected_list_length > 16 * self.bloom_capacity:
            # Very large, union-only: the cheapest cardinality counter.
            return SynopsisSpec.for_budget(
                "loglog", self.budget_bits, seed=self.seed
            )
        return SynopsisSpec.for_budget("mips", self.budget_bits, seed=self.seed)

    def choose_for_band(self, collection_frequency_band: str) -> SynopsisSpec:
        """Convenience mapping from a coarse df band name.

        Bands (``"rare"``, ``"common"``, ``"ubiquitous"``) are the kind of
        label a directory can gossip cheaply and consistently.
        """
        bands = {
            "rare": self.bloom_capacity,                # fits a Bloom filter
            "common": 4 * self.bloom_capacity,          # MIPs territory
            "ubiquitous": 32 * self.bloom_capacity,     # counter territory
        }
        try:
            return self.choose(bands[collection_frequency_band])
        except KeyError:
            raise ValueError(
                f"unknown band {collection_frequency_band!r}; "
                f"expected one of {sorted(bands)}"
            ) from None


def needs_repost(
    posted_length: int, current_length: int, *, drift_factor: float = 1.5
) -> bool:
    """True when a term's index list drifted enough to re-publish.

    Triggers when the list grew or shrank by ``drift_factor`` (or
    appeared/disappeared entirely).  Keeping this threshold-based rather
    than time-based matches Section 7.2's concern that "peers post
    frequent updates" makes posting bandwidth the bottleneck.
    """
    if drift_factor <= 1.0:
        raise ValueError(f"drift_factor must be > 1, got {drift_factor}")
    if posted_length < 0 or current_length < 0:
        raise ValueError("lengths must be >= 0")
    if posted_length == 0:
        return current_length > 0
    if current_length == 0:
        return True
    ratio = current_length / posted_length
    return ratio >= drift_factor or ratio <= 1.0 / drift_factor
