"""Pair-wise novelty estimation from synopses (Section 5.2).

IQN only ever needs the novelty of one additionally considered peer
against the *reference synopsis* of the result space covered so far.  How
that estimate is derived depends on the synopsis family:

- **MIPs**: estimate resemblance ``R`` by matching positions, recover the
  overlap ``|A ∩ B| = R (|A| + |B|) / (R + 1)``, and subtract from
  ``|B|``.  Requires (estimates of) both cardinalities — the reference
  cardinality is tracked by the routing state, seeded from the
  initiator's exact local result size.
- **Hash sketches** (and LogLog counters, their cited successor):
  estimate ``|A ∪ B|`` from the merged sketch; then
  ``Novelty(B|A) = |A ∪ B| - |A|``.
- **Bloom filters**: build the bitwise difference filter
  ``bf_B AND NOT bf_A`` and invert its fill to a cardinality.

All paths clamp to the feasible interval ``[0, |B|]``.
"""

from __future__ import annotations

from ..synopses.base import SetSynopsis
from ..synopses.bloom import BloomFilter, cardinality_from_popcount
from ..synopses.hashsketch import HashSketch
from ..synopses.loglog import LogLogCounter
from ..synopses.measures import novelty_from_resemblance, novelty_from_union

__all__ = ["estimate_novelty"]


def estimate_novelty(
    candidate: SetSynopsis,
    reference: SetSynopsis,
    *,
    candidate_cardinality: float | None = None,
    reference_cardinality: float | None = None,
) -> float:
    """Estimate ``Novelty(candidate | reference)`` per Section 5.2.

    ``candidate_cardinality`` should be the candidate's exact index-list
    length from its Post when available; ``reference_cardinality`` the
    routing state's running estimate of the covered result space.  Either
    falls back to the synopsis's own cardinality estimator when omitted.
    """
    reference.check_compatible(candidate)
    if candidate_cardinality is not None and candidate_cardinality < 0:
        raise ValueError(
            f"candidate_cardinality must be >= 0, got {candidate_cardinality}"
        )
    if reference_cardinality is not None and reference_cardinality < 0:
        raise ValueError(
            f"reference_cardinality must be >= 0, got {reference_cardinality}"
        )
    if candidate.is_empty:
        return 0.0

    card_cand = (
        candidate.estimate_cardinality()
        if candidate_cardinality is None
        else candidate_cardinality
    )

    if isinstance(candidate, BloomFilter):
        assert isinstance(reference, BloomFilter)
        # Inline ``candidate.difference(reference).estimate_cardinality()``
        # without materializing the intermediate filter object — this is
        # the inner call of the routing hot loop.  Same value bit for bit:
        # both go through cardinality_from_popcount.
        mask = (1 << candidate.num_bits) - 1
        difference_bits = candidate.raw_bits & ~reference.raw_bits & mask
        estimate = cardinality_from_popcount(
            difference_bits.bit_count(), candidate.num_bits, candidate.num_hashes
        )
        return min(max(0.0, estimate), card_cand)

    card_ref = (
        reference.estimate_cardinality()
        if reference_cardinality is None
        else reference_cardinality
    )

    if isinstance(candidate, (HashSketch, LogLogCounter)):
        union_estimate = candidate.union(reference).estimate_cardinality()
        return novelty_from_union(union_estimate, card_ref, card_cand)

    # MIPs and any other resemblance-capable synopsis.
    if reference.is_empty:
        return card_cand
    res = reference.estimate_resemblance(candidate)
    return novelty_from_resemblance(res, card_ref, card_cand)
