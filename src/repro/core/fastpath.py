"""Vectorized + lazy-greedy fast path for IQN's Select-Best-Peer loop.

The naive loop in :mod:`repro.core.iqn` re-estimates novelty for every
remaining candidate on every iteration — ``O(C)`` synopsis evaluations
per selected peer, each one fresh big-int / Python work.  This module
replaces that with two exact fast paths that produce *bit-identical*
plans (same peers, same novelty/quality floats, same tie-breaks):

**Tier 1 — CELF lazy greedy (Bloom filters).**  Bloom novelty is provably
monotone non-increasing as the reference grows: absorbing a peer only
ORs bits into the reference, so ``cand AND NOT ref`` loses bits, its
popcount ``t`` cannot grow, the linear-counting inversion is increasing
in ``t``, and the final clamp preserves monotonicity.  Stale scores are
therefore true upper bounds, and the classic CELF strategy applies: keep
candidates in a max-heap keyed by stale ``quality * novelty``,
re-evaluate only the popped top until the top is current.  A defensive
bound check triggers a full refresh if monotonicity were ever violated
(it cannot be, for Bloom), so correctness never rests on the proof.

**Tier 2 — exact incremental invalidation (MIPs, hash sketches,
LogLog).**  These families' novelty estimates are *not* monotone under
absorb — the tracked reference cardinality and the union estimate drift
at different rates, so a candidate's novelty can tick *up* after an
absorb and stale heap bounds are unsound.  Instead we cache each
candidate's integer sufficient statistic against the reference (MIPs:
matching-minima count; hash sketch: per-bucket first-zero positions;
LogLog: merged-register sum and empty count) and, after each absorb,
detect *exactly* which rows the reference change can affect and
recompute only those.  Turning statistics into novelty floats is a
vectorized O(C) pass per round using lookup tables indexed by the
integer statistic — the tables are filled by the same scalar
:mod:`math`-based code the synopses use, so no NumPy transcendental
(whose libm may differ by ULPs) ever touches the value path.

Both tiers drive the *same* aggregation state objects as the naive loop
(via ``start``/``absorb``), so reference synopses and cardinalities
evolve identically and stopping criteria see identical inputs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence, overload

import numpy as np

from ..routing.base import CandidatePeer, RoutingContext
from ..routing.columns import (
    ColumnContextView,
    ColumnViewUnavailable,
    cori_score_array,
)
from ..routing.cori import CORI_ALPHA
from ..synopses.columnstore import (
    BloomColumn,
    HashSketchColumn,
    LogLogColumn,
    MipsColumn,
    SynopsisColumn,
)
from ..synopses.bloom import (
    BloomFilter,
    batch_difference_popcounts,
    pack_bit_row,
    pack_bit_rows,
    popcount_cardinality_table,
)
from ..synopses.hashsketch import (
    HashSketch,
    first_zero_positions,
    pack_bitmap_row,
    pack_bitmap_rows,
    rho_sum_cardinality_table,
)
from ..synopses.loglog import (
    LogLogCounter,
    pack_register_row,
    pack_register_rows,
    register_cardinality_tables,
)
from ..synopses.mips import (
    MIPS_MODULUS,
    MinWisePermutations,
    batch_match_counts,
    pack_minima_row,
    pack_minima_rows,
)
from .aggregation import PerPeerAggregation, PerTermAggregation
from .stopping import StoppingCriterion

if TYPE_CHECKING:  # annotation-only — a runtime import would be cyclic
    from ..minerva.posts import Post

__all__ = [
    "RoutingStats",
    "FastPathUnsupported",
    "fast_rank_detailed",
    "column_rank_detailed",
]


class FastPathUnsupported(Exception):
    """The configuration has no exact fast path; use the naive loop."""


@dataclass
class RoutingStats:
    """Counters surfaced by :class:`~repro.core.iqn.IQNRouter`.

    ``novelty_evaluations`` counts per-candidate synopsis-level novelty
    computations actually performed (initial batch, lazy re-evaluations,
    affected-row refreshes, and the absorb-time recompute inside the
    aggregation strategy).  ``naive_evaluations`` is what the naive loop
    would have spent on the same plan — the sum of remaining-candidate
    counts over rounds — so ``naive_evaluations / novelty_evaluations``
    is the measured savings factor.

    ``attach`` records where the kernels got their matrices: ``"columns"``
    when they attached straight to the directory's packed column store
    (:func:`column_rank_detailed`), ``"objects"`` when per-peer synopsis
    objects were packed at query time.
    """

    mode: str
    candidates: int = 0
    rounds: int = 0
    novelty_evaluations: int = 0
    naive_evaluations: int = 0
    bound_refreshes: int = 0
    attach: str = "objects"

    @property
    def evaluation_savings(self) -> float:
        """Naive-vs-actual evaluation ratio (1.0 = no savings)."""
        if self.novelty_evaluations == 0:
            return 1.0
        return self.naive_evaluations / self.novelty_evaluations


# -- family kernels ----------------------------------------------------------
#
# One "column" tracks every candidate's synopsis against one reference
# synopsis: the per-peer strategy uses a single column over combined
# query synopses, the per-term strategy one column per query term.
# Constructors raise FastPathUnsupported for anything the vectorized
# kernels cannot represent exactly (foreign synopsis types, mismatched
# parameters, heterogeneous MIPs lengths, >64-bit sketch bitmaps); the
# router then falls back to the naive loop, which handles — or raises
# on — those cases with the reference semantics.


class _BloomColumn:
    """Packed-bit Bloom novelty kernel (CELF tier).

    Operates on an already-packed ``(C, words)`` uint64 bit-matrix —
    either gathered zero-copy from the directory's column store or packed
    from per-peer objects via :meth:`from_objects`.
    """

    def __init__(
        self,
        rows: np.ndarray,
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> None:
        if type(reference) is not BloomFilter:
            raise FastPathUnsupported("reference is not a plain BloomFilter")
        self._m = reference.num_bits
        self._rows = rows
        self._cards = np.asarray(cards, dtype=np.float64)
        self._active = active
        self._table = popcount_cardinality_table(
            reference.num_bits, reference.num_hashes
        )
        self._reference_row = pack_bit_row(reference.raw_bits, self._m)

    @classmethod
    def from_objects(
        cls,
        synopses: Sequence[Any],
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> "_BloomColumn":
        if type(reference) is not BloomFilter:
            raise FastPathUnsupported("reference is not a plain BloomFilter")
        params = (reference.num_bits, reference.num_hashes, reference.seed)
        bits: list[int] = []
        for synopsis, ok in zip(synopses, active):
            if not ok:
                bits.append(0)
                continue
            if type(synopsis) is not BloomFilter or (
                synopsis.num_bits,
                synopsis.num_hashes,
                synopsis.seed,
            ) != params:
                raise FastPathUnsupported("heterogeneous Bloom parameters")
            bits.append(synopsis.raw_bits)
        return cls(
            pack_bit_rows(bits, reference.num_bits), cards, active, reference
        )

    def batch(self) -> np.ndarray:
        popcounts = batch_difference_popcounts(self._rows, self._reference_row)
        novelty = np.minimum(np.maximum(0.0, self._table[popcounts]), self._cards)
        novelty[~self._active] = 0.0
        return novelty

    def eval_one(self, index: int) -> float:
        if not self._active[index]:
            return 0.0
        popcount = int(
            batch_difference_popcounts(
                self._rows[index : index + 1], self._reference_row
            )[0]
        )
        estimate = float(self._table[popcount])
        return min(max(0.0, estimate), float(self._cards[index]))

    def refresh_reference(self, reference: Any) -> None:
        self._reference_row = pack_bit_row(reference.raw_bits, self._m)


class _MipsColumn:
    """Minima-matrix MIPs novelty kernel (incremental tier)."""

    def __init__(
        self,
        rows: np.ndarray,
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> None:
        if type(reference) is not MinWisePermutations:
            raise FastPathUnsupported("reference is not a plain MIPs synopsis")
        self._rows = rows
        self._common = reference.num_permutations
        self._reference_row = pack_minima_row(reference)
        self._matches = batch_match_counts(self._rows, self._reference_row)
        self._cards = np.asarray(cards, dtype=np.float64)
        self._active = active
        self._cand_empty = (self._rows == MIPS_MODULUS).all(axis=1)
        self._ref_empty = bool((self._reference_row == MIPS_MODULUS).all())
        self._maintained = active & ~self._cand_empty

    @classmethod
    def from_objects(
        cls,
        synopses: Sequence[Any],
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> "_MipsColumn":
        if type(reference) is not MinWisePermutations:
            raise FastPathUnsupported("reference is not a plain MIPs synopsis")
        length = reference.num_permutations
        packable: list[MinWisePermutations | None] = []
        for synopsis, ok in zip(synopses, active):
            if not ok:
                packable.append(None)
                continue
            if (
                type(synopsis) is not MinWisePermutations
                or synopsis.seed != reference.seed
                or synopsis.num_permutations != length
            ):
                raise FastPathUnsupported("heterogeneous MIPs vectors")
            packable.append(synopsis)
        return cls(pack_minima_rows(packable, length), cards, active, reference)

    def refresh_reference(self, reference: Any) -> np.ndarray:
        new_row = pack_minima_row(reference)
        changed = np.nonzero(new_row != self._reference_row)[0]
        if changed.size == 0:
            return np.zeros(len(self._rows), dtype=bool)
        # A row's match count can only change at positions where the
        # reference minimum changed: either a previous match was
        # destroyed (row value equals the old non-sentinel minimum) or a
        # new one was created (row value equals the new minimum, which
        # is always below the sentinel — reference minima only sink).
        sub = self._rows[:, changed]
        old_values = self._reference_row[changed]
        new_values = new_row[changed]
        affected = (
            ((sub == old_values) & (old_values != MIPS_MODULUS))
            | (sub == new_values)
        ).any(axis=1)
        affected &= self._maintained
        if affected.any():
            self._matches[affected] = batch_match_counts(
                self._rows[affected], new_row
            )
        self._reference_row = new_row
        self._ref_empty = bool((new_row == MIPS_MODULUS).all())
        return affected

    def rescore(self, reference_cardinality: float) -> np.ndarray:
        if self._ref_empty:
            novelty = self._cards.copy()
        else:
            resemblance = self._matches / self._common
            overlap = (
                resemblance
                * (reference_cardinality + self._cards)
                / (resemblance + 1.0)
            )
            overlap = np.minimum(
                np.maximum(overlap, 0.0),
                np.minimum(reference_cardinality, self._cards),
            )
            novelty = np.maximum(0.0, self._cards - overlap)
        novelty = np.where(self._cand_empty, 0.0, novelty)
        novelty[~self._active] = 0.0
        return novelty


class _HashSketchColumn:
    """First-zero-position hash-sketch kernel (incremental tier)."""

    def __init__(
        self,
        rows: np.ndarray,
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> None:
        if type(reference) is not HashSketch:
            raise FastPathUnsupported("reference is not a plain HashSketch")
        if reference.bitmap_length > 64:
            raise FastPathUnsupported("sketch bitmaps exceed one machine word")
        self._length = reference.bitmap_length
        self._rows = rows
        self._reference_row = pack_bitmap_row(reference)
        self._first_zero = first_zero_positions(
            self._rows | self._reference_row, self._length
        )
        self._rho_sums = self._first_zero.sum(axis=1)
        self._table = rho_sum_cardinality_table(
            reference.num_bitmaps, reference.bitmap_length
        )
        self._cards = np.asarray(cards, dtype=np.float64)
        self._active = active
        self._cand_empty = (self._rows == 0).all(axis=1)
        self._maintained = active & ~self._cand_empty

    @classmethod
    def from_objects(
        cls,
        synopses: Sequence[Any],
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> "_HashSketchColumn":
        if type(reference) is not HashSketch:
            raise FastPathUnsupported("reference is not a plain HashSketch")
        if reference.bitmap_length > 64:
            raise FastPathUnsupported("sketch bitmaps exceed one machine word")
        params = (reference.num_bitmaps, reference.bitmap_length, reference.seed)
        packable: list[HashSketch | None] = []
        for synopsis, ok in zip(synopses, active):
            if not ok:
                packable.append(None)
                continue
            if type(synopsis) is not HashSketch or (
                synopsis.num_bitmaps,
                synopsis.bitmap_length,
                synopsis.seed,
            ) != params:
                raise FastPathUnsupported("heterogeneous hash-sketch parameters")
            packable.append(synopsis)
        return cls(
            pack_bitmap_rows(packable, reference.num_bitmaps),
            cards,
            active,
            reference,
        )

    def refresh_reference(self, reference: Any) -> np.ndarray:
        new_row = pack_bitmap_row(reference)
        touched = np.zeros(len(self._rows), dtype=bool)
        changed = np.nonzero(new_row != self._reference_row)[0]
        for bucket in changed.tolist():
            new_bits = int(new_row[bucket]) & ~int(self._reference_row[bucket])
            # A row's R statistic moves iff some new reference bit lands
            # exactly on its current first zero; bits below are already
            # set in the merge, bits above leave the first zero alone.
            affected = np.zeros(len(self._rows), dtype=bool)
            remaining = new_bits
            while remaining:
                lowest = remaining & -remaining
                affected |= self._first_zero[:, bucket] == lowest.bit_length() - 1
                remaining ^= lowest
            affected &= self._maintained
            if affected.any():
                merged = self._rows[affected, bucket] | new_row[bucket]
                positions = first_zero_positions(merged, self._length)
                self._rho_sums[affected] += (
                    positions - self._first_zero[affected, bucket]
                )
                self._first_zero[affected, bucket] = positions
                touched |= affected
        self._reference_row = new_row
        return touched

    def rescore(self, reference_cardinality: float) -> np.ndarray:
        estimate = self._table[self._rho_sums]
        novelty = np.minimum(
            np.maximum(0.0, estimate - reference_cardinality), self._cards
        )
        novelty = np.where(self._cand_empty, 0.0, novelty)
        novelty[~self._active] = 0.0
        return novelty


class _LogLogColumn:
    """Merged-register LogLog kernel (incremental tier)."""

    def __init__(
        self,
        rows: np.ndarray,
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> None:
        if type(reference) is not LogLogCounter:
            raise FastPathUnsupported("reference is not a plain LogLogCounter")
        buckets = reference.num_buckets
        self._reference_row = pack_register_row(reference)
        self._merged = np.maximum(rows, self._reference_row)
        self._zero_counts = (self._merged == 0).sum(axis=1)
        self._register_sums = self._merged.sum(axis=1, dtype=np.int64)
        self._linear_table, self._extrapolation_table = (
            register_cardinality_tables(buckets)
        )
        self._threshold = buckets * 0.3
        self._cards = np.asarray(cards, dtype=np.float64)
        self._active = active
        self._cand_empty = (rows == 0).all(axis=1)
        self._maintained = active & ~self._cand_empty

    @classmethod
    def from_objects(
        cls,
        synopses: Sequence[Any],
        cards: Sequence[float],
        active: np.ndarray,
        reference: Any,
    ) -> "_LogLogColumn":
        if type(reference) is not LogLogCounter:
            raise FastPathUnsupported("reference is not a plain LogLogCounter")
        buckets = reference.num_buckets
        packable: list[LogLogCounter | None] = []
        for synopsis, ok in zip(synopses, active):
            if not ok:
                packable.append(None)
                continue
            if (
                type(synopsis) is not LogLogCounter
                or synopsis.seed != reference.seed
                or synopsis.num_buckets != buckets
            ):
                raise FastPathUnsupported("heterogeneous LogLog parameters")
            packable.append(synopsis)
        return cls(pack_register_rows(packable, buckets), cards, active, reference)

    def refresh_reference(self, reference: Any) -> np.ndarray:
        new_row = pack_register_row(reference)
        touched = np.zeros(len(self._merged), dtype=bool)
        changed = np.nonzero(new_row > self._reference_row)[0]
        for bucket in changed.tolist():
            value = new_row[bucket]
            column = self._merged[:, bucket]
            affected = (column < value) & self._maintained
            if affected.any():
                old_values = column[affected].astype(np.int64)
                self._register_sums[affected] += int(value) - old_values
                self._zero_counts[affected] -= old_values == 0
                self._merged[affected, bucket] = value
                touched |= affected
        self._reference_row = new_row
        return touched

    def rescore(self, reference_cardinality: float) -> np.ndarray:
        estimate = np.where(
            self._zero_counts > self._threshold,
            self._linear_table[self._zero_counts],
            self._extrapolation_table[self._register_sums],
        )
        novelty = np.minimum(
            np.maximum(0.0, estimate - reference_cardinality), self._cards
        )
        novelty = np.where(self._cand_empty, 0.0, novelty)
        novelty[~self._active] = 0.0
        return novelty


_CELF_COLUMNS = (_BloomColumn,)

_COLUMN_TYPES = {
    BloomFilter: _BloomColumn,
    MinWisePermutations: _MipsColumn,
    HashSketch: _HashSketchColumn,
    LogLogCounter: _LogLogColumn,
}


def _make_column(
    synopses: Sequence[Any],
    cards: Sequence[float],
    active: np.ndarray,
    reference: Any,
) -> Any:
    column_type = _COLUMN_TYPES.get(type(reference))
    if column_type is None:
        raise FastPathUnsupported(
            f"no vectorized kernel for {type(reference).__name__}"
        )
    return column_type.from_objects(synopses, cards, active, reference)


# -- strategy adapters -------------------------------------------------------


class _PerPeerAdapter:
    """Single column over per-candidate combined query synopses."""

    def __init__(
        self,
        aggregation: PerPeerAggregation,
        context: RoutingContext,
        candidates: list[CandidatePeer],
    ) -> None:
        self.aggregation = aggregation
        self.state = aggregation.start(context)
        synopses: list[Any] = []
        cards: list[float] = []
        active: list[bool] = []
        for candidate in candidates:
            combined, cardinality = aggregation.combine(self.state, candidate)
            ok = combined is not None and cardinality > 0.0
            synopses.append(combined if ok else None)
            cards.append(cardinality if ok else 0.0)
            active.append(ok)
        if any(card < 0.0 for card in cards):
            raise FastPathUnsupported("negative candidate cardinality")
        active_mask = np.asarray(active, dtype=bool)
        self.columns = [
            _make_column(synopses, cards, active_mask, self.state.reference)
        ]

    def references(self) -> list[Any]:
        return [self.state.reference]

    def reference_cardinalities(self) -> list[float]:
        return [self.state.reference_cardinality]

    def absorb(self, candidate: CandidatePeer) -> None:
        self.aggregation.absorb(self.state, candidate)

    def coverage(self) -> float:
        return self.aggregation.estimated_coverage(self.state)


class _PerTermAdapter:
    """One column per query term over the posted term synopses."""

    def __init__(
        self,
        aggregation: PerTermAggregation,
        context: RoutingContext,
        candidates: list[CandidatePeer],
    ) -> None:
        self.aggregation = aggregation
        self.state = aggregation.start(context)
        self.terms = list(context.query.terms)
        self.columns: list[Any] = []
        for term in self.terms:
            synopses: list[Any] = []
            cards: list[float] = []
            active: list[bool] = []
            for candidate in candidates:
                post = candidate.post(term)
                ok = (
                    post is not None
                    and post.synopsis is not None
                    and post.cdf != 0
                )
                synopses.append(post.synopsis if ok else None)
                cards.append(float(post.cdf) if ok else 0.0)
                active.append(ok)
            if any(card < 0.0 for card in cards):
                raise FastPathUnsupported("negative candidate cardinality")
            self.columns.append(
                _make_column(
                    synopses,
                    cards,
                    np.asarray(active, dtype=bool),
                    self.state.references[term],
                )
            )

    def references(self) -> list[Any]:
        return [self.state.references[term] for term in self.terms]

    def reference_cardinalities(self) -> list[float]:
        return [self.state.reference_cardinalities[term] for term in self.terms]

    def absorb(self, candidate: CandidatePeer) -> None:
        self.aggregation.absorb(self.state, candidate)

    def coverage(self) -> float:
        return self.aggregation.estimated_coverage(self.state)


# -- columnar attach ---------------------------------------------------------
#
# When the directory stores synopses in packed per-term columns
# (repro.synopses.columnstore), the kernels above can attach to gathered
# slices of the stored matrices instead of re-packing per-peer objects:
# packing is an ingest-time cost, amortized across queries.  Everything
# below reproduces the object adapters bit-for-bit — the gathered
# matrices equal what from_objects would have packed (absent/inactive
# rows are the family's neutral payload), the cardinality clamps run the
# same float operations in the same association, and the shared drivers
# then see identical inputs.


def _store_params(reference: Any) -> tuple[Any, tuple[int, ...]]:
    """``(column-store class, ctor params)`` matching ``reference``."""
    if type(reference) is BloomFilter:
        return BloomColumn, (
            reference.num_bits,
            reference.num_hashes,
            reference.seed,
        )
    if type(reference) is MinWisePermutations:
        return MipsColumn, (reference.num_permutations, reference.seed)
    if type(reference) is HashSketch:
        if reference.bitmap_length > 64:
            raise FastPathUnsupported("sketch bitmaps exceed one machine word")
        return HashSketchColumn, (
            reference.num_bitmaps,
            reference.bitmap_length,
            reference.seed,
        )
    if type(reference) is LogLogCounter:
        return LogLogColumn, (reference.num_buckets, reference.seed)
    raise FastPathUnsupported(
        f"no vectorized kernel for {type(reference).__name__}"
    )


def _term_matrix(
    column: SynopsisColumn | None,
    rows: np.ndarray,
    mask: np.ndarray,
    store_cls: Any,
    params: tuple[int, ...],
    count: int,
) -> np.ndarray:
    """One term's stored column gathered into candidate order.

    ``column is None`` means no peer ever posted a packable synopsis for
    the term — every candidate row is neutral, exactly what the object
    path packs for ``None`` synopses.
    """
    if column is None:
        return store_cls(*params, 1).neutral_matrix(count)
    if type(column) is not store_cls or column.params != params:
        raise FastPathUnsupported(
            "stored column family or parameters do not match the reference"
        )
    return column.gather(rows, mask)


def _fold_disjunctive(mats: list[np.ndarray], reference: Any) -> np.ndarray:
    """Row-wise union fold; the neutral payload is the fold identity."""
    combined = mats[0]
    for mat in mats[1:]:
        if type(reference) is MinWisePermutations:
            np.minimum(combined, mat, out=combined)
        elif type(reference) is LogLogCounter:
            np.maximum(combined, mat, out=combined)
        else:  # BloomFilter / HashSketch: bitwise union
            np.bitwise_or(combined, mat, out=combined)
    return combined


def _fold_conjunctive(
    mats: list[np.ndarray], reference: Any, crude_fallback: bool
) -> np.ndarray:
    """Row-wise intersection fold, mirroring ``PerPeerAggregation.combine``.

    Hash sketches and LogLog counters raise ``UnsupportedOperationError``
    on every pairwise intersect; with the crude fallback enabled the
    object path degrades each pair to a union, so the whole fold *is* the
    union fold.  Without the fallback the object path raises a
    non-FastPathUnsupported error the naive loop must surface — defer to
    it.  A single-term fold never intersects at all.
    """
    if len(mats) == 1:
        return mats[0]
    if type(reference) is BloomFilter:
        combined = mats[0]
        for mat in mats[1:]:
            np.bitwise_and(combined, mat, out=combined)
        return combined
    if type(reference) is MinWisePermutations:
        combined = mats[0]
        for mat in mats[1:]:
            np.maximum(combined, mat, out=combined)
        return combined
    if not crude_fallback:
        raise FastPathUnsupported(
            "conjunctive intersection raises for this family; the naive "
            "loop owns that error"
        )
    return _fold_disjunctive(mats, reference)


def _matrix_cardinalities(rows: np.ndarray, reference: Any) -> np.ndarray:
    """Per-row ``estimate_cardinality()`` of packed synopsis payloads.

    Tabulated / sequential arithmetic only, so every row's estimate is
    bit-identical to materializing the synopsis object and calling its
    scalar estimator.
    """
    if type(reference) is BloomFilter:
        table = popcount_cardinality_table(
            reference.num_bits, reference.num_hashes
        )
        words = rows.shape[1]
        zero_row = np.zeros(words, dtype=np.uint64)
        popcounts = batch_difference_popcounts(rows, zero_row)
        return np.asarray(table[popcounts], dtype=np.float64)
    if type(reference) is MinWisePermutations:
        length = reference.num_permutations
        fractions = rows / float(MIPS_MODULUS)
        # Sequential accumulation in position order — the scalar
        # estimator's sum() order — keeps float addition bit-identical.
        total = fractions[:, 0].copy()
        for position in range(1, length):
            total = total + fractions[:, position]
        with np.errstate(divide="ignore", invalid="ignore"):
            estimate = np.where(
                total <= 0.0,
                np.inf,
                np.maximum(0.0, float(length) / total - 1.0),
            )
        empty = (rows == MIPS_MODULUS).all(axis=1)
        return np.asarray(np.where(empty, 0.0, estimate), dtype=np.float64)
    if type(reference) is HashSketch:
        table = rho_sum_cardinality_table(
            reference.num_bitmaps, reference.bitmap_length
        )
        rho_sums = first_zero_positions(rows, reference.bitmap_length).sum(axis=1)
        empty = (rows == 0).all(axis=1)
        return np.asarray(np.where(empty, 0.0, table[rho_sums]), dtype=np.float64)
    if type(reference) is LogLogCounter:
        buckets = reference.num_buckets
        linear_table, extrapolation_table = register_cardinality_tables(buckets)
        zero_counts = (rows == 0).sum(axis=1)
        register_sums = rows.sum(axis=1, dtype=np.int64)
        estimate = np.where(
            zero_counts > buckets * 0.3,
            linear_table[zero_counts],
            extrapolation_table[register_sums],
        )
        return np.asarray(
            np.where(zero_counts == buckets, 0.0, estimate), dtype=np.float64
        )
    raise FastPathUnsupported(
        f"no vectorized kernel for {type(reference).__name__}"
    )


def _combined_cardinalities(
    view: ColumnContextView,
    combined: np.ndarray,
    reference: Any,
    conjunctive: bool,
) -> np.ndarray:
    """Vectorized ``PerPeerAggregation._candidate_cardinality``.

    Exact per-term cdfs bound the synopsis estimate: one present term is
    taken verbatim, two or more clamp the estimate by the largest/summed
    (disjunctive) or smallest (conjunctive) list length.  All clamps run
    on exact int64-derived floats, so results match the scalar path.
    """
    count = view.count
    n_present = np.zeros(count, dtype=np.int64)
    sum_cdf = np.zeros(count, dtype=np.int64)
    max_cdf = np.zeros(count, dtype=np.int64)
    min_cdf = np.full(count, np.iinfo(np.int64).max, dtype=np.int64)
    for gather in view.gathers:
        present = gather.cdf > 0
        n_present += present
        sum_cdf += gather.cdf
        max_cdf = np.maximum(max_cdf, gather.cdf)
        min_cdf = np.where(present, np.minimum(min_cdf, gather.cdf), min_cdf)
    sum_f = sum_cdf.astype(np.float64)
    estimate = _matrix_cardinalities(combined, reference)
    if conjunctive:
        clamped = np.minimum(
            np.maximum(0.0, estimate), min_cdf.astype(np.float64)
        )
    else:
        clamped = np.minimum(
            np.maximum(estimate, max_cdf.astype(np.float64)), sum_f
        )
    return np.asarray(
        np.where(n_present == 0, 0.0, np.where(n_present == 1, sum_f, clamped)),
        dtype=np.float64,
    )


class _ColumnPerPeerAdapter:
    """Per-peer aggregation attached to stored columns (zero repacking)."""

    def __init__(
        self,
        aggregation: PerPeerAggregation,
        context: RoutingContext,
        view: ColumnContextView,
    ) -> None:
        self.aggregation = aggregation
        self.state = aggregation.start(context)
        reference = self.state.reference
        store_cls, params = _store_params(reference)
        kernel_cls = _COLUMN_TYPES[type(reference)]
        count = view.count
        mats: list[np.ndarray] = []
        syn_count = np.zeros(count, dtype=np.int64)
        conj_ok = np.ones(count, dtype=bool) if context.conjunctive else None
        for gather in view.gathers:
            mats.append(
                _term_matrix(
                    gather.columns.synopsis_column,
                    gather.rows,
                    gather.has_synopsis,
                    store_cls,
                    params,
                    count,
                )
            )
            syn_count += gather.has_synopsis
            if conj_ok is not None:
                conj_ok &= gather.has_post & gather.has_synopsis
        if context.conjunctive:
            combined = _fold_conjunctive(
                mats, reference, aggregation.crude_conjunctive_fallback
            )
        else:
            combined = _fold_disjunctive(mats, reference)
        cards = _combined_cardinalities(
            view, combined, reference, context.conjunctive
        )
        if bool(np.any(cards < 0.0)):
            raise FastPathUnsupported("negative candidate cardinality")
        active = (syn_count > 0) & (cards > 0.0)
        if conj_ok is not None:
            active &= conj_ok
        cards = np.where(active, cards, 0.0)
        # Inactive rows must hold the neutral payload — exactly how the
        # object path packs candidates that cannot contribute.
        combined[~active] = store_cls.neutral
        self.columns = [kernel_cls(combined, cards, active, reference)]

    def references(self) -> list[Any]:
        return [self.state.reference]

    def reference_cardinalities(self) -> list[float]:
        return [self.state.reference_cardinality]

    def absorb(self, candidate: CandidatePeer) -> None:
        self.aggregation.absorb(self.state, candidate)

    def coverage(self) -> float:
        return self.aggregation.estimated_coverage(self.state)


class _ColumnPerTermAdapter:
    """Per-term aggregation attached to stored columns (zero repacking)."""

    def __init__(
        self,
        aggregation: PerTermAggregation,
        context: RoutingContext,
        view: ColumnContextView,
    ) -> None:
        self.aggregation = aggregation
        self.state = aggregation.start(context)
        self.terms = list(context.query.terms)
        self.columns: list[Any] = []
        for gather in view.gathers:
            reference = self.state.references[gather.term]
            store_cls, params = _store_params(reference)
            kernel_cls = _COLUMN_TYPES[type(reference)]
            active = gather.has_synopsis & (gather.cdf != 0)
            matrix = _term_matrix(
                gather.columns.synopsis_column,
                gather.rows,
                active,
                store_cls,
                params,
                view.count,
            )
            cards = np.where(active, gather.cdf.astype(np.float64), 0.0)
            self.columns.append(kernel_cls(matrix, cards, active, reference))

    def references(self) -> list[Any]:
        return [self.state.references[term] for term in self.terms]

    def reference_cardinalities(self) -> list[float]:
        return [self.state.reference_cardinalities[term] for term in self.terms]

    def absorb(self, candidate: CandidatePeer) -> None:
        self.aggregation.absorb(self.state, candidate)

    def coverage(self) -> float:
        return self.aggregation.estimated_coverage(self.state)


class _LazyCandidates(Sequence[CandidatePeer]):
    """Candidate views materialized only when a driver touches one.

    The drivers need a :class:`CandidatePeer` only for *selected* peers
    (the absorb step) — building all C up front would reinstate the
    per-peer assembly cost the columnar view exists to avoid.
    """

    def __init__(self, view: ColumnContextView) -> None:
        self._view = view
        self._cache: dict[int, CandidatePeer] = {}

    def __len__(self) -> int:
        return self._view.count

    @overload
    def __getitem__(self, index: int) -> CandidatePeer: ...

    @overload
    def __getitem__(self, index: slice) -> Sequence[CandidatePeer]: ...

    def __getitem__(
        self, index: int | slice
    ) -> CandidatePeer | Sequence[CandidatePeer]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        cached = self._cache.get(index)
        if cached is None:
            cached = self._materialize(index)
            self._cache[index] = cached
        return cached

    def _materialize(self, index: int) -> CandidatePeer:
        context = self._view.context
        peer_id = self._view.peer_names[index]
        posts: dict[str, Post] = {}
        for term in context.query.terms:
            post = context.peer_lists[term].get(peer_id)
            if post is not None:
                posts[term] = post
        return CandidatePeer(peer_id=peer_id, posts=posts)


def column_rank_detailed(
    context: RoutingContext,
    aggregation: Any,
    stopping: StoppingCriterion,
    max_peers: int,
    *,
    alpha: float = CORI_ALPHA,
    quality_weighted: bool = True,
) -> tuple[list[tuple[str, float, float]], RoutingStats]:
    """Run Select-Best-Peer directly on the directory's packed columns.

    The fastest tier: candidate assembly, CORI scoring, and the novelty
    kernels all read gathered slices of the stored matrices — no per-peer
    Python objects exist on the hot path.  Plans are bit-identical to
    both the object fast path and the naive loop.  Raises
    :class:`FastPathUnsupported` — always before mutating shared state —
    when the context is not column-backed or the configuration needs the
    object tiers.
    """
    aggregation_type = type(aggregation)
    if aggregation_type not in (PerPeerAggregation, PerTermAggregation):
        raise FastPathUnsupported(
            f"no fast path for aggregation strategy {aggregation_type.__name__}"
        )
    try:
        view = ColumnContextView.build(context)
    except ColumnViewUnavailable as exc:
        raise FastPathUnsupported(str(exc)) from exc
    if view.count == 0:
        return [], RoutingStats(mode="empty", candidates=0, attach="columns")
    qualities_array = (
        cori_score_array(view, alpha=alpha)
        if quality_weighted
        else np.ones(view.count, dtype=np.float64)
    )
    adapter: _ColumnPerPeerAdapter | _ColumnPerTermAdapter
    if aggregation_type is PerPeerAggregation:
        adapter = _ColumnPerPeerAdapter(aggregation, context, view)
    else:
        adapter = _ColumnPerTermAdapter(aggregation, context, view)
    celf = isinstance(adapter.columns[0], _CELF_COLUMNS)
    stats = RoutingStats(
        mode="celf" if celf else "incremental",
        candidates=view.count,
        attach="columns",
    )
    candidates = _LazyCandidates(view)
    driver = _run_celf if celf else _run_incremental
    plan = driver(
        adapter,
        candidates,
        qualities_array,
        view.peer_names,
        stopping,
        max_peers,
        stats,
    )
    return plan, stats


# -- drivers -----------------------------------------------------------------


class _ReversedStr:
    """Inverts string ordering so a *min*-heap pops the *largest* peer id.

    The naive loop breaks full ties by the largest peer id (the third
    tuple component under strict ``>``); negating the float components
    and reversing the string component makes heap order match exactly.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReversedStr") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedStr) and self.value == other.value


def _eval_one(columns: Sequence[Any], index: int) -> float:
    total = 0.0
    for column in columns:
        total += column.eval_one(index)
    return total


def _run_celf(
    adapter: Any,
    candidates: Sequence[CandidatePeer],
    qualities_array: np.ndarray,
    peer_ids: list[str],
    stopping: StoppingCriterion,
    max_peers: int,
    stats: RoutingStats,
) -> list[tuple[str, float, float]]:
    columns = adapter.columns
    novelty = columns[0].batch()
    for column in columns[1:]:
        novelty = novelty + column.batch()
    count = len(candidates)
    stats.novelty_evaluations += count
    round_no = 0
    heap = [
        (
            -(qualities_array[i] * novelty[i]),
            -qualities_array[i],
            _ReversedStr(peer_ids[i]),
            i,
            round_no,
            float(novelty[i]),
        )
        for i in range(count)
    ]
    heapq.heapify(heap)
    plan: list[tuple[str, float, float]] = []
    while heap and len(plan) < max_peers:
        stats.rounds += 1
        stats.naive_evaluations += len(heap)
        while True:
            entry = heap[0]
            if entry[4] == round_no:
                break
            heapq.heappop(heap)
            index = entry[3]
            value = _eval_one(columns, index)
            stats.novelty_evaluations += 1
            if value > entry[5]:
                # Monotonicity bound violated — provably impossible for
                # Bloom, but correctness must not rest on the proof:
                # refresh every stale entry and re-heapify.
                stats.bound_refreshes += 1
                fresh = [(index, value)]
                while heap:
                    stale = heapq.heappop(heap)
                    other = stale[3]
                    fresh_value = (
                        _eval_one(columns, other)
                        if stale[4] != round_no
                        else stale[5]
                    )
                    if stale[4] != round_no:
                        stats.novelty_evaluations += 1
                    fresh.append((other, fresh_value))
                for other, fresh_value in fresh:
                    heapq.heappush(
                        heap,
                        (
                            -(qualities_array[other] * fresh_value),
                            -qualities_array[other],
                            _ReversedStr(peer_ids[other]),
                            other,
                            round_no,
                            fresh_value,
                        ),
                    )
                continue
            heapq.heappush(
                heap,
                (
                    -(qualities_array[index] * value),
                    -qualities_array[index],
                    _ReversedStr(peer_ids[index]),
                    index,
                    round_no,
                    value,
                ),
            )
        _, _, _, best, _, best_novelty = heapq.heappop(heap)
        plan.append((peer_ids[best], float(qualities_array[best]), best_novelty))
        adapter.absorb(candidates[best])
        stats.novelty_evaluations += 1  # absorb's internal gain recompute
        for column, reference in zip(adapter.columns, adapter.references()):
            column.refresh_reference(reference)
        round_no += 1
        if stopping.should_stop(
            selected_count=len(plan),
            estimated_coverage=adapter.coverage(),
            last_novelty=best_novelty,
        ):
            break
    return plan


def _total_novelty(
    columns: Sequence[Any], reference_cardinalities: Sequence[float]
) -> np.ndarray:
    total = columns[0].rescore(reference_cardinalities[0])
    for column, cardinality in zip(columns[1:], reference_cardinalities[1:]):
        total = total + column.rescore(cardinality)
    return total


def _argmax_with_ties(
    scores: np.ndarray,
    qualities_array: np.ndarray,
    peer_ids: list[str],
    alive: np.ndarray,
) -> int:
    masked = np.where(alive, scores, -np.inf)
    top = masked.max()
    tied = np.nonzero(alive & (masked == top))[0]
    if tied.size == 1:
        return int(tied[0])
    return max(
        tied.tolist(), key=lambda i: (qualities_array[i], peer_ids[i])
    )


def _run_incremental(
    adapter: Any,
    candidates: Sequence[CandidatePeer],
    qualities_array: np.ndarray,
    peer_ids: list[str],
    stopping: StoppingCriterion,
    max_peers: int,
    stats: RoutingStats,
) -> list[tuple[str, float, float]]:
    columns = adapter.columns
    count = len(candidates)
    alive = np.ones(count, dtype=bool)
    novelty = _total_novelty(columns, adapter.reference_cardinalities())
    stats.novelty_evaluations += count
    plan: list[tuple[str, float, float]] = []
    while len(plan) < max_peers and alive.any():
        stats.rounds += 1
        stats.naive_evaluations += int(alive.sum())
        scores = qualities_array * novelty
        best = _argmax_with_ties(scores, qualities_array, peer_ids, alive)
        best_novelty = float(novelty[best])
        plan.append((peer_ids[best], float(qualities_array[best]), best_novelty))
        alive[best] = False
        adapter.absorb(candidates[best])
        stats.novelty_evaluations += 1  # absorb's internal gain recompute
        touched = np.zeros(count, dtype=bool)
        for column, reference in zip(columns, adapter.references()):
            touched |= column.refresh_reference(reference)
        touched &= alive
        stats.novelty_evaluations += int(touched.sum())
        novelty = _total_novelty(columns, adapter.reference_cardinalities())
        if stopping.should_stop(
            selected_count=len(plan),
            estimated_coverage=adapter.coverage(),
            last_novelty=best_novelty,
        ):
            break
    return plan


# -- entry point -------------------------------------------------------------


def fast_rank_detailed(
    context: RoutingContext,
    aggregation: Any,
    qualities: dict[str, float],
    stopping: StoppingCriterion,
    max_peers: int,
) -> tuple[list[tuple[str, float, float]], RoutingStats]:
    """Run Select-Best-Peer on the fast path.

    Returns ``(plan, stats)`` where plan entries are
    ``(peer_id, quality, novelty)`` tuples bit-identical to the naive
    loop's selections.  Raises :class:`FastPathUnsupported` — always
    *before* mutating any shared state — when the configuration needs
    the naive reference implementation (exotic aggregation strategies,
    mixed synopsis parameters, unsupported families).
    """
    aggregation_type = type(aggregation)
    candidates = context.candidates()
    adapter: _PerPeerAdapter | _PerTermAdapter
    if aggregation_type is PerPeerAggregation:
        adapter = _PerPeerAdapter(aggregation, context, candidates)
    elif aggregation_type is PerTermAggregation:
        adapter = _PerTermAdapter(aggregation, context, candidates)
    else:
        raise FastPathUnsupported(
            f"no fast path for aggregation strategy {aggregation_type.__name__}"
        )
    celf = isinstance(adapter.columns[0], _CELF_COLUMNS)
    stats = RoutingStats(
        mode="celf" if celf else "incremental", candidates=len(candidates)
    )
    peer_ids = [candidate.peer_id for candidate in candidates]
    qualities_array = np.array(
        [qualities[peer_id] for peer_id in peer_ids], dtype=np.float64
    )
    driver = _run_celf if celf else _run_incremental
    plan = driver(
        adapter, candidates, qualities_array, peer_ids, stopping, max_peers, stats
    )
    return plan, stats
