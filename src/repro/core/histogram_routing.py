"""Score-conscious novelty with histogram-cell synopses (Section 7.1).

Flat set synopses value every document equally, but "in ranked retrieval
... we are more interested in the higher-scoring portions of an index
list and the mutual overlap that different peers have in these portions."
The paper's extension builds one synopsis per score-range cell and
computes a *weighted* novelty: per-cell novelties combined with weights
that grow with the cell's score range.

Cell membership is peer-local (each peer normalizes scores against its
own list), so a document may sit in different cells at different peers —
hence the all-pairs estimation: a candidate cell's overlap is summed
against *every* reference cell before its novelty is taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..routing.base import CandidatePeer, RoutingContext
from ..synopses.histogram import ScoreHistogramSynopsis
from ..synopses.measures import overlap_from_resemblance
from .aggregation import AggregationStrategy

__all__ = [
    "cell_midpoint_weights",
    "top_heavy_weights",
    "weighted_histogram_novelty",
    "per_cell_novelties",
    "HistogramAggregation",
    "HistogramState",
]

WeightFunction = Callable[[ScoreHistogramSynopsis], Sequence[float]]


def cell_midpoint_weights(histogram: ScoreHistogramSynopsis) -> list[float]:
    """Linear weights: each cell weighted by its score-range midpoint."""
    return [histogram.cell_midpoint_score(i) for i in range(histogram.num_cells)]


def top_heavy_weights(histogram: ScoreHistogramSynopsis) -> list[float]:
    """Quadratic weights emphasizing high-score cells more aggressively."""
    return [
        histogram.cell_midpoint_score(i) ** 2 for i in range(histogram.num_cells)
    ]


def per_cell_novelties(
    candidate: ScoreHistogramSynopsis, reference: ScoreHistogramSynopsis
) -> list[float]:
    """Novelty of each candidate cell against *all* reference cells.

    For candidate cell ``i``: estimate its overlap with every reference
    cell ``j`` (pairwise resemblance -> overlap, Section 7.1's "pairwise
    novelty estimation over all pairs of histogram cells") and subtract
    the summed overlap from the cell's cardinality, clamping at 0.
    """
    candidate.check_compatible(reference)
    novelties: list[float] = []
    for i, cand_cell in enumerate(candidate.cells):
        card_cand = candidate.cell_cardinalities[i]
        if card_cand <= 0.0 or cand_cell.is_empty:
            novelties.append(0.0)
            continue
        covered = 0.0
        for j, ref_cell in enumerate(reference.cells):
            card_ref = reference.cell_cardinalities[j]
            if card_ref <= 0.0 or ref_cell.is_empty:
                continue
            res = ref_cell.estimate_resemblance(cand_cell)
            covered += overlap_from_resemblance(res, card_ref, card_cand)
        novelties.append(max(0.0, card_cand - covered))
    return novelties


def weighted_histogram_novelty(
    candidate: ScoreHistogramSynopsis,
    reference: ScoreHistogramSynopsis,
    *,
    weights: WeightFunction = cell_midpoint_weights,
) -> float:
    """The Section 7.1 weighted novelty of ``candidate`` given ``reference``."""
    cell_weights = list(weights(candidate))
    if len(cell_weights) != candidate.num_cells:
        raise ValueError(
            f"weight function produced {len(cell_weights)} weights for "
            f"{candidate.num_cells} cells"
        )
    if any(w < 0 for w in cell_weights):
        raise ValueError("cell weights must be >= 0")
    novelties = per_cell_novelties(candidate, reference)
    return sum(w * n for w, n in zip(cell_weights, novelties))


@dataclass
class HistogramState:
    """Reference histogram for the score-conscious IQN variant."""

    context: RoutingContext
    reference: ScoreHistogramSynopsis
    combined_cache: dict[str, ScoreHistogramSynopsis | None]


class HistogramAggregation(AggregationStrategy):
    """IQN aggregation over score-histogram synopses.

    Drop-in replacement for
    :class:`~repro.core.aggregation.PerPeerAggregation` when Posts carry
    histogram synopses.  Multi-keyword combination is cell-wise union
    over the peer's term histograms (disjunctive semantics; the paper's
    histogram extension does not define a conjunctive variant, so
    conjunctive contexts are rejected).
    """

    def __init__(self, *, weights: WeightFunction = cell_midpoint_weights) -> None:
        self.weights = weights

    def start(self, context: RoutingContext) -> HistogramState:
        if context.conjunctive:
            raise ValueError(
                "histogram aggregation supports disjunctive queries only"
            )
        num_cells = self._num_cells(context)
        return HistogramState(
            context=context,
            reference=ScoreHistogramSynopsis.empty(
                spec=context.spec, num_cells=num_cells
            ),
            combined_cache={},
        )

    @staticmethod
    def _num_cells(context: RoutingContext) -> int:
        for term in context.query.terms:
            for post in context.peer_lists[term]:
                if post.histogram is not None:
                    return post.histogram.num_cells
        raise ValueError(
            "no candidate posted a histogram synopsis; configure peers "
            "with histogram_cells and publish with with_histogram=True"
        )

    def _combine(
        self, state: HistogramState, candidate: CandidatePeer
    ) -> ScoreHistogramSynopsis | None:
        if candidate.peer_id in state.combined_cache:
            return state.combined_cache[candidate.peer_id]
        histograms = [
            post.histogram
            for term in state.context.query.terms
            if (post := candidate.post(term)) is not None
            and post.histogram is not None
        ]
        combined: ScoreHistogramSynopsis | None
        if not histograms:
            combined = None
        else:
            combined = histograms[0]
            for histogram in histograms[1:]:
                combined = combined.union(histogram)
        state.combined_cache[candidate.peer_id] = combined
        return combined

    def novelty(self, state: HistogramState, candidate: CandidatePeer) -> float:
        combined = self._combine(state, candidate)
        if combined is None:
            return 0.0
        return weighted_histogram_novelty(
            combined, state.reference, weights=self.weights
        )

    def absorb(self, state: HistogramState, candidate: CandidatePeer) -> None:
        combined = self._combine(state, candidate)
        if combined is None:
            return
        gained = per_cell_novelties(combined, state.reference)
        merged_cardinalities = [
            ref_card + gain
            for ref_card, gain in zip(state.reference.cell_cardinalities, gained)
        ]
        state.reference = state.reference.union(
            combined, merged_cardinalities=merged_cardinalities
        )

    def estimated_coverage(self, state: HistogramState) -> float:
        return state.reference.total_cardinality
