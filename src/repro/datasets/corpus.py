"""Synthetic GOV-like corpus generator.

The paper evaluates on the TREC ``.GOV`` crawl (~1.5 M documents) with
TREC 2003 Web-track topic-distillation queries.  That data is not
redistributable, so we generate a corpus with the properties routing
actually depends on:

- a **Zipfian vocabulary**: few very frequent terms, a long tail;
- **topical clustering**: documents belong to topics; topic terms are
  bursty within their topic (this is what makes some peers much better
  than others for a query — the "quality" dimension);
- a **shared background** distribution (stopword-like terms present
  everywhere — these give CORI's ``cdf_max`` realistic mass).

Document ids are dense integers ``0 .. num_docs-1``, which become the
*global* ids that peer collections share when partitioning replicates
fragments across peers (:mod:`repro.datasets.partition`).

Everything is driven by one NumPy generator seeded explicitly, so a given
config reproduces the identical corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.documents import Corpus, Document

__all__ = ["GovCorpusConfig", "build_gov_corpus", "topic_vocabulary"]


@dataclass(frozen=True)
class GovCorpusConfig:
    """Parameters of the synthetic GOV-like corpus.

    Defaults produce a corpus that builds in a few seconds and exhibits
    the same df-skew and topical structure as a small Web crawl.
    """

    num_docs: int = 6000
    vocabulary_size: int = 8000
    num_topics: int = 20
    topic_vocabulary_size: int = 250
    doc_length_mean: int = 120
    topic_mix: float = 0.6
    zipf_exponent: float = 1.1
    topic_assignment: str = "round-robin"
    topic_smear: float = 0.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.topic_assignment not in ("round-robin", "blocked"):
            raise ValueError(
                "topic_assignment must be 'round-robin' or 'blocked', "
                f"got {self.topic_assignment!r}"
            )
        if self.topic_smear < 0.0:
            raise ValueError(
                f"topic_smear must be >= 0, got {self.topic_smear}"
            )
        if self.num_docs <= 0:
            raise ValueError(f"num_docs must be positive, got {self.num_docs}")
        if self.vocabulary_size <= 0:
            raise ValueError(
                f"vocabulary_size must be positive, got {self.vocabulary_size}"
            )
        if self.num_topics <= 0:
            raise ValueError(f"num_topics must be positive, got {self.num_topics}")
        if self.topic_vocabulary_size > self.vocabulary_size:
            raise ValueError("topic vocabulary cannot exceed the full vocabulary")
        if self.doc_length_mean <= 0:
            raise ValueError(
                f"doc_length_mean must be positive, got {self.doc_length_mean}"
            )
        if not 0.0 <= self.topic_mix <= 1.0:
            raise ValueError(f"topic_mix must be in [0, 1], got {self.topic_mix}")
        if self.zipf_exponent <= 0.0:
            raise ValueError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )


def _term_name(index: int) -> str:
    return f"t{index:06d}"


def _zipf_cdf(size: int, exponent: float) -> np.ndarray:
    """Cumulative Zipf distribution over ``size`` ranks."""
    weights = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** exponent
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


def _sample_ranks(cdf: np.ndarray, count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` ranks from the distribution with cumulative ``cdf``."""
    return np.searchsorted(cdf, rng.random(count), side="right")


def topic_vocabulary(config: GovCorpusConfig, topic: int) -> list[str]:
    """The term list of ``topic``, most topic-characteristic first.

    Derived deterministically from the config seed; used both by the
    generator and by the query workload builder, which picks query terms
    from the front of this list.
    """
    if not 0 <= topic < config.num_topics:
        raise ValueError(
            f"topic must be in [0, {config.num_topics}), got {topic}"
        )
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 1000 + topic]))
    # Topic terms are drawn from the mid-frequency band of the vocabulary:
    # very frequent terms are background, the deep tail is noise.
    band_start = config.vocabulary_size // 20
    band = np.arange(band_start, config.vocabulary_size)
    chosen = rng.choice(band, size=config.topic_vocabulary_size, replace=False)
    return [_term_name(i) for i in chosen]


def build_gov_corpus(config: GovCorpusConfig) -> Corpus:
    """Generate the corpus described by ``config``.

    Each document gets a topic, a Poisson length, and tokens drawn from a
    ``topic_mix`` / ``1 - topic_mix`` mixture of its topic's Zipf
    distribution and the global background Zipf distribution.

    Topic assignment follows ``config.topic_assignment``:

    - ``"round-robin"``: topic ``doc_id % num_topics`` — every contiguous
      id range covers all topics uniformly (a crawl partitioned by URL
      hash);
    - ``"blocked"``: topic ``doc_id * num_topics // num_docs`` —
      contiguous id ranges are topically coherent, like the crawl-order
      fragments of the GOV collection.  Under blocked assignment the
      fragment placement strategies of :mod:`repro.datasets.partition`
      produce peers with *different topical strengths*, which is what
      makes quality-aware routing meaningful.

    ``config.topic_smear`` (in units of topic-block widths) adds Gaussian
    noise to the blocked assignment: each topic's documents concentrate
    around their block but spill into neighbouring blocks with decaying
    density.  This models the graded topical locality of a real crawl —
    no fragment monopolizes a topic, but fragments differ strongly in
    topical density — the regime where both quality *and* novelty drive
    good routing.  Ignored for round-robin assignment.
    """
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0]))
    background_cdf = _zipf_cdf(config.vocabulary_size, config.zipf_exponent)
    topic_terms = [
        np.array(
            [int(t[1:]) for t in topic_vocabulary(config, topic)], dtype=np.int64
        )
        for topic in range(config.num_topics)
    ]
    topic_cdf = _zipf_cdf(config.topic_vocabulary_size, config.zipf_exponent)

    lengths = np.maximum(1, rng.poisson(config.doc_length_mean, config.num_docs))
    smear_noise = (
        rng.normal(0.0, config.topic_smear, config.num_docs)
        if config.topic_assignment == "blocked" and config.topic_smear > 0.0
        else None
    )
    documents = []
    for doc_id in range(config.num_docs):
        if config.topic_assignment == "blocked":
            position = doc_id * config.num_topics / config.num_docs
            if smear_noise is not None:
                position += smear_noise[doc_id]
            topic = min(config.num_topics - 1, max(0, int(position)))
        else:
            topic = doc_id % config.num_topics
        length = int(lengths[doc_id])
        from_topic = int(rng.binomial(length, config.topic_mix))
        term_ids = np.concatenate(
            [
                topic_terms[topic][_sample_ranks(topic_cdf, from_topic, rng)],
                _sample_ranks(background_cdf, length - from_topic, rng),
            ]
        )
        unique, counts = np.unique(term_ids, return_counts=True)
        frequencies = {
            _term_name(int(t)): int(c) for t, c in zip(unique, counts)
        }
        documents.append(Document(doc_id=doc_id, term_frequencies=frequencies))
    return Corpus.from_documents(documents)
