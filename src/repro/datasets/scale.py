"""Synthetic testbeds that scale to 10k–100k peers without object graphs.

The corpus-backed testbed (:class:`~repro.minerva.engine.MinervaEngine`
over :class:`~repro.ir.documents.Corpus` collections) materializes one
inverted index per peer — perfect for protocol fidelity, hopeless at
100k peers.  :class:`ScaledTestbed` keeps only what routing experiments
actually consume:

- a real :class:`~repro.minerva.directory.Directory` on a small Chord
  ring, populated through ``publish_batch`` in bounded chunks, so every
  stored PeerList lands in the packed columnar store;
- a *recomputable* document model: the doc-id set of ``(peer, term)``
  is a pure function of ``derive_seed(seed, "docs:<peer>:<term>")``, so
  nothing per-peer is retained — local views, coverage recall, and
  synopses are all derived on demand and discarded;
- topical structure: peers are partitioned over topics by a seeded
  balanced permutation, each topic owns a slice of the doc-id space and
  a few terms, and every peer additionally posts a couple of *noise*
  terms from foreign topics — the regime where cluster-level routing
  (:mod:`repro.topology`) should pay off, since topical neighbours hold
  overlapping results.

Recall here is **coverage recall**: the fraction of the union of all
posted doc ids for the query terms that the selected peers jointly
hold.  It is set-based like the engine's relative recall, with the
centralized reference replaced by the exact posted coverage (cached per
term from the directory's poster lists).

The testbed satisfies the :class:`~repro.topology.base.TopologyHost`
protocol (``directory``, ``spec``, ``num_peers``), so both
:class:`~repro.topology.flat.FlatTopology` and
:class:`~repro.topology.superpeer.SuperPeerTopology` bind to it
directly — that is how ``experiments/hierarchy.py`` compares the two
at sizes the engine cannot reach.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dht.ring import ChordRing
from ..minerva.directory import Directory
from ..minerva.posts import Post
from ..parallel.seeding import derive_seed
from ..routing.base import LocalView
from ..synopses.factory import SynopsisSpec
from .queries import Query

__all__ = ["ScaledTestbedConfig", "ScaledTestbed"]

#: Peers per ``publish_batch`` call: bounds transient Post objects.
_PUBLISH_CHUNK = 2_000


@dataclass(frozen=True)
class ScaledTestbedConfig:
    """Shape of a scaled testbed; everything is derived from ``seed``."""

    num_peers: int
    num_topics: int = 20
    terms_per_topic: int = 3
    #: Inclusive (min, max) doc ids a peer holds per posted term.
    docs_per_term: tuple[int, int] = (5, 30)
    #: Foreign-topic terms every peer additionally posts.
    noise_terms: int = 2
    #: Doc ids in each topic's slice of the id space.
    topic_pool: int = 400
    directory_nodes: int = 16
    ring_bits: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_peers <= 0:
            raise ValueError(f"num_peers must be positive, got {self.num_peers}")
        if self.num_topics <= 0:
            raise ValueError(
                f"num_topics must be positive, got {self.num_topics}"
            )
        if self.terms_per_topic <= 0:
            raise ValueError(
                f"terms_per_topic must be positive, got {self.terms_per_topic}"
            )
        low, high = self.docs_per_term
        if not 0 < low <= high:
            raise ValueError(
                f"docs_per_term must be 0 < min <= max, got {self.docs_per_term}"
            )
        if self.noise_terms < 0:
            raise ValueError(
                f"noise_terms must be >= 0, got {self.noise_terms}"
            )
        if self.topic_pool < high:
            raise ValueError(
                "topic_pool must cover docs_per_term's maximum "
                f"({self.topic_pool} < {high})"
            )


class ScaledTestbed:
    """A directory-only MINERVA network at 10k+ peers (TopologyHost).

    Construction publishes one Post per (peer, posted term) into a real
    :class:`Directory` and retains nothing else per peer; every derived
    quantity (doc sets, local views, coverage recall) is recomputed
    from seeds on demand.
    """

    def __init__(self, config: ScaledTestbedConfig, *, spec: SynopsisSpec) -> None:
        self.config = config
        self.spec = spec
        self._width = max(2, len(str(config.num_peers - 1)))
        ring = ChordRing(
            [f"n{i}" for i in range(config.directory_nodes)],
            bits=config.ring_bits,
        )
        self.directory = Directory(ring)
        self._topic_of_peer = self._assign_topics()
        #: Exact posted coverage per term, filled lazily per query.
        self._reference_by_term: dict[str, frozenset[int]] = {}
        self._publish_all()

    # -- identity ---------------------------------------------------------

    @property
    def num_peers(self) -> int:
        return self.config.num_peers

    def peer_id(self, index: int) -> str:
        return f"p{index:0{self._width}d}"

    def peer_index(self, peer_id: str) -> int:
        return int(peer_id[1:])

    def topic_terms(self, topic: int) -> tuple[str, ...]:
        return tuple(
            f"topic{topic:04d}w{j}"
            for j in range(self.config.terms_per_topic)
        )

    def topic_of_term(self, term: str) -> int:
        return int(term[5:9])

    def topic_of_peer(self, index: int) -> int:
        return self._topic_of_peer[index]

    # -- the generative model ---------------------------------------------

    def _assign_topics(self) -> list[int]:
        """Balanced seeded peer→topic map (± one peer per topic)."""
        order = list(range(self.config.num_peers))
        random.Random(derive_seed(self.config.seed, "scale-topics")).shuffle(
            order
        )
        assignment = [0] * self.config.num_peers
        for rank, peer in enumerate(order):
            assignment[peer] = rank % self.config.num_topics
        return assignment

    def peer_terms(self, index: int) -> tuple[str, ...]:
        """The terms peer ``index`` posts: its topic's plus noise, sorted."""
        terms = set(self.topic_terms(self._topic_of_peer[index]))
        if self.config.noise_terms and self.config.num_topics > 1:
            rng = random.Random(
                derive_seed(self.config.seed, f"noise:{index}")
            )
            while len(terms) < (
                self.config.terms_per_topic + self.config.noise_terms
            ):
                topic = rng.randrange(self.config.num_topics)
                if topic == self._topic_of_peer[index]:
                    continue
                terms.add(
                    self.topic_terms(topic)[
                        rng.randrange(self.config.terms_per_topic)
                    ]
                )
        return tuple(sorted(terms))

    def doc_ids(self, index: int, term: str) -> frozenset[int]:
        """Doc ids peer ``index`` holds for ``term`` — pure in (seed, args).

        Ids live in the term's topic slice of the global id space, so
        topical neighbours overlap and foreign posts still carry
        on-topic documents.
        """
        config = self.config
        rng = random.Random(derive_seed(config.seed, f"docs:{index}:{term}"))
        low, high = config.docs_per_term
        count = rng.randint(low, high)
        base = self.topic_of_term(term) * config.topic_pool
        return frozenset(
            base + offset
            for offset in rng.sample(range(config.topic_pool), count)
        )

    def _post_for(self, index: int, term: str) -> Post:
        ids = self.doc_ids(index, term)
        rng = random.Random(
            derive_seed(self.config.seed, f"scores:{index}:{term}")
        )
        max_score = 0.2 + 0.8 * rng.random()
        return Post(
            peer_id=self.peer_id(index),
            term=term,
            cdf=len(ids),
            max_score=max_score,
            avg_score=max_score * (0.3 + 0.4 * rng.random()),
            term_space_size=self.config.terms_per_topic
            + self.config.noise_terms,
            synopsis=self.spec.build(ids),
        )

    def _publish_all(self) -> None:
        batch: list[Post] = []
        for index in range(self.config.num_peers):
            for term in self.peer_terms(index):
                batch.append(self._post_for(index, term))
            if index % _PUBLISH_CHUNK == _PUBLISH_CHUNK - 1:
                self.directory.publish_batch(batch)
                batch = []
        if batch:
            self.directory.publish_batch(batch)

    # -- queries and measurement ------------------------------------------

    def queries(self, count: int, *, terms_per_query: int = 2) -> list[Query]:
        """``count`` topical queries cycling over the topics."""
        terms_per_query = min(terms_per_query, self.config.terms_per_topic)
        return [
            Query(
                qid,
                self.topic_terms(qid % self.config.num_topics)[
                    :terms_per_query
                ],
            )
            for qid in range(count)
        ]

    def initiator_index(self, query: Query) -> int:
        """A deterministic on-topic initiator for ``query``."""
        topic = self.topic_of_term(query.terms[0])
        members = [
            index
            for index in range(self.config.num_peers)
            if self._topic_of_peer[index] == topic
        ]
        return members[query.query_id % len(members)]

    def local_view(self, query: Query, index: int | None = None) -> LocalView:
        """The initiator's local knowledge (seeds IQN's novelty)."""
        if index is None:
            index = self.initiator_index(query)
        held = self.peer_terms(index)
        by_term = {
            term: (
                self.doc_ids(index, term) if term in held else frozenset()
            )
            for term in query.terms
        }
        result: frozenset[int] = frozenset().union(*by_term.values())
        return LocalView(
            peer_id=self.peer_id(index),
            result_doc_ids=result,
            doc_ids_by_term=by_term,
        )

    def reference_ids(self, terms: tuple[str, ...]) -> frozenset[int]:
        """Exact posted coverage of ``terms``: the recall denominator."""
        out: set[int] = set()
        for term in dict.fromkeys(terms):
            cached = self._reference_by_term.get(term)
            if cached is None:
                union: set[int] = set()
                stored = self.directory.stored_list(term)
                if stored is not None:
                    for peer_id in stored.posts:
                        union |= self.doc_ids(self.peer_index(peer_id), term)
                cached = frozenset(union)
                self._reference_by_term[term] = cached
            out |= cached
        return frozenset(out)

    def coverage_recall(
        self, selected: tuple[str, ...], query: Query
    ) -> float:
        """Fraction of the posted coverage the selected peers hold."""
        reference = self.reference_ids(query.terms)
        if not reference:
            return 0.0
        covered: set[int] = set()
        for peer_id in selected:
            index = self.peer_index(peer_id)
            held = self.peer_terms(index)
            for term in dict.fromkeys(query.terms):
                if term in held:
                    covered |= self.doc_ids(index, term)
        return len(covered & reference) / len(reference)

    def __repr__(self) -> str:
        return (
            f"ScaledTestbed(peers={self.num_peers}, "
            f"topics={self.config.num_topics}, spec={self.spec.label})"
        )
