"""Building collections from raw text.

The experiments generate synthetic corpora, but the library is equally
usable on real documents — a crawler's pages, mail archives, file
metadata.  This module is the bridge: tokenize text into
:class:`~repro.ir.documents.Document` objects with stable ids.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..ir.documents import Corpus, Document
from ..ir.tokenize import tokenize

__all__ = ["document_from_text", "corpus_from_texts"]


def document_from_text(
    doc_id: int,
    text: str,
    *,
    drop_stopwords: bool = True,
    min_length: int = 2,
) -> Document:
    """Tokenize ``text`` into a document.

    Raises ``ValueError`` when tokenization leaves nothing (documents
    must be non-empty to be indexable).
    """
    frequencies: dict[str, int] = {}
    for token in tokenize(text, drop_stopwords=drop_stopwords, min_length=min_length):
        frequencies[token] = frequencies.get(token, 0) + 1
    if not frequencies:
        raise ValueError(
            f"document {doc_id} has no indexable tokens after tokenization"
        )
    return Document(doc_id=doc_id, term_frequencies=frequencies)


def corpus_from_texts(
    texts: Mapping[int, str] | Iterable[tuple[int, str]],
    *,
    drop_stopwords: bool = True,
    min_length: int = 2,
    skip_empty: bool = True,
) -> Corpus:
    """Build a corpus from ``{doc_id: text}`` (or id/text pairs).

    ``skip_empty`` silently drops documents that tokenize to nothing
    (boilerplate-only pages); set it False to surface them as errors.
    """
    items = texts.items() if isinstance(texts, Mapping) else texts
    corpus = Corpus()
    for doc_id, text in items:
        try:
            document = document_from_text(
                doc_id,
                text,
                drop_stopwords=drop_stopwords,
                min_length=min_length,
            )
        except ValueError:
            if skip_empty:
                continue
            raise
        corpus.add(document)
    return corpus
