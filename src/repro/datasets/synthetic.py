"""Synthetic docID sets with controlled overlap (Section 3.3 workload).

The paper's stand-alone synopsis evaluation "randomly created pairs of
synthetic collections of varying sizes with an expected overlap of 33%"
and later "created synthetic collections of a fixed size ... and varied
the expected mutual overlap" over 50%, 33%, 25%, ..., 11%.

We interpret *mutual overlap* ``q`` of two equal-size collections as the
fraction of each collection's documents that are shared:
``|A ∩ B| = q * n`` for ``|A| = |B| = n`` — the reading under which the
figure's 50%…11% series is the harmonic sequence 1/2 … 1/9.  For that
interpretation resemblance is ``q / (2 - q)``.

IDs are drawn uniformly from a large universe (40-bit by default), like
URLs hashed to global ids.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "distinct_ids",
    "overlapping_pair",
    "pair_with_overlap_fraction",
    "resemblance_of_overlap_fraction",
    "collections_with_pairwise_overlap",
    "split_into_fragments",
]

_DEFAULT_ID_BITS = 40


def distinct_ids(
    count: int, *, rng: random.Random, id_bits: int = _DEFAULT_ID_BITS
) -> list[int]:
    """Draw ``count`` distinct ids uniformly from ``[0, 2**id_bits)``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count > (1 << id_bits):
        raise ValueError(f"cannot draw {count} distinct ids from {id_bits} bits")
    return rng.sample(range(1 << id_bits), count)


def overlapping_pair(
    card_a: int,
    card_b: int,
    shared: int,
    *,
    rng: random.Random,
    id_bits: int = _DEFAULT_ID_BITS,
) -> tuple[set[int], set[int]]:
    """Two random sets with exactly ``shared`` common elements.

    ``|A| = card_a``, ``|B| = card_b``, ``|A ∩ B| = shared``.
    """
    if shared < 0:
        raise ValueError(f"shared must be >= 0, got {shared}")
    if shared > min(card_a, card_b):
        raise ValueError(
            f"shared={shared} exceeds min(|A|, |B|)={min(card_a, card_b)}"
        )
    total = card_a + card_b - shared
    ids = distinct_ids(total, rng=rng, id_bits=id_bits)
    common = set(ids[:shared])
    only_a = set(ids[shared : card_a])
    only_b = set(ids[card_a : total])
    return common | only_a, common | only_b


def pair_with_overlap_fraction(
    size: int,
    overlap_fraction: float,
    *,
    rng: random.Random,
    id_bits: int = _DEFAULT_ID_BITS,
) -> tuple[set[int], set[int]]:
    """Two equal-size sets sharing ``overlap_fraction`` of their elements."""
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    shared = round(size * overlap_fraction)
    return overlapping_pair(size, size, shared, rng=rng, id_bits=id_bits)


def resemblance_of_overlap_fraction(overlap_fraction: float) -> float:
    """Exact resemblance of an equal-size pair with the given overlap.

    For ``|A| = |B| = n`` and ``|A ∩ B| = q n``:
    ``R = q n / (2 n - q n) = q / (2 - q)``.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    return overlap_fraction / (2.0 - overlap_fraction)


def collections_with_pairwise_overlap(
    num_collections: int,
    size: int,
    overlap_fraction: float,
    *,
    rng: random.Random,
    id_bits: int = _DEFAULT_ID_BITS,
) -> list[set[int]]:
    """Several equal-size sets sharing one common core.

    Every collection holds the same ``overlap_fraction * size`` "popular"
    core (documents crawled by everyone) plus its own random remainder —
    the replication structure the paper's motivation describes.
    """
    if num_collections < 1:
        raise ValueError(f"need at least 1 collection, got {num_collections}")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError(
            f"overlap_fraction must be in [0, 1], got {overlap_fraction}"
        )
    shared = round(size * overlap_fraction)
    remainder = size - shared
    ids = distinct_ids(
        shared + remainder * num_collections, rng=rng, id_bits=id_bits
    )
    core = set(ids[:shared])
    collections = []
    for i in range(num_collections):
        start = shared + i * remainder
        collections.append(core | set(ids[start : start + remainder]))
    return collections


def split_into_fragments(items: Sequence[int], num_fragments: int) -> list[list[int]]:
    """Split ``items`` into ``num_fragments`` near-equal contiguous parts."""
    if num_fragments <= 0:
        raise ValueError(f"num_fragments must be positive, got {num_fragments}")
    if len(items) < num_fragments:
        raise ValueError(
            f"cannot split {len(items)} items into {num_fragments} fragments"
        )
    base, extra = divmod(len(items), num_fragments)
    fragments = []
    start = 0
    for i in range(num_fragments):
        size = base + (1 if i < extra else 0)
        fragments.append(list(items[start : start + size]))
        start += size
    return fragments
