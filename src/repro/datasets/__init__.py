"""Workload generation: synthetic sets, GOV-like corpus, placement, queries."""

from .corpus import GovCorpusConfig, build_gov_corpus, topic_vocabulary
from .ingest import corpus_from_texts, document_from_text
from .partition import (
    combination_collections,
    corpora_from_doc_id_sets,
    fragment_corpus,
    sliding_window_collections,
)
from .queries import Query, make_workload
from .synthetic import (
    collections_with_pairwise_overlap,
    distinct_ids,
    overlapping_pair,
    pair_with_overlap_fraction,
    resemblance_of_overlap_fraction,
    split_into_fragments,
)

__all__ = [
    "GovCorpusConfig",
    "build_gov_corpus",
    "topic_vocabulary",
    "corpus_from_texts",
    "document_from_text",
    "fragment_corpus",
    "combination_collections",
    "sliding_window_collections",
    "corpora_from_doc_id_sets",
    "Query",
    "make_workload",
    "distinct_ids",
    "overlapping_pair",
    "pair_with_overlap_fraction",
    "resemblance_of_overlap_fraction",
    "collections_with_pairwise_overlap",
    "split_into_fragments",
]
