"""Document placement onto peers — the paper's two overlap strategies.

Section 8.1: "we partitioned the whole data into disjoint fragments, and
then we form collections placed onto peers by using various strategies to
combine fragments":

1. **Combination strategy** — split into ``f`` fragments; every
   ``s``-subset of fragments becomes one peer collection, yielding
   ``C(f, s)`` peers.  With ``f=6, s=3`` that is the paper's 20-peer
   setup.  Any two peers share ``s - |subset difference|`` fragments, so
   overlap is high and structured.
2. **Sliding-window strategy** — split into many (100) fragments; peer
   ``i`` receives ``r`` consecutive fragments starting at ``i * offset``
   (with wraparound so every peer has exactly ``r`` fragments).  With
   ``r=10, offset=2`` over 100 fragments that is the 50-peer setup, where
   adjacent peers overlap in ``r - offset`` fragments and distant peers
   are disjoint — "This way, we can systematically control the overlap of
   peers."
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from ..ir.documents import Corpus

__all__ = [
    "fragment_corpus",
    "combination_collections",
    "sliding_window_collections",
    "corpora_from_doc_id_sets",
]


def fragment_corpus(corpus: Corpus, num_fragments: int) -> list[list[int]]:
    """Split a corpus's doc ids into ``num_fragments`` disjoint fragments.

    Fragmentation is by sorted doc id (deterministic); because the
    generator assigns topics round-robin over ids, every fragment covers
    all topics — like splitting a crawl by URL hash.
    """
    if num_fragments <= 0:
        raise ValueError(f"num_fragments must be positive, got {num_fragments}")
    doc_ids = sorted(corpus.doc_ids)
    if len(doc_ids) < num_fragments:
        raise ValueError(
            f"cannot split {len(doc_ids)} docs into {num_fragments} fragments"
        )
    base, extra = divmod(len(doc_ids), num_fragments)
    fragments = []
    start = 0
    for i in range(num_fragments):
        size = base + (1 if i < extra else 0)
        fragments.append(doc_ids[start : start + size])
        start += size
    return fragments


def combination_collections(
    fragments: Sequence[Sequence[int]], subset_size: int
) -> list[set[int]]:
    """All ``C(f, s)`` unions of ``subset_size`` fragments (strategy 1)."""
    if not 1 <= subset_size <= len(fragments):
        raise ValueError(
            f"subset_size must be in [1, {len(fragments)}], got {subset_size}"
        )
    collections = []
    for subset in combinations(range(len(fragments)), subset_size):
        doc_ids: set[int] = set()
        for index in subset:
            doc_ids.update(fragments[index])
        collections.append(doc_ids)
    return collections


def sliding_window_collections(
    fragments: Sequence[Sequence[int]],
    window: int,
    offset: int,
) -> list[set[int]]:
    """Wraparound sliding-window fragment unions (strategy 2).

    Peer ``i`` gets fragments ``(i*offset) mod f .. (i*offset + window - 1)
    mod f``; there are ``f / offset`` peers (``offset`` must divide ``f``
    so the wraparound tiling is uniform — 100/2 = 50 peers in the paper).
    """
    num_fragments = len(fragments)
    if not 1 <= window <= num_fragments:
        raise ValueError(
            f"window must be in [1, {num_fragments}], got {window}"
        )
    if offset <= 0:
        raise ValueError(f"offset must be positive, got {offset}")
    if num_fragments % offset != 0:
        raise ValueError(
            f"offset {offset} must divide the fragment count {num_fragments}"
        )
    num_peers = num_fragments // offset
    collections = []
    for peer in range(num_peers):
        doc_ids: set[int] = set()
        for j in range(window):
            doc_ids.update(fragments[(peer * offset + j) % num_fragments])
        collections.append(doc_ids)
    return collections


def corpora_from_doc_id_sets(
    corpus: Corpus, doc_id_sets: Sequence[set[int]]
) -> list[Corpus]:
    """Materialize per-peer corpora from doc-id sets over a master corpus."""
    corpora = []
    for doc_ids in doc_id_sets:
        corpora.append(
            Corpus.from_documents(corpus.get(doc_id) for doc_id in sorted(doc_ids))
        )
    return corpora
