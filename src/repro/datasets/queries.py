"""Query workload generation.

The paper uses 10 short multi-keyword queries from the TREC 2003 Web
Track topic-distillation task ("forest fire", "pest safety control").  We
generate the synthetic analogue: each query picks one topic of the
corpus and 2–3 of that topic's most characteristic terms, so queries hit
index lists with realistic document-frequency skew and strong cross-peer
overlap on the popular fragments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .corpus import GovCorpusConfig, topic_vocabulary

__all__ = ["Query", "make_workload", "make_query_log"]


@dataclass(frozen=True)
class Query:
    """A multi-keyword query with a stable identifier."""

    query_id: int
    terms: tuple[str, ...]
    topic: int = -1

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a query needs at least one term")
        if len(set(self.terms)) != len(self.terms):
            raise ValueError(f"duplicate terms in query: {self.terms}")

    def __str__(self) -> str:
        return " ".join(self.terms)


def make_workload(
    config: GovCorpusConfig,
    *,
    num_queries: int = 10,
    min_terms: int = 2,
    max_terms: int = 3,
    pool_size: int = 32,
    pool_offset: int = 0,
    seed: int = 7,
) -> list[Query]:
    """Generate ``num_queries`` topic-focused multi-keyword queries.

    Terms are drawn from ranks ``[pool_offset, pool_offset + pool_size)``
    of the chosen topic's vocabulary (rank 0 = most characteristic),
    mirroring how topic-distillation queries name a topic's salient
    concepts.  A deeper pool (larger offset/size) yields rarer query
    terms, i.e. lower document frequencies.
    """
    if num_queries <= 0:
        raise ValueError(f"num_queries must be positive, got {num_queries}")
    if not 1 <= min_terms <= max_terms:
        raise ValueError(
            f"need 1 <= min_terms <= max_terms, got {min_terms}, {max_terms}"
        )
    if pool_size < max_terms:
        raise ValueError(
            f"pool_size ({pool_size}) must be >= max_terms ({max_terms})"
        )
    if pool_offset < 0:
        raise ValueError(f"pool_offset must be >= 0, got {pool_offset}")
    rng = random.Random(seed)
    queries = []
    for query_id in range(num_queries):
        topic = rng.randrange(config.num_topics)
        vocabulary = topic_vocabulary(config, topic)
        pool = vocabulary[pool_offset : pool_offset + pool_size]
        if len(pool) < max_terms:
            raise ValueError(
                f"topic vocabulary too small for pool "
                f"[{pool_offset}, {pool_offset + pool_size})"
            )
        length = rng.randint(min_terms, max_terms)
        terms = tuple(rng.sample(pool, length))
        queries.append(Query(query_id=query_id, terms=terms, topic=topic))
    return queries


def make_query_log(
    queries: list[Query],
    *,
    num_events: int,
    zipf_s: float = 1.0,
    seed: int = 11,
) -> list[Query]:
    """A Zipf-repeating query stream over a base workload.

    Real query logs are heavily skewed: a few popular queries repeat
    constantly while the tail is seen once (the regularity Ismail et al.
    exploit for routing).  This draws ``num_events`` events where the
    query of popularity rank ``r`` (0-based position in ``queries``) is
    chosen with probability proportional to ``1 / (r + 1) ** zipf_s`` —
    ``zipf_s = 0`` is uniform, larger values are more repetitive.

    Events reference the *same* :class:`Query` objects as the base
    workload (identical ``query_id``), which is what makes routing-plan
    reuse across repetitions well-defined: two occurrences of an event
    are the same query, not merely an equal one.
    """
    if not queries:
        raise ValueError("a query log needs a non-empty base workload")
    if num_events <= 0:
        raise ValueError(f"num_events must be positive, got {num_events}")
    if zipf_s < 0:
        raise ValueError(f"zipf_s must be >= 0, got {zipf_s}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(queries))]
    return rng.choices(queries, weights=weights, k=num_events)
